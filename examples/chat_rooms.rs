//! A chat-service workload (one of the paper's motivating domains):
//! hundreds of users spread over Zipf-popular rooms, multi-room
//! memberships and churn. The Dynamoth balancer spreads the skewed room
//! channels across the pool while consistent hashing suffers the head of
//! the Zipf distribution.
//!
//! Run with: `cargo run --release --example chat_rooms`

use std::sync::Arc;

use dynamoth::core::{BalancerStrategy, Cluster, ClusterConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_chat_users;
use dynamoth::workloads::{ChatConfig, ChatUser};

fn run(strategy: BalancerStrategy) -> (f64, usize, u64, u64) {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 90,
        pool_size: 6,
        initial_active: 1,
        strategy,
        ..Default::default()
    });
    // Room popularity must stay within what one broker can carry for the
    // single hottest room — chat rooms have publications proportional to
    // their membership, so neither of Dynamoth's replication schemes can
    // split them (the same limitation the paper's tile channels have).
    let cfg = Arc::new(ChatConfig {
        rooms: 500,
        zipf_exponent: 0.5,
        rooms_per_user: 3,
        message_hz: 2.0,
        payload: 512,
        ..Default::default()
    });
    let users = spawn_chat_users(
        &mut cluster,
        &cfg,
        1_200,
        SimTime::from_secs(1),
        SimDuration::from_secs(60),
    );
    cluster.run_for(SimDuration::from_secs(150));
    let sent: u64 = users
        .iter()
        .map(|&u| cluster.world.actor::<ChatUser>(u).unwrap().sent())
        .sum();
    (
        cluster
            .trace
            .mean_response_ms_between(90, 150)
            .unwrap_or(f64::NAN),
        cluster.active_server_count(),
        cluster.trace.server_seconds(),
        sent,
    )
}

fn main() {
    println!("1200 chat users, 500 rooms (Zipf 0.5), 3 rooms each, 2 msg/s …\n");
    for (label, strategy) in [
        ("dynamoth", BalancerStrategy::Dynamoth),
        ("consistent-hash", BalancerStrategy::ConsistentHash),
    ] {
        let (response, servers, server_seconds, sent) = run(strategy);
        println!(
            "{label:16} steady response {response:7.1} ms   servers {servers}   server-seconds {server_seconds}   messages {sent}"
        );
    }
}
