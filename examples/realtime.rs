//! The Dynamoth middleware running in *real time*: the exact same actor
//! types used by the simulation experiments — pub/sub server nodes,
//! the load balancer, publishers and subscribers — each on its own OS
//! thread, exchanging real messages for three wall-clock seconds.
//!
//! Run with: `cargo run --release --example realtime`

use std::sync::Arc;
use std::thread::sleep;
use std::time::Duration;

use dynamoth::core::balancer::TAG_EVAL;
use dynamoth::core::{
    BalancerStrategy, ChannelId, DynamothClient, DynamothConfig, LoadBalancer, Ring, ServerId,
    ServerNode, TraceHandle, TAG_TICK,
};
use dynamoth::rt::RtEngineBuilder;
use dynamoth::sim::{NodeId, SimDuration, SimTime};
use dynamoth::workloads::micro::{Publisher, Subscriber, TAG_START};

fn main() {
    let cfg = Arc::new(DynamothConfig {
        tick: SimDuration::from_millis(250),
        t_wait: SimDuration::from_millis(750),
        ..Default::default()
    });
    let mut builder = RtEngineBuilder::new(1);

    // Two broker nodes + the load balancer, exactly like the simulated
    // cluster.
    let servers: Vec<ServerId> = (0..2).map(|i| ServerId(NodeId::from_index(i))).collect();
    let ring = Arc::new(Ring::new(&servers, 32));
    let lb = NodeId::from_index(2);
    for &sid in &servers {
        builder.add_node(Box::new(ServerNode::new(
            sid,
            lb,
            Arc::clone(&ring),
            Arc::clone(&cfg),
        )));
    }
    let trace = TraceHandle::new();
    builder.add_node(Box::new(LoadBalancer::new(
        Arc::clone(&cfg),
        BalancerStrategy::Dynamoth,
        Arc::clone(&ring),
        servers.clone(),
        2,
        trace.clone(),
    )));

    // Three publishers and three subscribers on one channel.
    let channel = ChannelId(7);
    let mut publishers = Vec::new();
    let mut subscribers = Vec::new();
    for _ in 0..3 {
        let node = NodeId::from_index(builder.node_count());
        let client = DynamothClient::new(node, Arc::clone(&ring), Arc::clone(&cfg));
        builder.add_node(Box::new(Publisher::new(client, channel, 30.0, 256)));
        publishers.push(node);
    }
    for _ in 0..3 {
        let node = NodeId::from_index(builder.node_count());
        let client = DynamothClient::new(node, Arc::clone(&ring), Arc::clone(&cfg));
        builder.add_node(Box::new(Subscriber::new(client, channel, trace.clone())));
        subscribers.push(node);
    }

    let engine = builder.start();
    for &s in &servers {
        engine.schedule_timer(s.0, SimTime::from_millis(250), TAG_TICK);
    }
    engine.schedule_timer(lb, SimTime::from_millis(300), TAG_EVAL);
    for &s in &subscribers {
        engine.schedule_timer(s, SimTime::from_millis(10), TAG_START);
    }
    for &p in &publishers {
        engine.schedule_timer(p, SimTime::from_millis(150), TAG_START);
    }

    println!(
        "running the full middleware on {} OS threads for 3 s…",
        2 + 1 + 6
    );
    sleep(Duration::from_secs(3));
    for &s in &servers {
        println!("broker {s:?}: {} bytes sent", engine.egress_bytes(s.0));
    }
    let actors = engine.stop();

    let published: u64 = publishers
        .iter()
        .map(|&p| {
            actors[p.index()]
                .as_any()
                .downcast_ref::<Publisher>()
                .unwrap()
                .client()
                .stats()
                .publishes
        })
        .sum();
    println!("published {published} messages in 3 s (3 publishers @ 30 Hz)");
    for &s in &subscribers {
        let sub = actors[s.index()]
            .as_any()
            .downcast_ref::<Subscriber>()
            .unwrap();
        println!(
            "subscriber {s}: received {} (duplicates suppressed: {})",
            sub.received(),
            sub.client().stats().duplicates_suppressed
        );
    }
    println!(
        "mean end-to-end latency: {:.3} ms (in-process channels, no simulated WAN)",
        trace.mean_response_ms().unwrap_or(f64::NAN)
    );
}
