//! Elasticity (the paper's Experiment 3): the player population surges,
//! collapses and recovers; the Dynamoth load balancer rents servers as
//! the load grows and releases them — with lower priority, so after a
//! visible delay — when it falls.
//!
//! Run with: `cargo run --release --example elastic_workload`

use std::sync::Arc;

use dynamoth::core::{Cluster, ClusterConfig, RebalanceKind};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_players;
use dynamoth::workloads::{RGameConfig, Schedule};

fn main() {
    let mut cluster = Cluster::build(ClusterConfig {
        pool_size: 8,
        initial_active: 1,
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    // Surge to 500 players, drop to 120, recover to ~380.
    let schedule = Schedule::steps(
        500,
        120,
        260,
        SimTime::from_secs(2),
        SimTime::from_secs(80),
        SimTime::from_secs(120),
        SimTime::from_secs(160),
        SimTime::from_secs(220),
    );
    let (_, counter) = spawn_players(&mut cluster, &game, &schedule);

    println!("time   players  servers  response   phase");
    let phases = [
        (80, "surge"),
        (120, "plateau"),
        (160, "collapse"),
        (220, "recovery"),
        (300, "steady"),
    ];
    for step in 1..=30 {
        cluster.run_for(SimDuration::from_secs(10));
        let sec = step * 10;
        let phase = phases
            .iter()
            .find(|&&(end, _)| sec <= end)
            .map(|&(_, name)| name)
            .unwrap_or("steady");
        println!(
            "t={sec:3}s  {:5}    {:2}     {:7.1} ms  {phase}",
            counter.count(),
            cluster.active_server_count(),
            cluster
                .trace
                .mean_response_ms_between(sec - 10, sec)
                .unwrap_or(f64::NAN),
        );
    }

    let marks = cluster.trace.rebalance_series();
    let ups = marks
        .iter()
        .filter(|(_, k)| *k == RebalanceKind::HighLoad)
        .count();
    let downs = marks
        .iter()
        .filter(|(_, k)| *k == RebalanceKind::LowLoad)
        .count();
    println!();
    println!(
        "{} high-load rebalances (scale up / spread), {} low-load drains (scale down)",
        ups, downs
    );
    println!(
        "messages delivered: {}, lost subscriptions: {}",
        cluster.trace.delivered_total(),
        cluster.trace.lost_subscriptions()
    );
}
