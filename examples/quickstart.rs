//! Quickstart: bring up a Dynamoth cluster, attach a publisher and a few
//! subscribers to one channel, and watch messages flow end to end
//! through the middleware (consistent-hash bootstrap, LLA reports, load
//! balancer ticking in the background).
//!
//! Run with: `cargo run --release --example quickstart`

use dynamoth::core::{ChannelId, Cluster, ClusterConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::Subscriber;

fn main() {
    // A cluster with a pool of 4 pub/sub servers, 2 rented up front,
    // the Dynamoth balancer and the default WAN/bandwidth model.
    let mut cluster = Cluster::build(ClusterConfig {
        pool_size: 4,
        initial_active: 2,
        ..Default::default()
    });

    // One channel, 3 publishers at 5 msg/s, 10 subscribers.
    let channel = ChannelId(42);
    let (publishers, subscribers) = spawn_hot_channel(
        &mut cluster,
        channel,
        3,   // publishers
        5.0, // messages per second each
        512, // payload bytes
        10,  // subscribers
        SimTime::from_secs(1),
    );
    println!(
        "cluster up: {} servers, {} publishers, {} subscribers on {channel}",
        cluster.servers.len(),
        publishers.len(),
        subscribers.len()
    );

    // Let it run for 30 simulated seconds.
    cluster.run_for(SimDuration::from_secs(30));

    // Every subscriber received every publication exactly once.
    for &node in &subscribers {
        let sub: &Subscriber = cluster.world.actor(node).expect("subscriber actor present");
        println!(
            "subscriber {node}: {} messages, {} duplicates suppressed",
            sub.received(),
            sub.client().stats().duplicates_suppressed
        );
    }
    println!(
        "mean end-to-end response time: {:.1} ms (WAN floor ≈ 80 ms)",
        cluster.trace.mean_response_ms().unwrap_or(f64::NAN)
    );
    println!(
        "total deliveries: {}, lost subscriptions: {}",
        cluster.trace.delivered_total(),
        cluster.trace.lost_subscriptions()
    );
}
