//! Runs the substrate's TCP pub/sub broker and talks to it over a real
//! socket with the Redis wire protocol (RESP) — demonstrating that the
//! broker the experiments model is also a runnable server any Redis
//! client can use.
//!
//! Run with: `cargo run --release --example resp_broker`

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dynamoth::pubsub::resp::{self, Value};
use dynamoth::pubsub::TcpBroker;

fn send(stream: &mut TcpStream, words: &[&str]) {
    let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
    let mut out = Vec::new();
    resp::encode(&value, &mut out);
    stream.write_all(&out).expect("write");
}

fn recv(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Value {
    loop {
        if let Some((value, used)) = resp::decode(buf).expect("valid resp") {
            buf.drain(..used);
            return value;
        }
        let mut chunk = [0u8; 1024];
        match stream.read(&mut chunk) {
            Ok(0) => panic!("closed"),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(e) => panic!("{e}"),
        }
    }
}

fn main() {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
    println!("RESP pub/sub broker listening on {}", broker.local_addr());

    let mut subscriber = TcpStream::connect(broker.local_addr()).unwrap();
    subscriber
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut sub_buf = Vec::new();
    send(&mut subscriber, &["SUBSCRIBE", "news"]);
    println!("subscriber <- {:?}", recv(&mut subscriber, &mut sub_buf));

    let mut publisher = TcpStream::connect(broker.local_addr()).unwrap();
    publisher
        .set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let mut pub_buf = Vec::new();
    for text in ["hello", "from", "a real socket"] {
        send(&mut publisher, &["PUBLISH", "news", text]);
        let receivers = recv(&mut publisher, &mut pub_buf);
        let push = recv(&mut subscriber, &mut sub_buf);
        println!("publish {text:?} -> receivers {receivers:?}, push {push:?}");
    }

    send(&mut publisher, &["PING"]);
    println!("ping -> {:?}", recv(&mut publisher, &mut pub_buf));
    println!(
        "{} connections served; shutting down.",
        broker.connections_accepted()
    );
    broker.shutdown();
}
