//! Channel-level (micro) load balancing on a single hot channel —
//! Experiment 1 territory, but letting **Algorithm 1 decide on its own**
//! instead of configuring replication manually: a publication storm on
//! one channel trips the all-subscribers rule, the balancer replicates
//! the channel across servers, and the publishers/subscribers are
//! re-routed lazily through the wrong-server machinery.
//!
//! Run with: `cargo run --release --example hot_channel`

use dynamoth::core::{
    BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, DynamothConfig,
};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;

fn main() {
    // Lower thresholds than the defaults so the demo trips Algorithm 1
    // with a few hundred publishers (the defaults are calibrated for the
    // full-scale experiments).
    let dynamoth = DynamothConfig {
        all_subs_threshold: 300.0,
        publication_threshold: 400.0,
        ..Default::default()
    };
    let mut cluster = Cluster::build(ClusterConfig {
        pool_size: 4,
        initial_active: 4,
        strategy: BalancerStrategy::Dynamoth,
        dynamoth,
        ..Default::default()
    });

    // 120 publishers at 10 msg/s on one channel, one subscriber: a
    // publication-heavy channel (P_ratio = 1200).
    let channel = ChannelId(7);
    spawn_hot_channel(
        &mut cluster,
        channel,
        120,
        10.0,
        600,
        1,
        SimTime::from_secs(1),
    );

    for step in 1..=6 {
        cluster.run_for(SimDuration::from_secs(10));
        let mapping = cluster
            .load_balancer()
            .expect("balancer present")
            .plan()
            .mapping(channel)
            .cloned();
        let describe = match &mapping {
            None => "single server (consistent hashing)".to_string(),
            Some(ChannelMapping::Single(s)) => format!("single server ({s})"),
            Some(ChannelMapping::AllSubscribers(v)) => {
                format!("ALL-SUBSCRIBERS over {} servers", v.len())
            }
            Some(ChannelMapping::AllPublishers(v)) => {
                format!("ALL-PUBLISHERS over {} servers", v.len())
            }
        };
        println!(
            "t={:3}s  mapping: {describe}  (mean response {:.1} ms)",
            step * 10,
            cluster
                .trace
                .mean_response_ms_between(step * 10 - 10, step * 10)
                .unwrap_or(f64::NAN),
        );
    }

    println!();
    println!(
        "deliveries: {}  lost subscriptions: {}",
        cluster.trace.delivered_total(),
        cluster.trace.lost_subscriptions()
    );
    println!("reconfigurations:");
    for (t, kind) in cluster.trace.rebalance_series() {
        println!("  t={t:.0}s {kind:?}");
    }
}
