//! A condensed version of the paper's Experiment 2: an RGame world where
//! players keep joining until the cluster saturates, once under the
//! Dynamoth hierarchical balancer and once under the consistent-hashing
//! baseline. Prints a side-by-side timeline and the sustained-player
//! comparison (the paper's headline result).
//!
//! Run with: `cargo run --release --example game_scaling`
//! (≈1 minute of wall-clock time; it simulates two 200-second runs with
//! hundreds of players.)

use std::sync::Arc;

use dynamoth::core::{BalancerStrategy, Cluster, ClusterConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_players;
use dynamoth::workloads::{RGameConfig, Schedule};

fn run(strategy: BalancerStrategy) -> (Vec<String>, usize) {
    let mut cluster = Cluster::build(ClusterConfig {
        pool_size: 8,
        initial_active: 1,
        strategy,
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    // 80 players at the start, ramping to 700 over 200 seconds.
    let schedule = Schedule::ramp(80, 700, SimTime::from_secs(2), SimTime::from_secs(200));
    let (_, counter) = spawn_players(&mut cluster, &game, &schedule);

    let mut lines = Vec::new();
    let mut sustained = 0usize;
    for step in 1..=11 {
        cluster.run_for(SimDuration::from_secs(20));
        let sec = step * 20;
        let resp = cluster
            .trace
            .mean_response_ms_between(sec - 20, sec)
            .unwrap_or(f64::NAN);
        if resp <= 150.0 {
            sustained = sustained.max(counter.count());
        }
        lines.push(format!(
            "t={sec:3}s players={:4} servers={} response={resp:7.1} ms",
            counter.count(),
            cluster.active_server_count(),
        ));
    }
    (lines, sustained)
}

fn main() {
    let (dynamoth_lines, dynamoth_sustained) = run(BalancerStrategy::Dynamoth);
    let (ch_lines, ch_sustained) = run(BalancerStrategy::ConsistentHash);

    println!("{:^55} | {:^55}", "Dynamoth", "Consistent hashing");
    for (a, b) in dynamoth_lines.iter().zip(&ch_lines) {
        println!("{a:<55} | {b}");
    }
    println!();
    println!("players sustained below 150 ms:");
    println!("  dynamoth          {dynamoth_sustained}");
    println!("  consistent-hash   {ch_sustained}");
    if ch_sustained > 0 {
        println!(
            "  advantage         {:+.0}%  (paper reports +60% at full scale)",
            (dynamoth_sustained as f64 / ch_sustained as f64 - 1.0) * 100.0
        );
    }
}
