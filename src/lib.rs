//! # Dynamoth
//!
//! Facade crate for the Dynamoth reproduction (ICDCS 2015): a scalable,
//! elastic, channel-based pub/sub middleware for latency-constrained
//! cloud applications, rebuilt in Rust on top of a deterministic
//! discrete-event simulation of the paper's testbed.
//!
//! This crate re-exports the public APIs of all workspace crates so that
//! examples and downstream users can depend on a single crate:
//!
//! - [`sim`] — discrete-event simulation kernel
//! - [`net`] — latency / bandwidth network substrate
//! - [`pubsub`] — Redis-like channel pub/sub server
//! - [`core`] — the Dynamoth middleware itself (plans, client library,
//!   load analyzers, dispatchers, hierarchical load balancer)
//! - [`workloads`] — RGame and micro-benchmark workload generators
//! - [`rt`] — real-time engine running the same actors on OS threads

#![forbid(unsafe_code)]

pub use dynamoth_core as core;
pub use dynamoth_net as net;
pub use dynamoth_pubsub as pubsub;
pub use dynamoth_rt as rt;
pub use dynamoth_sim as sim;
pub use dynamoth_workloads as workloads;
