//! Minimal offline stand-in for the `criterion` crate. It implements
//! the subset the workspace benches use — `Criterion::bench_function`,
//! `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! calibrate-then-measure wall-clock loop that prints mean ns/iter and
//! derived throughput. No statistical analysis, HTML reports, or
//! baseline comparison.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub treats every
/// variant identically (setup is always excluded from timing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup call per routine call.
    PerIteration,
}

/// Drives and reports a set of named benchmarks.
#[derive(Debug)]
pub struct Criterion {
    measurement: Duration,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter (plus harness
        // flags such as `--bench`) to every bench binary; honour it so
        // a filtered run does not execute the whole suite.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            measurement: Duration::from_millis(200),
            filters,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if !self.filters.is_empty() && !self.filters.iter().any(|needle| id.contains(&**needle)) {
            return self;
        }
        let mut b = Bencher {
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        };
        let per_sec = if mean_ns > 0.0 { 1e9 / mean_ns } else { 0.0 };
        println!(
            "bench: {id:<40} {mean_ns:>12.1} ns/iter ({per_sec:>14.0} iters/s, {} iters)",
            b.iters
        );
        self
    }
}

/// Timing context passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Picks an iteration count that fills the measurement window,
    /// based on a short calibration run of `one` (which reports the
    /// cost of a single iteration).
    fn calibrate(&self, mut one: impl FnMut() -> Duration) -> u64 {
        let mut probe = Duration::ZERO;
        let mut probes = 0u64;
        while probe < Duration::from_millis(10) && probes < 10_000 {
            probe += one();
            probes += 1;
        }
        let per_iter = probe.checked_div(probes as u32).unwrap_or(Duration::ZERO);
        if per_iter.is_zero() {
            probes.max(1) * 20
        } else {
            ((self.measurement.as_nanos() / per_iter.as_nanos().max(1)) as u64)
                .clamp(10, 10_000_000)
        }
    }

    /// Times `routine`, including nothing else.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let iters = self.calibrate(|| {
            let t = Instant::now();
            black_box(routine());
            t.elapsed()
        });
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += iters;
    }

    /// Times `routine` on fresh inputs from `setup`; setup cost is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let iters = self.calibrate(|| {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        });
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
        }
        self.iters += iters;
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        // Build directly (not via `Default`) so stray harness args from
        // the test runner cannot filter the smoke benches out.
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            filters: Vec::new(),
        };
        let mut ran = 0u64;
        c.bench_function("smoke_iter", |b| b.iter(|| std::hint::black_box(1 + 1)));
        c.bench_function("smoke_batched", |b| {
            b.iter_batched(
                || vec![1u8; 16],
                |v| {
                    ran += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert!(ran > 0);
    }

    #[test]
    fn filters_skip_non_matching_ids() {
        let mut c = Criterion {
            measurement: Duration::from_millis(5),
            filters: vec!["fanout".to_string()],
        };
        let mut ran = false;
        c.bench_function("unrelated_bench", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(!ran);
        c.bench_function("fanout_smoke", |b| {
            b.iter(|| {
                ran = true;
            })
        });
        assert!(ran);
    }
}
