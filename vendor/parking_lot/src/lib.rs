//! Minimal offline stand-in for the `parking_lot` crate, backed by
//! `std::sync`. Only the API surface this workspace uses is provided:
//! [`Mutex`] and [`RwLock`] with non-poisoning `lock`/`read`/`write`.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock that, unlike `std::sync::Mutex`, does not
/// poison: a panic while holding the lock simply releases it.
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Poison from a
    /// panicking holder is ignored, matching `parking_lot` semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with the same non-poisoning behaviour.
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(StdRwLockReadGuard<'a, T>);

/// RAII guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(StdRwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            _ => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
