//! Minimal offline stand-in for the `crossbeam` crate, exposing only
//! `crossbeam::channel::{unbounded, Sender, Receiver, RecvTimeoutError}`
//! backed by `std::sync::mpsc`. The std sender is not `Sync`, so the
//! stub wraps it in a mutex to preserve crossbeam's `Sender: Sync`
//! contract that `dynamoth-rt` relies on for sharing senders across
//! node threads.

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::Duration;

    /// Sending half of an unbounded MPMC-ish channel (MPSC underneath,
    /// which is all this workspace needs).
    pub struct Sender<T>(Arc<Mutex<mpsc::Sender<T>>>);

    /// Receiving half of the channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// Every sender has been dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// Every sender has been dropped and the queue is empty.
        Disconnected,
    }

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Arc::new(Mutex::new(tx))), Receiver(rx))
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let tx = match self.0.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvTimeoutError> {
            self.0.recv().map_err(|_| RecvTimeoutError::Disconnected)
        }

        /// Blocks up to `timeout` for the next message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Returns the next message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(7u32).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }

        #[test]
        fn timeout_and_disconnect_are_distinguished() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn cloned_sender_works_from_other_thread() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1u8).unwrap())
                .join()
                .unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
        }
    }
}
