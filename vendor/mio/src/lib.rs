//! Minimal offline stand-in for the `mio` crate, backed directly by
//! Linux `epoll(7)` and `eventfd(2)` — the workspace builds fully
//! offline, so like the other `vendor/` crates this implements exactly
//! the API subset `dynamoth-pubsub`'s reactor uses, not a general
//! replacement:
//!
//! - [`Poll`] / [`Events`] / [`Event`] — a level-triggered readiness
//!   poller (`epoll_create1` / `epoll_ctl` / `epoll_wait`);
//! - [`Registry`] — cloneable registration handle; [`Source`] is
//!   implemented for the std TCP types via `AsRawFd` instead of
//!   wrapping them in mio-specific net types;
//! - [`Token`] / [`Interest`] — the usual opaque id and readiness mask;
//! - [`Waker`] — cross-thread wakeup via an edge-triggered `eventfd`
//!   (like real mio, the counter is written and never read: every
//!   `write` is a fresh edge, and a `u64` counter cannot practically
//!   saturate).
//!
//! All `unsafe` in the workspace is confined to this crate: the raw
//! syscall declarations and the `epoll_event` buffer handed to the
//! kernel. Everything above it (the broker reactor included) stays
//! under `#![forbid(unsafe_code)]`.
//!
//! Linux-only, which is all the real-network tier supports anyway.

#![warn(missing_docs)]

use std::io::{self, Write};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;
use std::time::Duration;

// Raw syscall surface. These link against the C library std already
// links; signatures match the Linux ABI.
extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLET: u32 = 1 << 31;

/// Mirror of the kernel's `struct epoll_event`. The x86-64 kernel ABI
/// declares it packed; other 64-bit architectures use natural layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Opaque per-registration id, echoed back in every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Token(pub usize);

/// Readiness interests a source is registered with. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u32);

impl Interest {
    /// Interest in read readiness.
    pub const READABLE: Interest = Interest(EPOLLIN | EPOLLRDHUP);
    /// Interest in write readiness.
    pub const WRITABLE: Interest = Interest(EPOLLOUT);

    /// Whether this interest includes readability.
    pub fn is_readable(self) -> bool {
        self.0 & EPOLLIN != 0
    }

    /// Whether this interest includes writability.
    pub fn is_writable(self) -> bool {
        self.0 & EPOLLOUT != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// Anything registrable with a [`Registry`]. Unlike real mio this stub
/// registers raw fds directly, so any `AsRawFd` type qualifies; the
/// caller owns fd lifetime (deregister before closing).
pub trait Source: AsRawFd {}

impl Source for std::net::TcpListener {}
impl Source for std::net::TcpStream {}
impl Source for OwnedFd {}

/// Cloneable handle that registers event sources with a [`Poll`].
#[derive(Clone)]
pub struct Registry {
    epfd: Arc<OwnedFd>,
}

impl Registry {
    fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token.0 as u64,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) }).map(|_| ())
    }

    /// Registers `source` for the given interests under `token`
    /// (level-triggered).
    pub fn register<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, source.as_raw_fd(), interest.0, token)
    }

    /// Changes the interests of an already registered `source`.
    pub fn reregister<S: Source>(
        &self,
        source: &S,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, source.as_raw_fd(), interest.0, token)
    }

    /// Removes `source` from the poller.
    pub fn deregister<S: Source>(&self, source: &S) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, Token(0))
    }
}

/// An epoll instance: polls registered sources for readiness.
pub struct Poll {
    registry: Registry,
}

impl Poll {
    /// Creates a fresh poller.
    pub fn new() -> io::Result<Poll> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Poll {
            registry: Registry {
                epfd: Arc::new(unsafe { OwnedFd::from_raw_fd(fd) }),
            },
        })
    }

    /// The registration handle of this poller.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Blocks until at least one registered source is ready or
    /// `timeout` passes (`None` blocks indefinitely), filling `events`.
    /// Sub-millisecond timeouts round **up** so a short timeout never
    /// degenerates into a busy spin.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => {
                let ms = d.as_millis() + u128::from(d.subsec_nanos() % 1_000_000 != 0);
                ms.min(i32::MAX as u128) as i32
            }
        };
        events.len = 0;
        loop {
            match cvt(unsafe {
                epoll_wait(
                    self.registry.epfd.as_raw_fd(),
                    events.buf.as_mut_ptr(),
                    events.buf.len() as i32,
                    timeout_ms,
                )
            }) {
                Ok(n) => {
                    events.len = n as usize;
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    // Retry with the original timeout: precise deadline
                    // accounting is the caller's job (ours re-derives
                    // timeouts every iteration anyway).
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// A buffer of readiness [`Event`]s filled by [`Poll::poll`].
pub struct Events {
    buf: Vec<EpollEvent>,
    len: usize,
}

impl Events {
    /// Creates a buffer holding up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the (possibly packed) kernel struct before
            // touching the fields.
            let raw = *raw;
            Event {
                bits: raw.events,
                token: Token(raw.data as usize),
            }
        })
    }

    /// Whether the last poll returned no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    bits: u32,
    token: Token,
}

impl Event {
    /// The token the source was registered under.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Read readiness (includes errors and hangups, which a read will
    /// surface as `Ok(0)` / `Err`).
    pub fn is_readable(&self) -> bool {
        self.bits & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Write readiness (includes errors, which a write will surface).
    pub fn is_writable(&self) -> bool {
        self.bits & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }

    /// The peer closed its writing half (or the connection errored).
    pub fn is_read_closed(&self) -> bool {
        self.bits & (EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0
    }
}

/// Cross-thread wakeup handle: readying a poller from outside any
/// registered source. Backed by an edge-triggered `eventfd` that is
/// written and never read — each write is a fresh edge, and the `u64`
/// counter cannot practically overflow.
pub struct Waker {
    file: std::fs::File,
}

impl Waker {
    /// Creates a waker whose [`Waker::wake`] makes `registry`'s poll
    /// return an event carrying `token`.
    pub fn new(registry: &Registry, token: Token) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        let file = std::fs::File::from(unsafe { OwnedFd::from_raw_fd(fd) });
        let mut ev = EpollEvent {
            events: EPOLLIN | EPOLLET,
            data: token.0 as u64,
        };
        cvt(unsafe {
            epoll_ctl(
                registry.epfd.as_raw_fd(),
                EPOLL_CTL_ADD,
                file.as_raw_fd(),
                &mut ev,
            )
        })?;
        Ok(Waker { file })
    }

    /// Wakes the poller. One `write(2)` on the eventfd; thread-safe,
    /// and coalescing multiple wakes into one event is fine by design.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.file).write_all(&1u64.to_ne_bytes()) {
            Ok(()) => Ok(()),
            // Counter saturated: a wake is already pending, good enough.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_poll() {
        let poll = Poll::new().unwrap();
        let waker = Arc::new(Waker::new(poll.registry(), Token(7)).unwrap());
        let mut poll = poll;
        let mut events = Events::with_capacity(8);
        let w = Arc::clone(&waker);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            w.wake().unwrap();
        });
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let tokens: Vec<Token> = events.iter().map(|e| e.token()).collect();
        assert_eq!(tokens, vec![Token(7)]);
        t.join().unwrap();
    }

    #[test]
    fn readable_socket_reports_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&server, Token(3), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        // Nothing to read yet.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        std::io::Write::write_all(&mut client, b"ping").unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token(), Token(3));
        assert!(ev.is_readable());

        let mut server = server;
        let mut buf = [0u8; 8];
        assert_eq!(server.read(&mut buf).unwrap(), 4);

        // Level-triggered: drained socket stops reporting.
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty());

        // Peer close surfaces as read-closed.
        drop(client);
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().next().expect("close event").is_read_closed());
        poll.registry().deregister(&server).unwrap();
    }

    #[test]
    fn writability_tracks_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poll = Poll::new().unwrap();
        poll.registry()
            .register(&server, Token(1), Interest::READABLE)
            .unwrap();
        let mut events = Events::with_capacity(8);
        poll.poll(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "readable-only idle socket is silent");

        poll.registry()
            .reregister(&server, Token(1), Interest::READABLE | Interest::WRITABLE)
            .unwrap();
        poll.poll(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().next().expect("writable event");
        assert!(ev.is_writable());
        drop(client);
    }
}
