//! Minimal offline stand-in for the `proptest` crate.
//!
//! It implements the subset of the API this workspace's property tests
//! use — the [`Strategy`](strategy::Strategy) trait with `prop_map` /
//! `prop_recursive`, range / tuple / `Just` / regex-class string
//! strategies, `prop::collection::{vec, btree_set}`, `any::<T>()`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` / `prop_oneof!`
//! macros — over a deterministic xorshift RNG seeded from the test
//! name, so every run explores the same cases. Differences from real
//! proptest: no shrinking (a failure reports the full generated case)
//! and `.proptest-regressions` files are not consulted.

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the case is a counterexample.
        Fail(String),
        /// `prop_assume!` rejected the case; generate another.
        Reject(String),
    }

    impl TestCaseError {
        /// A failing case with `message` as the explanation.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError::Fail(message.into())
        }

        /// A rejected (filtered-out) case.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError::Reject(message.into())
        }
    }

    /// Deterministic xorshift64* RNG used for value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds from an arbitrary byte string (FNV-1a), e.g. the test name.
        pub fn seed_from(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(h | 1)
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[lo, hi)`; `lo < hi` required.
        pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }

        /// Uniform float in `[0, 1)`.
        pub fn gen_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Splits off an independent child RNG.
        pub fn fork(&mut self) -> TestRng {
            TestRng(self.next_u64() | 1)
        }
    }

    /// Number of cases to run per property (`PROPTEST_CASES` overrides).
    fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    /// Drives one property: generates and runs up to `cases()` accepted
    /// cases, panicking on the first counterexample. `f` returns the
    /// debug rendering of the generated bindings plus the case outcome.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> (Vec<String>, Result<(), TestCaseError>),
    {
        let mut rng = TestRng::seed_from(name);
        let wanted = cases();
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < wanted && attempts < wanted.saturating_mul(20).max(100) {
            attempts += 1;
            let mut case_rng = rng.fork();
            let (desc, outcome) = f(&mut case_rng);
            match outcome {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => continue,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest property '{name}' failed: {msg}\n  case (attempt {attempts}):\n    {}",
                    desc.join("\n    ")
                ),
            }
        }
    }
}

pub mod strategy {
    use std::collections::BTreeSet;
    use std::ops::Range;
    use std::rc::Rc;

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy for storage in heterogeneous sets
        /// (e.g. `prop_oneof!` branches).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds recursive values: at each of `depth` levels the
        /// generator picks between the base strategy and one round of
        /// `recurse` applied to the shallower strategy. The
        /// `_desired_size` / `_expected_branch_size` tuning knobs of
        /// real proptest are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(cur.clone()).boxed();
                cur = Union::new(vec![leaf.clone(), deeper]).boxed();
            }
            cur
        }
    }

    /// Object-safe generation, used behind [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn generate_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy producing `V`.
    pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate_dyn(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        /// Builds the union; `branches` must be non-empty.
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union(branches)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.gen_range_u64(0, self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + (rng.next_u64() % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.gen_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A: 0, B: 1);
    tuple_strategy!(A: 0, B: 1, C: 2);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// `&'static str` patterns act as string strategies. Only the
    /// character-class form `[chars]{m,n}` (plus `{m}` and a bare class
    /// meaning one char) is supported — the only regex shapes used in
    /// this workspace's tests.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("unsupported regex strategy pattern: {self:?}"));
            let len = if lo == hi {
                lo
            } else {
                rng.gen_range_u64(lo as u64, hi as u64 + 1) as usize
            };
            (0..len)
                .map(|_| alphabet[rng.gen_range_u64(0, alphabet.len() as u64) as usize])
                .collect()
        }
    }

    /// Parses `[a-zA-Z0-9 ]{0,24}`-style patterns into (alphabet, min, max).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        if class.is_empty() {
            return None;
        }
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                if a > b {
                    return None;
                }
                for c in a..=b {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        let suffix = &rest[close + 1..];
        if suffix.is_empty() {
            return Some((alphabet, 1, 1));
        }
        let counts = suffix.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        if lo > hi {
            return None;
        }
        Some((alphabet, lo, hi))
    }

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> u8 {
            rng.next_u64() as u8
        }
    }

    impl Arbitrary for u16 {
        fn arbitrary(rng: &mut TestRng) -> u16 {
            rng.next_u64() as u16
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u8>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Inclusive-exclusive size bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.hi - self.lo <= 1 {
                self.lo
            } else {
                rng.gen_range_u64(self.lo as u64, self.hi as u64) as usize
            }
        }
    }

    /// Collection strategies (`prop::collection::*`).
    pub mod collection {
        use super::*;

        /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors of values from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeSet<S::Value>`.
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates ordered sets of values from `element`. Duplicates
        /// are retried a bounded number of times, so a narrow element
        /// domain may yield a smaller set than requested (real proptest
        /// rejects such cases; the bounded retry is equivalent for the
        /// domains used here).
        pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let n = self.size.pick(rng);
                let mut out = BTreeSet::new();
                let mut attempts = 0;
                while out.len() < n && attempts < n * 20 + 20 {
                    attempts += 1;
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::collection;

/// Defines property tests. Each function body runs for many generated
/// cases; bindings are drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__rng| {
                    let mut __case: ::std::vec::Vec<::std::string::String> = ::std::vec::Vec::new();
                    $(
                        let __generated = $crate::strategy::Strategy::generate(&($strat), __rng);
                        __case.push(::std::format!("{} = {:?}", stringify!($bind), __generated));
                        let $bind = __generated;
                    )+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    (__case, __outcome)
                });
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)*);
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies that generate the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(1.0f64..2.0), &mut rng);
            assert!((1.0..2.0).contains(&f));
        }
    }

    #[test]
    fn regex_class_patterns_generate_matching_strings() {
        let mut rng = TestRng::seed_from("regex");
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-zA-Z0-9_]{1,16}", &mut rng);
            assert!((1..=16).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn collections_honor_size_bounds() {
        let mut rng = TestRng::seed_from("coll");
        for _ in 0..50 {
            let v = Strategy::generate(&prop::collection::vec(0u64..5, 2..7), &mut rng);
            assert!((2..7).contains(&v.len()));
            let s = Strategy::generate(&prop::collection::btree_set(0usize..100, 3..5), &mut rng);
            assert!(s.len() <= 4);
        }
    }

    #[test]
    fn oneof_and_recursive_cover_all_branches() {
        #[derive(Debug, Clone, PartialEq)]
        enum T {
            Leaf(u64),
            Node(Vec<T>),
        }
        let strat = prop_oneof![(0u64..4).prop_map(T::Leaf)].prop_recursive(2, 8, 4, |inner| {
            prop::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        let mut rng = TestRng::seed_from("rec");
        let mut saw_node = false;
        for _ in 0..100 {
            if let T::Node(_) = Strategy::generate(&strat, &mut rng) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }

    proptest! {
        #[test]
        fn macro_smoke(x in 0u64..100, v in prop::collection::vec(0u8..10, 0..4)) {
            prop_assume!(x != 55);
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(x, 100);
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failing_property_panics_with_case() {
        crate::test_runner::run("always_fails", |rng| {
            let v = Strategy::generate(&(0u64..10), rng);
            (vec![format!("v = {v:?}")], Err(TestCaseError::fail("nope")))
        });
    }
}
