//! System-level elasticity integration tests (§III-B): the load
//! balancer rents servers under load, releases them when idle, and the
//! consistent-hashing baseline behaves as the paper describes.

use std::sync::Arc;

use dynamoth::core::{BalancerStrategy, Cluster, ClusterConfig, RebalanceKind};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_players;
use dynamoth::workloads::{RGameConfig, Schedule};

fn game_cluster(seed: u64, strategy: BalancerStrategy) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 8,
        initial_active: 1,
        strategy,
        ..Default::default()
    })
}

#[test]
fn servers_are_rented_as_load_grows() {
    let mut cluster = game_cluster(30, BalancerStrategy::Dynamoth);
    let game = Arc::new(RGameConfig::default());
    let schedule = Schedule::ramp(50, 400, SimTime::from_secs(2), SimTime::from_secs(60));
    spawn_players(&mut cluster, &game, &schedule);
    assert_eq!(cluster.active_server_count(), 1);
    cluster.run_for(SimDuration::from_secs(90));
    assert!(
        cluster.active_server_count() >= 3,
        "load balancer should have rented servers, has {}",
        cluster.active_server_count()
    );
    // Response time stayed playable throughout.
    let mean = cluster.trace.mean_response_ms_between(60, 90).unwrap();
    assert!(mean < 150.0, "mean response {mean} ms");
}

#[test]
fn servers_are_released_when_load_drops() {
    let mut cluster = game_cluster(31, BalancerStrategy::Dynamoth);
    let game = Arc::new(RGameConfig::default());
    // 400 players for a while, then all but 40 leave.
    let schedule = Schedule::steps(
        400,
        40,
        0,
        SimTime::from_secs(2),
        SimTime::from_secs(40),
        SimTime::from_secs(80),
        SimTime::from_secs(200),
        SimTime::from_secs(201),
    );
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(80));
    let at_peak = cluster.active_server_count();
    assert!(
        at_peak >= 3,
        "peak should use several servers, used {at_peak}"
    );
    cluster.run_for(SimDuration::from_secs(110));
    let after_drop = cluster.active_server_count();
    assert!(
        after_drop < at_peak,
        "servers not released: {at_peak} -> {after_drop}"
    );
    // The releases were low-load rebalances.
    assert!(cluster
        .trace
        .rebalance_series()
        .iter()
        .any(|&(_, k)| k == RebalanceKind::LowLoad));
    // Scale-down must not hurt latency (paper: no spikes on release).
    let mean = cluster.trace.mean_response_ms_between(120, 190).unwrap();
    assert!(mean < 150.0, "scale-down caused latency: {mean} ms");
}

#[test]
fn consistent_hash_baseline_grows_but_never_shrinks() {
    let mut cluster = game_cluster(32, BalancerStrategy::ConsistentHash);
    let game = Arc::new(RGameConfig::default());
    let schedule = Schedule::steps(
        400,
        40,
        0,
        SimTime::from_secs(2),
        SimTime::from_secs(40),
        SimTime::from_secs(80),
        SimTime::from_secs(200),
        SimTime::from_secs(201),
    );
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(80));
    let at_peak = cluster.active_server_count();
    assert!(at_peak >= 2, "baseline should also grow, used {at_peak}");
    cluster.run_for(SimDuration::from_secs(110));
    // The baseline has no low-load mechanism: servers stay rented.
    assert_eq!(cluster.active_server_count(), at_peak);
    assert!(cluster
        .trace
        .rebalance_series()
        .iter()
        .all(|&(_, k)| k == RebalanceKind::ConsistentHash));
}

#[test]
fn pool_limit_is_respected() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 33,
        pool_size: 2,
        initial_active: 1,
        strategy: BalancerStrategy::Dynamoth,
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    let schedule = Schedule::ramp(100, 500, SimTime::from_secs(2), SimTime::from_secs(40));
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(60));
    assert!(cluster.active_server_count() <= 2);
}

#[test]
fn deterministic_replay_same_seed_same_history() {
    let run = |seed: u64| {
        let mut cluster = game_cluster(seed, BalancerStrategy::Dynamoth);
        let game = Arc::new(RGameConfig::default());
        let schedule = Schedule::ramp(30, 150, SimTime::from_secs(2), SimTime::from_secs(30));
        spawn_players(&mut cluster, &game, &schedule);
        cluster.run_for(SimDuration::from_secs(45));
        (
            cluster.world.stats(),
            cluster.trace.delivered_total(),
            cluster.trace.mean_response_ms(),
            cluster.active_server_count(),
        )
    };
    let a = run(77);
    let b = run(77);
    assert_eq!(a, b, "same seed must replay identically");
    let c = run(78);
    assert_ne!(a.0, c.0, "different seeds should diverge");
}
