//! Channel-replication integration tests (§II-B): both schemes deliver
//! every message exactly once while actually spreading load over the
//! replica set, and Algorithm 1 enables replication on its own when a
//! channel's metrics call for it.

use dynamoth::core::{
    BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, DynamothConfig, Plan,
};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::{micro, Publisher, Subscriber};

const CHANNEL: ChannelId = ChannelId(0);

fn manual_cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Manual,
        ..Default::default()
    })
}

#[test]
fn all_subscribers_spreads_publishers_and_delivers_once() {
    let mut cluster = manual_cluster(20);
    let servers = cluster.servers.clone();
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::AllSubscribers(servers.clone()));
    cluster.install_plan(plan);

    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        30,
        10.0,
        300,
        2,
        SimTime::from_secs(1),
    );
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(15), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(25));

    let published: u64 = pubs
        .iter()
        .map(|&p| {
            cluster
                .world
                .actor::<Publisher>(p)
                .unwrap()
                .client()
                .stats()
                .publishes
        })
        .sum();
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        assert_eq!(
            sub.received(),
            published,
            "exactly-once under all-subscribers"
        );
        // The subscriber holds a subscription on EVERY replica.
        assert_eq!(sub.client().subscription_servers(CHANNEL).len(), 3);
    }
    // Every replica carried publications (publishers spread out): check
    // that each server processed a nontrivial share of commands.
    for &server in &servers {
        let node = cluster.server_node(server).unwrap();
        assert!(
            node.pubsub().commands_processed() > published / 10,
            "server {server} barely used: {}",
            node.pubsub().commands_processed()
        );
    }
}

#[test]
fn all_publishers_spreads_subscribers_and_delivers_once() {
    let mut cluster = manual_cluster(21);
    let servers = cluster.servers.clone();
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::AllPublishers(servers.clone()));
    cluster.install_plan(plan);

    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        1,
        10.0,
        300,
        60,
        SimTime::from_secs(1),
    );
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(15), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(25));

    let published = cluster
        .world
        .actor::<Publisher>(pubs[0])
        .unwrap()
        .client()
        .stats()
        .publishes;
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        assert_eq!(
            sub.received(),
            published,
            "exactly-once under all-publishers"
        );
        assert_eq!(sub.client().subscription_servers(CHANNEL).len(), 1);
    }
    // The 60 subscribers spread over the three replicas: every server
    // must hold a meaningful share (a fair split would be 20 each).
    for &server in &servers {
        let count = cluster
            .server_node(server)
            .unwrap()
            .pubsub()
            .subscriber_count(CHANNEL);
        assert!(
            (8..=40).contains(&count),
            "server {server} holds {count} subscribers; distribution failed"
        );
    }
}

#[test]
fn algorithm_1_replicates_a_publication_storm_automatically() {
    // Thresholds low enough that 60 publishers at 10 msg/s trip the
    // all-subscribers rule.
    let dynamoth = DynamothConfig {
        all_subs_threshold: 150.0,
        publication_threshold: 200.0,
        ..Default::default()
    };
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 22,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Dynamoth,
        dynamoth,
        ..Default::default()
    });
    spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        60,
        10.0,
        300,
        1,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(30));

    let mapping = cluster
        .load_balancer()
        .unwrap()
        .plan()
        .mapping(CHANNEL)
        .cloned();
    match mapping {
        Some(ChannelMapping::AllSubscribers(v)) => assert!(v.len() >= 2),
        other => panic!("expected automatic all-subscribers replication, got {other:?}"),
    }
}

#[test]
fn algorithm_1_replicates_a_subscriber_storm_automatically() {
    let dynamoth = DynamothConfig {
        all_pubs_threshold: 4.0,
        subscriber_threshold: 30.0,
        ..Default::default()
    };
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 23,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Dynamoth,
        dynamoth,
        ..Default::default()
    });
    // 2 publishers at 5 msg/s, 80 subscribers: S_ratio = 8.
    spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        2,
        5.0,
        300,
        80,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(30));

    let mapping = cluster
        .load_balancer()
        .unwrap()
        .plan()
        .mapping(CHANNEL)
        .cloned();
    match mapping {
        Some(ChannelMapping::AllPublishers(v)) => assert!(v.len() >= 2),
        other => panic!("expected automatic all-publishers replication, got {other:?}"),
    }
}

#[test]
fn replication_is_cancelled_when_the_storm_passes() {
    let dynamoth = DynamothConfig {
        all_subs_threshold: 150.0,
        publication_threshold: 200.0,
        t_wait: SimDuration::from_secs(5),
        ..Default::default()
    };
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 24,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Dynamoth,
        dynamoth,
        ..Default::default()
    });
    let (pubs, _) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        60,
        10.0,
        300,
        1,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(25));
    assert!(
        cluster
            .load_balancer()
            .unwrap()
            .plan()
            .mapping(CHANNEL)
            .is_some_and(|m| m.is_replicated()),
        "replication should be active during the storm"
    );
    // Storm ends; the balancer must eventually collapse the channel back
    // to a single server.
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(26), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(30));
    let mapping = cluster
        .load_balancer()
        .unwrap()
        .plan()
        .mapping(CHANNEL)
        .cloned();
    assert!(
        matches!(mapping, Some(ChannelMapping::Single(_))),
        "replication not cancelled: {mapping:?}"
    );
}
