//! Reconfiguration integration tests: the paper's central guarantee is
//! that plan changes never lose a message and never deliver one twice to
//! the application (§IV). These tests migrate live channels while
//! traffic flows and check exactly-once delivery end to end.

use dynamoth::core::{
    BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, DynamothConfig, Plan,
    ServerId,
};
use dynamoth::net::CloudTransportConfig;
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::{micro, Publisher, Subscriber};

const CHANNEL: ChannelId = ChannelId(0);

fn manual_cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 4,
        initial_active: 4,
        strategy: BalancerStrategy::Manual,
        ..Default::default()
    })
}

fn single(server: ServerId) -> Plan {
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::Single(server));
    plan
}

fn totals(
    cluster: &Cluster,
    pubs: &[dynamoth::sim::NodeId],
    subs: &[dynamoth::sim::NodeId],
) -> (u64, Vec<u64>, u64) {
    let published = pubs
        .iter()
        .map(|&p| {
            cluster
                .world
                .actor::<Publisher>(p)
                .unwrap()
                .client()
                .stats()
                .publishes
        })
        .sum();
    let received = subs
        .iter()
        .map(|&s| cluster.world.actor::<Subscriber>(s).unwrap().received())
        .collect();
    let duplicates = subs
        .iter()
        .map(|&s| {
            cluster
                .world
                .actor::<Subscriber>(s)
                .unwrap()
                .client()
                .stats()
                .duplicates_suppressed
        })
        .sum();
    (published, received, duplicates)
}

#[test]
fn migration_loses_nothing_and_delivers_once() {
    let mut cluster = manual_cluster(10);
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));
    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        3,
        10.0,
        400,
        6,
        SimTime::from_secs(1),
    );
    // Let traffic settle on server 0, then migrate the channel twice
    // while messages are in flight.
    cluster.run_for(SimDuration::from_secs(10));
    cluster.install_plan(single(servers[1]));
    cluster.run_for(SimDuration::from_secs(10));
    cluster.install_plan(single(servers[2]));
    // Stop publishing and drain.
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(30), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(45));

    let (published, received, duplicates) = totals(&cluster, &pubs, &subs);
    assert!(published > 500);
    for (i, &r) in received.iter().enumerate() {
        assert_eq!(
            r, published,
            "subscriber {i}: exactly-once violated across migration"
        );
    }
    // The overlap window (grace period + dispatcher mirroring) must have
    // produced duplicate wire deliveries that the library suppressed —
    // evidence the reconfiguration machinery actually ran.
    assert!(
        duplicates > 0,
        "expected suppressed duplicates during migration"
    );
}

#[test]
fn clients_learn_the_new_mapping_lazily() {
    let mut cluster = manual_cluster(11);
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));
    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        1,
        10.0,
        200,
        3,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(5));
    cluster.install_plan(single(servers[3]));
    cluster.run_for(SimDuration::from_secs(20));

    // Publisher publishes to the new server now.
    let publisher: &Publisher = cluster.world.actor(pubs[0]).unwrap();
    assert!(publisher.client().stats().wrong_server_notices >= 1);
    // All subscribers hold their subscription exactly on the new server.
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        assert_eq!(
            sub.client().subscription_servers(CHANNEL),
            vec![servers[3]],
            "subscription did not move"
        );
    }
    // The new server actually has the subscribers; the old server none.
    assert_eq!(
        cluster
            .server_node(servers[3])
            .unwrap()
            .pubsub()
            .subscriber_count(CHANNEL),
        3
    );
    assert_eq!(
        cluster
            .server_node(servers[0])
            .unwrap()
            .pubsub()
            .subscriber_count(CHANNEL),
        0
    );
}

#[test]
fn forwarding_state_winds_down_after_migration() {
    let mut cluster = manual_cluster(12);
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));
    let (pubs, _subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        1,
        10.0,
        200,
        2,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(5));
    cluster.install_plan(single(servers[1]));
    cluster.run_for(SimDuration::from_secs(30));

    // Once every subscriber moved, the old server told the new one to
    // stop mirroring back (NoMoreSubscribers, §IV-A5).
    let new_node = cluster.server_node(servers[1]).unwrap();
    assert!(
        !new_node.dispatcher().is_mirroring(CHANNEL),
        "new server still mirroring after subscribers moved"
    );
    // The old server's dispatcher did forward and emit a switch.
    let old_node = cluster.server_node(servers[0]).unwrap();
    assert!(old_node.dispatcher().stats().switches_emitted >= 1);
    assert!(old_node.dispatcher().stats().forwarded >= 1);
    let _ = pubs;
}

#[test]
fn migration_to_replicated_mapping_keeps_exactly_once() {
    let mut cluster = manual_cluster(13);
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));
    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        4,
        10.0,
        300,
        4,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(8));
    // Single → all-subscribers over three servers.
    let mut plan = Plan::bootstrap();
    plan.set(
        CHANNEL,
        ChannelMapping::AllSubscribers(vec![servers[0], servers[1], servers[2]]),
    );
    cluster.install_plan(plan);
    cluster.run_for(SimDuration::from_secs(10));
    // All-subscribers → all-publishers over two other servers.
    let mut plan = Plan::bootstrap();
    plan.set(
        CHANNEL,
        ChannelMapping::AllPublishers(vec![servers[2], servers[3]]),
    );
    cluster.install_plan(plan);
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(28), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(45));

    let (published, received, _) = totals(&cluster, &pubs, &subs);
    assert!(published > 500);
    for (i, &r) in received.iter().enumerate() {
        assert_eq!(r, published, "subscriber {i} across replication changes");
    }
    // Subscribers ended on exactly one member of the all-publishers set.
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        let servers_held = sub.client().subscription_servers(CHANNEL);
        assert_eq!(servers_held.len(), 1);
        assert!([servers[2], servers[3]].contains(&servers_held[0]));
    }
}

#[test]
fn cold_clients_resolve_via_consistent_hashing_and_get_redirected() {
    let mut cluster = manual_cluster(14);
    let servers = cluster.servers.clone();
    // Map the channel away from its hash home before any client exists.
    let hash_home = cluster.ring.server_for(CHANNEL);
    let target = *servers.iter().find(|&&s| s != hash_home).unwrap();
    cluster.install_plan(single(target));
    let (pubs, subs) =
        spawn_hot_channel(&mut cluster, CHANNEL, 1, 5.0, 200, 2, SimTime::from_secs(1));
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(15), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(25));

    let (published, received, _) = totals(&cluster, &pubs, &subs);
    assert!(published > 30);
    for &r in &received {
        assert_eq!(r, published, "cold-start redirection lost messages");
    }
    // The hash-home dispatcher saw and redirected the stray traffic.
    let home_node = cluster.server_node(hash_home).unwrap();
    let stats = home_node.dispatcher().stats();
    assert!(
        stats.wrong_server_publications + stats.wrong_server_subscriptions > 0,
        "redirection machinery never ran"
    );
}

/// Runs one live migration with publishers firing in *lock-step* on a
/// constant-latency transport, so multiple publications reach the
/// server within the same instant and the batch path (when enabled)
/// forms real multi-entry [`DeliverBatch`]es. Returns
/// `(published, received, duplicates, batches_received)`.
fn run_lockstep_migration(batching: bool) -> (u64, Vec<u64>, u64, u64) {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 16,
        pool_size: 4,
        initial_active: 4,
        strategy: BalancerStrategy::Manual,
        transport: CloudTransportConfig::fast_lan(),
        dynamoth: DynamothConfig {
            delivery_batching: batching,
            ..Default::default()
        },
        ..Default::default()
    });
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));

    let mut subs = Vec::new();
    for _ in 0..4 {
        let node = cluster.world.node_count();
        let node = dynamoth::sim::NodeId::from_index(node);
        let client = cluster.client_library(node);
        let actor = Subscriber::new(client, CHANNEL, cluster.trace.clone());
        cluster.add_client(Box::new(actor));
        cluster
            .world
            .schedule_timer(node, SimTime::from_secs(1), micro::TAG_START);
        subs.push(node);
    }
    let mut pubs = Vec::new();
    for _ in 0..3 {
        let node = cluster.world.node_count();
        let node = dynamoth::sim::NodeId::from_index(node);
        let client = cluster.client_library(node);
        let actor = Publisher::new(client, CHANNEL, 10.0, 300);
        cluster.add_client(Box::new(actor));
        // No stagger: every publisher fires at the very same instants.
        cluster
            .world
            .schedule_timer(node, SimTime::from_secs(2), micro::TAG_START);
        pubs.push(node);
    }

    cluster.run_for(SimDuration::from_secs(8));
    cluster.install_plan(single(servers[1]));
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(18), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(30));

    let (published, received, duplicates) = totals(&cluster, &pubs, &subs);
    let batches = subs
        .iter()
        .map(|&s| {
            cluster
                .world
                .actor::<Subscriber>(s)
                .unwrap()
                .client()
                .stats()
                .batches_received
        })
        .sum();
    (published, received, duplicates, batches)
}

#[test]
fn batched_migration_suppresses_duplicates_and_loses_nothing() {
    let (published, received, duplicates, batches) = run_lockstep_migration(true);
    assert!(published > 100);
    // The batch path was actually exercised: lock-step publishers force
    // multi-entry batches onto every subscriber.
    assert!(batches > 0, "no DeliverBatch reached a subscriber");
    // Exactly-once across the migration, same as the per-message path.
    for (i, &r) in received.iter().enumerate() {
        assert_eq!(r, published, "subscriber {i}: exactly-once violated");
    }
    // The overlap window still produced wire duplicates, and the dedup
    // window caught them inside batches too.
    assert!(
        duplicates > 0,
        "expected suppressed duplicates during migration"
    );
}

#[test]
fn batching_knob_does_not_change_delivery_outcomes() {
    let (published_on, received_on, duplicates_on, batches_on) = run_lockstep_migration(true);
    let (published_off, received_off, duplicates_off, batches_off) = run_lockstep_migration(false);
    // Publishing is timer-driven, so both runs offer the same load.
    assert_eq!(published_on, published_off);
    // The application observes identical delivery counts either way.
    assert_eq!(received_on, received_off);
    for &r in &received_on {
        assert_eq!(r, published_on);
    }
    // Both paths hit the reconfiguration overlap; only the batched run
    // uses batch frames.
    assert!(duplicates_on > 0 && duplicates_off > 0);
    assert!(batches_on > 0);
    assert_eq!(batches_off, 0, "knob off must never emit DeliverBatch");
}

#[test]
fn eager_switch_moves_subscribers_without_waiting_for_traffic() {
    // A channel with subscribers but NO publications: under the paper's
    // lazy scheme the switch would wait for the first publication; in
    // eager mode (ablation) it is emitted with the plan push.
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 15,
        pool_size: 4,
        initial_active: 4,
        strategy: BalancerStrategy::Manual,
        dynamoth: DynamothConfig {
            eager_switch: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let servers = cluster.servers.clone();
    cluster.install_plan(single(servers[0]));
    let (_, subs) = spawn_hot_channel(&mut cluster, CHANNEL, 0, 1.0, 100, 3, SimTime::from_secs(1));
    cluster.run_for(SimDuration::from_secs(3));
    cluster.install_plan(single(servers[1]));
    cluster.run_for(SimDuration::from_secs(5));
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        assert_eq!(
            sub.client().subscription_servers(CHANNEL),
            vec![servers[1]],
            "eager switch did not move an idle subscriber"
        );
    }
}
