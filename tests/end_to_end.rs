//! End-to-end integration tests: messages flow from publishers through
//! the middleware to subscribers with exactly-once application-level
//! delivery and WAN-floor response times.

use dynamoth::core::{ChannelId, Cluster, ClusterConfig};
use dynamoth::net::CloudTransportConfig;
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::{micro, Publisher, Subscriber};

fn cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 4,
        initial_active: 2,
        ..Default::default()
    })
}

/// Runs publishers for a fixed window, stops them, drains the network,
/// and returns (published, per-subscriber received) totals.
fn run_and_drain(
    cluster: &mut Cluster,
    publishers: &[dynamoth::sim::NodeId],
    subscribers: &[dynamoth::sim::NodeId],
    run_secs: u64,
) -> (u64, Vec<u64>) {
    for &p in publishers {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(run_secs), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(run_secs + 10));
    let published: u64 = publishers
        .iter()
        .map(|&p| {
            cluster
                .world
                .actor::<Publisher>(p)
                .expect("publisher")
                .client()
                .stats()
                .publishes
        })
        .sum();
    let received: Vec<u64> = subscribers
        .iter()
        .map(|&s| {
            cluster
                .world
                .actor::<Subscriber>(s)
                .expect("subscriber")
                .received()
        })
        .collect();
    (published, received)
}

#[test]
fn every_subscriber_receives_every_message_exactly_once() {
    let mut cluster = cluster(1);
    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        ChannelId(3),
        2,
        10.0,
        400,
        5,
        SimTime::from_secs(1),
    );
    let (published, received) = run_and_drain(&mut cluster, &pubs, &subs, 20);
    assert!(published > 100, "publishers must have produced traffic");
    for (i, &r) in received.iter().enumerate() {
        assert_eq!(r, published, "subscriber {i} missed or duplicated messages");
    }
}

#[test]
fn response_time_sits_on_the_wan_floor() {
    let mut cluster = cluster(2);
    spawn_hot_channel(
        &mut cluster,
        ChannelId(1),
        1,
        5.0,
        400,
        3,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(20));
    let mean = cluster
        .trace
        .mean_response_ms()
        .expect("deliveries happened");
    // Two one-way WAN samples with median ≈ 35 ms each, log-normal tail.
    assert!(
        (60.0..140.0).contains(&mean),
        "mean response {mean} ms should be near the ~80 ms WAN floor"
    );
}

#[test]
fn subscribers_on_different_channels_are_isolated() {
    let mut cluster = cluster(3);
    let (pubs_a, subs_a) = spawn_hot_channel(
        &mut cluster,
        ChannelId(1),
        1,
        10.0,
        200,
        2,
        SimTime::from_secs(1),
    );
    let (_pubs_b, subs_b) = spawn_hot_channel(
        &mut cluster,
        ChannelId(2),
        1,
        2.0,
        200,
        2,
        SimTime::from_secs(1),
    );
    let (published_a, received_a) = run_and_drain(&mut cluster, &pubs_a, &subs_a, 15);
    // Channel-2 subscribers must have received only channel-2 traffic,
    // which is published at 1/5th the rate.
    for &s in &subs_b {
        let got = cluster
            .world
            .actor::<Subscriber>(s)
            .expect("subscriber")
            .received();
        assert!(got < published_a / 2, "channel isolation violated: {got}");
    }
    for &r in &received_a {
        assert_eq!(r, published_a);
    }
}

#[test]
fn unsubscribed_clients_stop_receiving() {
    use dynamoth::core::Msg;
    use dynamoth::sim::{Actor, ActorContext, NodeId};

    // A subscriber that unsubscribes after its first delivery.
    struct OneShot {
        client: dynamoth::core::DynamothClient,
        channel: ChannelId,
        received: u64,
    }
    impl Actor<Msg> for OneShot {
        fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
            let now = ctx.now();
            let (events, out) = {
                let mut rng = ctx.rng().fork();
                self.client.on_message(now, &mut rng, from, msg)
            };
            for (to, m) in out {
                let _ = ctx.send(to, m);
            }
            for event in events {
                if matches!(event, dynamoth::core::ClientEvent::Delivery(_)) {
                    self.received += 1;
                    if self.received == 1 {
                        for (to, m) in self.client.unsubscribe(now, self.channel) {
                            let _ = ctx.send(to, m);
                        }
                    }
                }
            }
        }
        fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, _tag: u64) {
            let now = ctx.now();
            let out = {
                let mut rng = ctx.rng().fork();
                self.client.subscribe(now, &mut rng, self.channel)
            };
            for (to, m) in out {
                let _ = ctx.send(to, m);
            }
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    let mut cluster = Cluster::build(ClusterConfig {
        seed: 4,
        pool_size: 2,
        initial_active: 2,
        transport: CloudTransportConfig::fast_lan(),
        ..Default::default()
    });
    let channel = ChannelId(5);
    let node = dynamoth::sim::NodeId::from_index(cluster.world.node_count());
    let client = cluster.client_library(node);
    cluster.add_client(Box::new(OneShot {
        client,
        channel,
        received: 0,
    }));
    cluster
        .world
        .schedule_timer(node, SimTime::from_millis(100), 0);
    let (pubs, _) = spawn_hot_channel(&mut cluster, channel, 1, 10.0, 100, 0, SimTime::ZERO);
    cluster
        .world
        .schedule_timer(pubs[0], SimTime::from_secs(10), micro::TAG_STOP);
    cluster.run_for(SimDuration::from_secs(15));
    let one_shot: &OneShot = cluster.world.actor(node).expect("one-shot");
    // It received the first message plus at most the few already in
    // flight before the unsubscribe took effect.
    assert!(one_shot.received >= 1);
    assert!(
        one_shot.received <= 3,
        "kept receiving after unsubscribe: {}",
        one_shot.received
    );
}
