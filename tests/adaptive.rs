//! Tests for the adaptive-threshold extension (§III-B future work): a
//! near-failure episode tightens the trigger thresholds so the next
//! overload is handled earlier.

use std::sync::Arc;

use dynamoth::core::{Cluster, ClusterConfig, DynamothConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_players;
use dynamoth::workloads::{RGameConfig, Schedule};

fn run(adaptive: bool) -> (f64, f64) {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 80,
        pool_size: 8,
        initial_active: 1,
        dynamoth: DynamothConfig {
            adaptive_thresholds: adaptive,
            ..Default::default()
        },
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    // A fast ramp that briefly drives servers into the danger zone,
    // then a long steady phase to recover and drain the backlog.
    let schedule = Schedule::ramp(100, 420, SimTime::from_secs(2), SimTime::from_secs(30));
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(120));
    let (high, safe) = cluster.load_balancer().unwrap().effective_thresholds();
    let _ = safe;
    (
        high,
        cluster
            .trace
            .mean_response_ms_between(90, 120)
            .unwrap_or(f64::NAN),
    )
}

#[test]
fn danger_episodes_tighten_the_thresholds() {
    let (static_high, _) = run(false);
    let (adaptive_high, adaptive_latency) = run(true);
    let default_high = DynamothConfig::default().lr_high;
    assert_eq!(static_high, default_high, "static config must not drift");
    assert!(
        adaptive_high < default_high,
        "a near-failure ramp should have lowered LR_high, still at {adaptive_high}"
    );
    // And the system still works afterwards.
    assert!(
        adaptive_latency < 150.0,
        "late latency {adaptive_latency} ms"
    );
}

#[test]
fn thresholds_do_not_drift_without_danger() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 81,
        pool_size: 4,
        initial_active: 1,
        dynamoth: DynamothConfig {
            adaptive_thresholds: true,
            ..Default::default()
        },
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    // A light load that never approaches the danger zone.
    let schedule = Schedule::ramp(20, 100, SimTime::from_secs(2), SimTime::from_secs(20));
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(60));
    let (high, safe) = cluster.load_balancer().unwrap().effective_thresholds();
    let cfg = DynamothConfig::default();
    assert_eq!(high, cfg.lr_high);
    assert_eq!(safe, cfg.lr_safe);
}
