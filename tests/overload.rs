//! Overload-behaviour integration tests: the substrate failure modes the
//! paper's Experiment 1 depends on actually fire — bounded per-connection
//! output buffers disconnect overwhelmed subscribers, and saturated
//! servers exhibit rising response times — and replication fixes both.

use dynamoth::core::{BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, Plan};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::Subscriber;

const CHANNEL: ChannelId = ChannelId(0);

fn manual_cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Manual,
        ..Default::default()
    })
}

fn pin_single(cluster: &mut Cluster) {
    let first = cluster.servers[0];
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::Single(first));
    cluster.install_plan(plan);
}

#[test]
fn publication_storm_overflows_the_subscriber_connection() {
    let mut cluster = manual_cluster(40);
    pin_single(&mut cluster);
    // 400 publishers × 10 msg/s × ~2 kB ≫ the 4 MB/s connection cap.
    spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        400,
        10.0,
        1_936,
        1,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(15));
    assert!(
        cluster.trace.lost_subscriptions() > 0,
        "output-buffer overflow should have disconnected the subscriber"
    );
}

#[test]
fn all_subscribers_replication_prevents_the_overflow() {
    let mut cluster = manual_cluster(40); // same seed as above
    let servers = cluster.servers.clone();
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::AllSubscribers(servers));
    cluster.install_plan(plan);
    let (_, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        400,
        10.0,
        1_936,
        1,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(15));
    assert_eq!(
        cluster.trace.lost_subscriptions(),
        0,
        "replication should spread the stream over three connections"
    );
    let sub: &Subscriber = cluster.world.actor(subs[0]).unwrap();
    assert!(
        sub.received() > 10_000,
        "subscriber starved: {}",
        sub.received()
    );
}

#[test]
fn fanout_saturation_raises_response_time_and_replication_fixes_it() {
    // 700 subscribers on one server: ~14 MB/s of fan-out on a 10 MB/s
    // NIC — response time explodes.
    let mut saturated = manual_cluster(41);
    pin_single(&mut saturated);
    spawn_hot_channel(
        &mut saturated,
        CHANNEL,
        1,
        10.0,
        1_936,
        700,
        SimTime::from_secs(1),
    );
    saturated.run_for(SimDuration::from_secs(20));
    let hot = saturated.trace.mean_response_ms_between(10, 20).unwrap();

    let mut replicated = manual_cluster(41);
    let servers = replicated.servers.clone();
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::AllPublishers(servers));
    replicated.install_plan(plan);
    spawn_hot_channel(
        &mut replicated,
        CHANNEL,
        1,
        10.0,
        1_936,
        700,
        SimTime::from_secs(1),
    );
    replicated.run_for(SimDuration::from_secs(20));
    let cool = replicated.trace.mean_response_ms_between(10, 20).unwrap();

    assert!(hot > 500.0, "single server should be saturated: {hot} ms");
    assert!(
        cool < 150.0,
        "replication should keep latency low: {cool} ms"
    );
}

#[test]
fn disconnected_subscribers_can_resubscribe() {
    use dynamoth::net::CloudTransportConfig;

    // A tiny buffer makes the disconnect easy to trigger; the
    // RGame-style auto-resubscribe is exercised by the Player actor, so
    // here we just verify the server side cleans up and accepts the
    // client again.
    let transport = CloudTransportConfig {
        connection_buffer_limit: 20_000,
        connection_rate: 100_000.0,
        ..Default::default()
    };
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 42,
        pool_size: 1,
        initial_active: 1,
        strategy: BalancerStrategy::Manual,
        transport,
        ..Default::default()
    });
    let (_, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        40,
        10.0,
        1_936,
        1,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(10));
    assert!(cluster.trace.lost_subscriptions() > 0);
    let server = cluster.servers[0];
    // After the storm the subscriber is gone from the server.
    let sub: &Subscriber = cluster.world.actor(subs[0]).unwrap();
    assert!(!sub.client().is_subscribed(CHANNEL));
    let count = cluster
        .server_node(server)
        .unwrap()
        .pubsub()
        .subscriber_count(CHANNEL);
    assert_eq!(count, 0, "server should have dropped the dead connection");
}
