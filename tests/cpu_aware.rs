//! Tests for the CPU-aware load-balancing extension (the paper's §VII
//! future work): a CPU-bound fan-out workload that the
//! bandwidth-only balancer cannot see, but the CPU-aware one spreads.

use dynamoth::core::{ChannelId, Cluster, ClusterConfig, CpuModel, DynamothConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;

/// A broker whose fan-out is expensive: ~5 000 deliveries/s saturate
/// one server, while the resulting byte rate is negligible against the
/// NIC.
fn expensive_cpu() -> CpuModel {
    CpuModel {
        per_command: SimDuration::from_micros(20),
        per_delivery: SimDuration::from_micros(200),
    }
}

/// Four channels, each ~1750 deliveries/s of tiny messages: ~7 000
/// deliveries/s total ⇒ 140 % CPU on one server, but < 2 % bandwidth.
fn spawn_cpu_bound_load(cluster: &mut Cluster) {
    for ch in 0..4u64 {
        spawn_hot_channel(
            cluster,
            ChannelId(ch),
            7,   // publishers
            5.0, // msg/s each → 35 publications/s
            56,  // tiny payload (120 B on the wire)
            50,  // subscribers → 1 750 deliveries/s
            SimTime::from_secs(1),
        );
    }
}

fn run(cpu_aware: bool) -> (f64, usize) {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 60,
        pool_size: 4,
        initial_active: 1,
        dynamoth: DynamothConfig {
            cpu_aware,
            ..Default::default()
        },
        cpu: expensive_cpu(),
        ..Default::default()
    });
    spawn_cpu_bound_load(&mut cluster);
    // Detection, provisioning waves and draining the CPU backlog built
    // up before the spread take a while; measure the steady state.
    cluster.run_for(SimDuration::from_secs(75));
    let late = cluster
        .trace
        .mean_response_ms_between(55, 75)
        .unwrap_or(f64::MAX);
    (late, cluster.active_server_count())
}

#[test]
fn bandwidth_only_balancer_misses_cpu_saturation() {
    let (latency, servers) = run(false);
    // The NIC has plenty of headroom, so the paper's balancer sees no
    // overload: it never grows the pool, and the CPU queue melts down.
    assert_eq!(servers, 1, "bandwidth-only balancer should not react");
    assert!(
        latency > 1_000.0,
        "CPU saturation should have destroyed latency, got {latency} ms"
    );
}

#[test]
fn cpu_aware_balancer_spreads_the_fanout() {
    let (latency, servers) = run(true);
    assert!(
        servers >= 2,
        "CPU-aware balancer should have rented servers, used {servers}"
    );
    assert!(
        latency < 200.0,
        "latency should recover once the fan-out is spread, got {latency} ms"
    );
}

#[test]
fn cpu_aware_is_a_noop_for_bandwidth_bound_loads() {
    // With the default (cheap) CPU model the two configurations behave
    // identically on a bandwidth-bound workload.
    let run = |cpu_aware: bool| {
        let mut cluster = Cluster::build(ClusterConfig {
            seed: 61,
            pool_size: 3,
            initial_active: 1,
            dynamoth: DynamothConfig {
                cpu_aware,
                ..Default::default()
            },
            ..Default::default()
        });
        spawn_hot_channel(
            &mut cluster,
            ChannelId(0),
            5,
            10.0,
            1_936,
            30,
            SimTime::from_secs(1),
        );
        cluster.run_for(SimDuration::from_secs(30));
        (
            cluster.active_server_count(),
            cluster.trace.rebalance_series().len(),
        )
    };
    assert_eq!(run(false), run(true));
}
