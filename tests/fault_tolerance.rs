//! Fault-tolerance integration tests (the reliability extension, §VII
//! future work): a pub/sub server crashes mid-run; the load balancer
//! notices the silent LLA and migrates its channels, and clients detect
//! the dead server through missed pings and recover their subscriptions
//! through the consistent-hash fallback.

use dynamoth::core::{
    ChannelId, Cluster, ClusterConfig, DynamothConfig, RebalanceKind, ServerNode,
};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::spawn_hot_channel;
use dynamoth::workloads::Subscriber;

const CHANNEL: ChannelId = ChannelId(0);

fn cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 4,
        initial_active: 3,
        dynamoth: DynamothConfig {
            fault_tolerance: true,
            server_failure_timeout: SimDuration::from_secs(3),
            client_ping_interval: SimDuration::from_secs(1),
            client_failover_timeout: SimDuration::from_secs(4),
            t_wait: SimDuration::from_secs(5),
            // Keep all three servers rented (the micro workload is far
            // too light to justify them) so the crash has healthy
            // fail-over targets.
            lr_low: 0.0,
            ..Default::default()
        },
        ..Default::default()
    })
}

#[test]
fn crash_triggers_failover_and_deliveries_resume() {
    let mut cluster = cluster(100);
    let (_, subs) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        2,
        10.0,
        400,
        4,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(10));
    let victim = cluster.ring.server_for(CHANNEL);

    // Verify traffic flows through the hash home, then kill it.
    let received_before: u64 = subs
        .iter()
        .map(|&s| cluster.world.actor::<Subscriber>(s).unwrap().received())
        .sum();
    assert!(received_before > 200, "no steady traffic before the crash");
    cluster
        .world
        .actor_mut::<ServerNode>(victim.0)
        .unwrap()
        .crash();

    cluster.run_for(SimDuration::from_secs(30));

    // The balancer declared the server failed and produced a failover
    // plan.
    assert!(
        cluster
            .trace
            .rebalance_series()
            .iter()
            .any(|&(_, k)| k == RebalanceKind::Failover),
        "no failover recorded: {:?}",
        cluster.trace.rebalance_series()
    );
    let lb = cluster.load_balancer().unwrap();
    assert!(!lb.active_servers().contains(&victim));

    // Subscribers failed over and deliveries resumed: compare the last
    // 10 seconds against the publishing rate (2 pubs × 10 msg/s × 10 s
    // per subscriber).
    let now = cluster.world.now().as_secs();
    let late = cluster
        .trace
        .mean_response_ms_between(now - 10, now)
        .expect("deliveries resumed");
    assert!(late < 200.0, "late response {late} ms");
    for &s in &subs {
        let sub: &Subscriber = cluster.world.actor(s).unwrap();
        let servers = sub.client().subscription_servers(CHANNEL);
        assert!(
            !servers.contains(&victim),
            "subscriber still pinned to the dead server"
        );
    }
}

#[test]
fn recovered_server_can_be_rented_again() {
    let mut cluster = cluster(101);
    let (_, _) = spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        2,
        10.0,
        400,
        4,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(8));
    let victim = cluster.ring.server_for(CHANNEL);
    cluster
        .world
        .actor_mut::<ServerNode>(victim.0)
        .unwrap()
        .crash();
    cluster.run_for(SimDuration::from_secs(15));
    assert!(!cluster
        .load_balancer()
        .unwrap()
        .active_servers()
        .contains(&victim));

    // The node restarts; its broker state is empty but its LLA resumes
    // reporting, making it a spawn candidate again.
    cluster
        .world
        .actor_mut::<ServerNode>(victim.0)
        .unwrap()
        .recover();
    cluster.run_for(SimDuration::from_secs(10));
    let node = cluster.server_node(victim).unwrap();
    assert!(!node.is_crashed());
    assert_eq!(
        node.pubsub().subscription_count(),
        0,
        "state survived a crash"
    );
}

#[test]
fn healthy_clusters_never_fail_over() {
    let mut cluster = cluster(102);
    spawn_hot_channel(
        &mut cluster,
        CHANNEL,
        2,
        10.0,
        400,
        4,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(30));
    assert!(cluster
        .trace
        .rebalance_series()
        .iter()
        .all(|&(_, k)| k != RebalanceKind::Failover));
    // Liveness pings flowed without triggering anything.
    for s in &cluster.servers {
        assert!(!cluster.server_node(*s).unwrap().is_crashed());
    }
}
