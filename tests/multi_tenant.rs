//! Multi-tenancy: §II-C argues that keeping client plans minimal "also
//! enables the middleware to support multiple applications
//! concurrently". Here three independent applications — an RGame world,
//! a chat service and a notification feed — share one Dynamoth cluster,
//! and every client's local plan stays bounded by the handful of
//! channels it actually touches.

use std::sync::Arc;

use dynamoth::core::{ChannelId, Cluster, ClusterConfig};
use dynamoth::sim::{SimDuration, SimTime};
use dynamoth::workloads::setup::{spawn_chat_users, spawn_hot_channel, spawn_players};
use dynamoth::workloads::{ChatConfig, ChatUser, Player, RGameConfig, Schedule, Subscriber};

/// A channel id far away from both the tile and the room namespaces.
const FEED: ChannelId = ChannelId(9_000_000);

#[test]
fn three_applications_share_one_cluster() {
    let mut cluster = Cluster::build(ClusterConfig {
        seed: 110,
        pool_size: 8,
        initial_active: 2,
        ..Default::default()
    });

    // Application 1: a game world.
    let game = Arc::new(RGameConfig::default());
    let schedule = Schedule::ramp(50, 150, SimTime::from_secs(2), SimTime::from_secs(30));
    let (players, counter) = spawn_players(&mut cluster, &game, &schedule);

    // Application 2: chat rooms.
    let chat = Arc::new(ChatConfig {
        rooms: 60,
        ..Default::default()
    });
    let chatters = spawn_chat_users(
        &mut cluster,
        &chat,
        80,
        SimTime::from_secs(2),
        SimDuration::from_secs(20),
    );

    // Application 3: a notification feed (1 publisher, many readers).
    let (_, readers) =
        spawn_hot_channel(&mut cluster, FEED, 1, 2.0, 300, 40, SimTime::from_secs(2));

    cluster.run_for(SimDuration::from_secs(60));

    // Everyone is live and got traffic.
    assert_eq!(counter.count(), 150);
    let chat_received: u64 = chatters
        .iter()
        .map(|&u| cluster.world.actor::<ChatUser>(u).unwrap().received())
        .sum();
    assert!(chat_received > 1_000, "chat app starved: {chat_received}");
    for &r in &readers {
        let sub: &Subscriber = cluster.world.actor(r).unwrap();
        assert!(
            sub.received() > 50,
            "feed reader starved: {}",
            sub.received()
        );
    }
    let mean = cluster.trace.mean_response_ms_between(30, 60).unwrap();
    assert!(mean < 150.0, "shared cluster degraded: {mean} ms");

    // The paper's point: each client's plan holds only the channels it
    // uses, not the union of all applications (≥ 85 tile channels + 60
    // rooms + the feed exist cluster-wide).
    for &p in players.iter().take(20) {
        let player: &Player = cluster.world.actor(p).unwrap();
        assert!(
            player.client().plan_len() <= 12,
            "player plan grew to {}",
            player.client().plan_len()
        );
    }
    for &u in chatters.iter().take(20) {
        let user: &ChatUser = cluster.world.actor(u).unwrap();
        assert!(
            user.client().plan_len() <= 4 + chat.rooms_per_user,
            "chat plan grew to {}",
            user.client().plan_len()
        );
    }

    // Channel namespaces never collided: tile ids < rooms < feed.
    assert!(game.grid * game.grid < 1_000_000);
    assert!(chat.room_channel(chat.rooms - 1) < FEED);
}
