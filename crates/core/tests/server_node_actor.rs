//! Direct actor-level tests of [`ServerNode`]: drive raw protocol
//! messages into a single node inside a minimal world and inspect the
//! replies — no client library involved, so the server side of the
//! protocol is pinned down independently.

use std::sync::Arc;

use dynamoth_core::{
    ChannelId, ChannelMapping, DynamothConfig, MessageId, Msg, Plan, PlanId, Publication, Ring,
    ServerId, ServerNode, TAG_TICK,
};
use dynamoth_sim::{Actor, ActorContext, InstantTransport, NodeClass, NodeId, SimTime, World};

/// Records everything a client or peer receives.
#[derive(Default)]
struct Sink {
    got: Vec<(NodeId, Msg)>,
}
impl Actor<Msg> for Sink {
    fn on_message(&mut self, _ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        self.got.push((from, msg));
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Rig {
    world: World<Msg>,
    server: NodeId,
    lb: NodeId,
    clients: Vec<NodeId>,
    home: ChannelId,
    foreign: ChannelId,
    second: ServerId,
}

fn rig() -> Rig {
    let mut world: World<Msg> = World::new(3, Box::new(InstantTransport));
    let cfg = Arc::new(DynamothConfig::default());
    let s0 = ServerId(NodeId::from_index(0));
    let s1 = ServerId(NodeId::from_index(1));
    let ring = Arc::new(Ring::new(&[s0, s1], 32));
    let lb_placeholder = NodeId::from_index(2);
    let server = world.add_node(
        NodeClass::Infra,
        Box::new(ServerNode::new(
            s0,
            lb_placeholder,
            Arc::clone(&ring),
            cfg.clone(),
        )),
    );
    // The second "server" and the LB are sinks: we only exercise node 0.
    let peer = world.add_node(NodeClass::Infra, Box::new(Sink::default()));
    let lb = world.add_node(NodeClass::Infra, Box::new(Sink::default()));
    assert_eq!(peer, s1.0);
    assert_eq!(lb, lb_placeholder);
    let clients: Vec<NodeId> = (0..3)
        .map(|_| world.add_node(NodeClass::Client, Box::new(Sink::default())))
        .collect();
    let home = (0..)
        .map(ChannelId)
        .find(|&c| ring.server_for(c) == s0)
        .unwrap();
    let foreign = (0..)
        .map(ChannelId)
        .find(|&c| ring.server_for(c) == s1)
        .unwrap();
    Rig {
        world,
        server,
        lb,
        clients,
        home,
        foreign,
        second: s1,
    }
}

fn publication(channel: ChannelId, publisher: NodeId, seq: u64) -> Publication {
    Publication {
        channel,
        id: MessageId {
            origin: publisher,
            seq,
        },
        payload: 64,
        sent_at: SimTime::ZERO,
        publisher,
        hops: 0,
    }
}

fn received(world: &World<Msg>, node: NodeId) -> &[(NodeId, Msg)] {
    &world.actor::<Sink>(node).unwrap().got
}

#[test]
fn publish_fans_out_to_subscribers() {
    let mut rig = rig();
    let [a, b, publisher] = [rig.clients[0], rig.clients[1], rig.clients[2]];
    for &c in &[a, b] {
        rig.world.post(
            c,
            rig.server,
            Msg::Subscribe {
                channel: rig.home,
                plan_hint: PlanId(0),
            },
        );
    }
    rig.world.run_to_quiescence();
    rig.world.post(
        publisher,
        rig.server,
        Msg::Publish {
            publication: publication(rig.home, publisher, 0),
            plan_hint: PlanId(0),
        },
    );
    rig.world.run_to_quiescence();
    for &c in &[a, b] {
        assert!(
            received(&rig.world, c)
                .iter()
                .any(|(_, m)| matches!(m, Msg::Deliver(_))),
            "subscriber missed the fan-out"
        );
    }
    assert!(!received(&rig.world, publisher)
        .iter()
        .any(|(_, m)| matches!(m, Msg::Deliver(_))));
}

#[test]
fn wrong_channel_publication_is_redirected_and_forwarded() {
    let mut rig = rig();
    let publisher = rig.clients[0];
    rig.world.post(
        publisher,
        rig.server,
        Msg::Publish {
            publication: publication(rig.foreign, publisher, 0),
            plan_hint: PlanId(0),
        },
    );
    rig.world.run_to_quiescence();
    // The publisher was corrected…
    assert!(received(&rig.world, publisher)
        .iter()
        .any(|(_, m)| matches!(
            m,
            Msg::WrongServer { mapping, .. } if mapping.contains(rig.second)
        )));
    // …and the publication was forwarded to the right server.
    assert!(received(&rig.world, rig.second.0)
        .iter()
        .any(|(_, m)| matches!(m, Msg::Forward(_))));
}

#[test]
fn plan_push_then_stale_subscription_is_moved() {
    let mut rig = rig();
    let subscriber = rig.clients[0];
    let mut plan = Plan::bootstrap();
    plan.set(rig.home, ChannelMapping::Single(rig.second));
    plan.set_id(PlanId(1));
    rig.world
        .post(rig.lb, rig.server, Msg::PlanPush(Arc::new(plan)));
    rig.world.run_to_quiescence();
    rig.world.post(
        subscriber,
        rig.server,
        Msg::Subscribe {
            channel: rig.home,
            plan_hint: PlanId(0),
        },
    );
    rig.world.run_to_quiescence();
    assert!(received(&rig.world, subscriber)
        .iter()
        .any(|(_, m)| matches!(
            m,
            Msg::SubscriptionMoved { mapping, plan, .. }
                if mapping.contains(rig.second) && *plan == PlanId(1)
        )));
}

#[test]
fn ping_gets_pong_and_crashed_nodes_are_silent() {
    let mut rig = rig();
    let client = rig.clients[0];
    rig.world.post(client, rig.server, Msg::Ping);
    rig.world.run_to_quiescence();
    assert!(received(&rig.world, client)
        .iter()
        .any(|(_, m)| matches!(m, Msg::Pong)));

    rig.world
        .actor_mut::<ServerNode>(rig.server)
        .unwrap()
        .crash();
    rig.world.post(client, rig.server, Msg::Ping);
    rig.world.run_to_quiescence();
    let pongs = received(&rig.world, client)
        .iter()
        .filter(|(_, m)| matches!(m, Msg::Pong))
        .count();
    assert_eq!(pongs, 1, "a crashed node must not answer");
}

#[test]
fn lla_tick_reports_to_the_balancer() {
    let mut rig = rig();
    let [subscriber, publisher] = [rig.clients[0], rig.clients[1]];
    rig.world.post(
        subscriber,
        rig.server,
        Msg::Subscribe {
            channel: rig.home,
            plan_hint: PlanId(0),
        },
    );
    rig.world.run_to_quiescence();
    rig.world.post(
        publisher,
        rig.server,
        Msg::Publish {
            publication: publication(rig.home, publisher, 0),
            plan_hint: PlanId(0),
        },
    );
    rig.world.run_to_quiescence();
    rig.world
        .schedule_timer(rig.server, SimTime::from_secs(1), TAG_TICK);
    rig.world.run_until(SimTime::from_secs(2));
    let report = received(&rig.world, rig.lb)
        .iter()
        .find_map(|(_, m)| match m {
            Msg::LlaReport(r) => Some(r.clone()),
            _ => None,
        })
        .expect("no LLA report reached the balancer");
    let (channel, tick) = &report.channels[0];
    assert_eq!(*channel, rig.home);
    assert_eq!(tick.publications, 1);
    assert_eq!(tick.deliveries, 1);
    assert_eq!(tick.subscribers, 1);
    assert!(report.cpu_busy_micros > 0);
}
