//! Property tests for the consistent-hashing ring: the structural
//! guarantees the paper's bootstrap mapping (and the baseline balancer)
//! rely on.

use dynamoth_core::{ChannelId, Ring, ServerId, DEFAULT_VNODES};
use dynamoth_sim::NodeId;
use proptest::prelude::*;

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

fn servers(n: usize) -> Vec<ServerId> {
    (0..n).map(sid).collect()
}

proptest! {
    /// Lookups are pure functions of (ring, channel).
    #[test]
    fn lookup_is_deterministic(n in 1usize..10, channels in prop::collection::vec(0u64..10_000, 1..50)) {
        let ring_a = Ring::new(&servers(n), DEFAULT_VNODES);
        let ring_b = Ring::new(&servers(n), DEFAULT_VNODES);
        for &c in &channels {
            prop_assert_eq!(ring_a.server_for(ChannelId(c)), ring_b.server_for(ChannelId(c)));
        }
    }

    /// Every channel maps to a server that is actually on the ring.
    #[test]
    fn lookup_targets_are_members(n in 1usize..10, c in 0u64..100_000) {
        let ss = servers(n);
        let ring = Ring::new(&ss, DEFAULT_VNODES);
        prop_assert!(ss.contains(&ring.server_for(ChannelId(c))));
    }

    /// Adding a server only moves channels *to* the new server; every
    /// other assignment is untouched (the defining consistent-hashing
    /// property, §I of the paper).
    #[test]
    fn adding_moves_only_to_the_newcomer(
        n in 1usize..8,
        newcomer_offset in 0usize..4,
        channels in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let ss = servers(n);
        let mut ring = Ring::new(&ss, DEFAULT_VNODES);
        let newcomer = sid(100 + newcomer_offset);
        let before: Vec<ServerId> =
            channels.iter().map(|&c| ring.server_for(ChannelId(c))).collect();
        ring.add_server(newcomer);
        for (i, &c) in channels.iter().enumerate() {
            let after = ring.server_for(ChannelId(c));
            prop_assert!(after == before[i] || after == newcomer);
        }
    }

    /// Removing a server only relocates that server's channels.
    #[test]
    fn removal_touches_only_the_victims_channels(
        n in 2usize..8,
        victim_idx in 0usize..8,
        channels in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let ss = servers(n);
        let victim = ss[victim_idx % n];
        let mut ring = Ring::new(&ss, DEFAULT_VNODES);
        let before: Vec<ServerId> =
            channels.iter().map(|&c| ring.server_for(ChannelId(c))).collect();
        ring.remove_server(victim);
        for (i, &c) in channels.iter().enumerate() {
            let after = ring.server_for(ChannelId(c));
            if before[i] == victim {
                prop_assert!(after != victim);
            } else {
                prop_assert_eq!(after, before[i]);
            }
        }
    }

    /// Add followed by remove restores the original assignment.
    #[test]
    fn add_remove_round_trips(
        n in 1usize..8,
        channels in prop::collection::vec(0u64..100_000, 1..60),
    ) {
        let ss = servers(n);
        let mut ring = Ring::new(&ss, DEFAULT_VNODES);
        let before: Vec<ServerId> =
            channels.iter().map(|&c| ring.server_for(ChannelId(c))).collect();
        let newcomer = sid(500);
        ring.add_server(newcomer);
        ring.remove_server(newcomer);
        for (i, &c) in channels.iter().enumerate() {
            prop_assert_eq!(ring.server_for(ChannelId(c)), before[i]);
        }
    }
}
