//! Property tests for the bounded-load placer (consistent hashing with
//! bounded loads): the `(1+ε)×mean` cap is respected whenever any
//! eligible server has room, placement is a pure function of its
//! inputs, and `rehome` implements the balls-and-bins minimal-movement
//! contract — a channel moves only off an over-cap or ineligible home.

use std::collections::HashMap;

use dynamoth_pubsub::{BoundedPlacer, Channel as ChannelId, Ring, ServerId};
use proptest::prelude::*;

fn servers(n: usize) -> Vec<ServerId> {
    (0..n).map(ServerId::from_index).collect()
}

fn seeded(ids: &[ServerId], loads: &[f64]) -> Vec<(ServerId, f64)> {
    ids.iter().copied().zip(loads.iter().copied()).collect()
}

proptest! {
    /// Greedy cap feasibility: whenever at least one eligible server
    /// could take the channel without blowing the cap, the chosen
    /// server does not blow it either. (When nobody fits, the placer
    /// falls back to least-projected — bounding imbalance, not
    /// admission — and the cap check is vacuous.)
    #[test]
    fn cap_is_respected_whenever_feasible(
        loads in prop::collection::vec(0.0f64..1_000.0, 2..8),
        epsilon in 0.0f64..1.0,
        channels in prop::collection::vec((any::<u64>(), 0.0f64..500.0), 1..64),
    ) {
        let ids = servers(loads.len());
        let ring = Ring::new(&ids, 64);
        let pending: f64 = channels.iter().map(|&(_, b)| b).sum();
        let mut placer = BoundedPlacer::new(&seeded(&ids, &loads), epsilon, pending, 0.0);
        let cap = placer.cap_bytes();
        for &(c, bytes) in &channels {
            let before: HashMap<ServerId, f64> = placer.loads().collect();
            let feasible = before.values().any(|&p| p + bytes <= cap);
            let target = placer
                .place(&ring, ChannelId(c), bytes, &[])
                .expect("non-empty pool always places");
            prop_assert!(before.contains_key(&target), "placed on unknown server");
            if feasible {
                prop_assert!(
                    before[&target] + bytes <= cap + 1e-6,
                    "feasible placement blew the cap: {} + {} > {}",
                    before[&target], bytes, cap
                );
            }
        }
    }

    /// Placement is deterministic: identical loads, ε and channel
    /// sequence produce the identical assignment sequence.
    #[test]
    fn placement_is_a_pure_function_of_its_inputs(
        loads in prop::collection::vec(0.0f64..1_000.0, 2..8),
        epsilon in 0.0f64..1.0,
        channels in prop::collection::vec((any::<u64>(), 0.0f64..500.0), 1..48),
    ) {
        let ids = servers(loads.len());
        let ring = Ring::new(&ids, 64);
        let pending: f64 = channels.iter().map(|&(_, b)| b).sum();
        let run = || {
            let mut placer =
                BoundedPlacer::new(&seeded(&ids, &loads), epsilon, pending, 0.0);
            channels
                .iter()
                .map(|&(c, bytes)| placer.place(&ring, ChannelId(c), bytes, &[]))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(), run());
    }

    /// Minimal movement (balls-and-bins hysteresis): `rehome` keeps the
    /// current home whenever it is eligible and under the cap; a home
    /// that is ineligible (removed/quarantined server) always yields an
    /// eligible replacement.
    #[test]
    fn rehome_moves_only_cap_violating_or_ineligible_channels(
        loads in prop::collection::vec(0.0f64..1_000.0, 2..8),
        epsilon in 0.0f64..1.0,
        channel in any::<u64>(),
        bytes in 0.0f64..500.0,
        cur in 0usize..8,
        cap_floor in 0.0f64..2_000.0,
    ) {
        let ids = servers(loads.len());
        let ring = Ring::new(&ids, 64);
        let cur = cur % loads.len();
        let current = ids[cur];

        let mut placer =
            BoundedPlacer::new(&seeded(&ids, &loads), epsilon, 0.0, cap_floor);
        let over = placer.is_over_cap(current);
        let target = placer
            .rehome(&ring, ChannelId(channel), bytes, Some(current))
            .expect("non-empty pool always rehomes");
        if !over {
            prop_assert_eq!(target, current, "under-cap home was moved");
        } else {
            prop_assert!(placer.is_eligible(target));
        }

        // The same channel homed on a server outside the pool (rented
        // away or quarantined) must be re-placed on a live one.
        let ghost = ServerId::from_index(loads.len() + 3);
        let mut placer2 =
            BoundedPlacer::new(&seeded(&ids, &loads), epsilon, 0.0, cap_floor);
        let landed = placer2
            .rehome(&ring, ChannelId(channel), bytes, Some(ghost))
            .expect("non-empty pool always rehomes");
        prop_assert!(ids.contains(&landed), "rehome landed on the ghost");
    }

    /// Server-set change end to end: place a batch over `n` servers,
    /// then add one server and `rehome` every channel against the
    /// post-placement loads. Channels whose old home is still under the
    /// new cap stay put — the hysteresis that keeps a broker rent from
    /// cascading into mass migration.
    #[test]
    fn adding_a_server_moves_only_over_cap_channels(
        loads in prop::collection::vec(0.0f64..500.0, 2..7),
        epsilon in 0.1f64..1.0,
        channels in prop::collection::vec((any::<u64>(), 1.0f64..300.0), 1..32),
    ) {
        let ids = servers(loads.len());
        let ring = Ring::new(&ids, 64);
        let pending: f64 = channels.iter().map(|&(_, b)| b).sum();
        let mut placer =
            BoundedPlacer::new(&seeded(&ids, &loads), epsilon, pending, 0.0);
        let assigned: Vec<(u64, f64, ServerId)> = channels
            .iter()
            .map(|&(c, bytes)| {
                let s = placer.place(&ring, ChannelId(c), bytes, &[]).unwrap();
                (c, bytes, s)
            })
            .collect();
        let after: Vec<(ServerId, f64)> = placer.loads().collect();

        // Rent one more broker (measured load 0) and re-examine.
        let mut grown = ids.clone();
        grown.push(ServerId::from_index(loads.len()));
        let grown_ring = Ring::new(&grown, 64);
        let mut seeds = after;
        seeds.push((ServerId::from_index(loads.len()), 0.0));
        let mut replacer = BoundedPlacer::new(&seeds, epsilon, 0.0, 0.0);
        for &(c, bytes, home) in &assigned {
            let keeps = !replacer.is_over_cap(home);
            let target = replacer
                .rehome(&grown_ring, ChannelId(c), bytes, Some(home))
                .unwrap();
            if keeps {
                prop_assert_eq!(target, home, "under-cap channel migrated on growth");
            }
        }
    }
}
