//! Actor-level tests of the load balancer: synthetic LLA reports drive
//! the evaluation loop and we observe plan pushes, provisioning and
//! pacing — with recorder actors standing in for the pub/sub server
//! nodes so no real traffic interferes.

use std::sync::Arc;

use dynamoth_core::balancer::TAG_EVAL;
use dynamoth_core::{
    BalancerStrategy, ChannelId, ChannelTick, DynamothConfig, LlaReport, LoadBalancer, Msg, Plan,
    PlanId, Ring, ServerId, DEFAULT_VNODES,
};
use dynamoth_sim::{
    Actor, ActorContext, InstantTransport, NodeClass, NodeId, SimDuration, SimTime, World,
};

/// Stands in for a pub/sub server node: records every plan pushed to it.
#[derive(Default)]
struct PlanRecorder {
    plans: Vec<Plan>,
}

impl Actor<Msg> for PlanRecorder {
    fn on_message(&mut self, _ctx: &mut dyn ActorContext<Msg>, _from: NodeId, msg: Msg) {
        if let Msg::PlanPush(plan) = msg {
            self.plans.push((*plan).clone());
        }
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

struct Rig {
    world: World<Msg>,
    lb: NodeId,
    servers: Vec<ServerId>,
    cfg: Arc<DynamothConfig>,
    trace: dynamoth_core::TraceHandle,
}

fn rig(strategy: BalancerStrategy, pool: usize, active: usize) -> Rig {
    let cfg = Arc::new(DynamothConfig {
        t_wait: SimDuration::from_secs(5),
        provisioning_delay: SimDuration::from_secs(3),
        ..Default::default()
    });
    let mut world: World<Msg> = World::new(9, Box::new(InstantTransport));
    let servers: Vec<ServerId> = (0..pool)
        .map(|_| ServerId(world.add_node(NodeClass::Infra, Box::new(PlanRecorder::default()))))
        .collect();
    let ring = Arc::new(Ring::new(&servers[..active], DEFAULT_VNODES));
    let trace = dynamoth_core::TraceHandle::new();
    let lb_actor = LoadBalancer::new(
        Arc::clone(&cfg),
        strategy,
        ring,
        servers.clone(),
        active,
        trace.clone(),
    );
    let lb = world.add_node(NodeClass::Infra, Box::new(lb_actor));
    world.schedule_timer(lb, SimTime::from_millis(1_100), TAG_EVAL);
    Rig {
        world,
        lb,
        servers,
        cfg,
        trace,
    }
}

impl Rig {
    fn report(&mut self, server: ServerId, tick: u64, egress: u64) {
        let per_channel = egress / 4;
        let channels = (0..4)
            .map(|i| {
                (
                    ChannelId(i),
                    ChannelTick {
                        publications: 10,
                        deliveries: 100,
                        bytes_in: 1_000,
                        bytes_out: per_channel,
                        publishers: 5,
                        subscribers: 10,
                    },
                )
            })
            .collect();
        let msg = Msg::LlaReport(LlaReport {
            server,
            tick,
            measured_egress_bytes: egress,
            capacity_bytes: self.cfg.capacity_per_tick(),
            cpu_busy_micros: 0,
            channels,
        });
        self.world.post(server.0, self.lb, msg);
    }

    /// Reports `egress` from every listed server for `ticks` seconds.
    fn drive(&mut self, loads: &[(ServerId, u64)], ticks: u64, from_tick: u64) {
        for tick in 0..ticks {
            self.world
                .run_until(SimTime::from_secs(self.world.now().as_secs() + 1));
            for &(s, egress) in loads {
                self.report(s, from_tick + tick, egress);
            }
        }
        self.world
            .run_until(SimTime::from_secs(self.world.now().as_secs() + 2));
    }

    fn lb(&self) -> &LoadBalancer {
        self.world.actor(self.lb).unwrap()
    }

    fn plans_at(&self, server: ServerId) -> &[Plan] {
        &self.world.actor::<PlanRecorder>(server.0).unwrap().plans
    }

    fn hot(&self) -> u64 {
        (self.cfg.capacity_per_tick() * 1.2) as u64
    }
}

#[test]
fn overload_triggers_provisioning_then_migration() {
    let mut rig = rig(BalancerStrategy::Dynamoth, 4, 1);
    let first = rig.servers[0];
    let hot = rig.hot();
    rig.drive(&[(first, hot)], 2, 0);
    // Overload detected: one server provisioning, none ready yet.
    assert_eq!(rig.lb().active_servers().len(), 1);
    assert_eq!(rig.lb().pending_count(), 1);
    rig.drive(&[(first, hot)], 8, 2);
    let lb = rig.lb();
    assert_eq!(lb.active_servers().len(), 2);
    assert!(lb.plan().id() > PlanId(0), "a rebalancing plan must exist");
    assert!(!lb.plan().is_empty(), "channels must have been migrated");
    // Every dispatcher in the pool received the plan (even inactive
    // servers need it to redirect strays).
    for &s in &rig.servers {
        assert!(
            rig.plans_at(s)
                .iter()
                .any(|p| p.id() == rig.lb().plan().id()),
            "plan did not reach {s}"
        );
    }
}

#[test]
fn t_wait_paces_plan_generation() {
    let mut rig = rig(BalancerStrategy::Dynamoth, 4, 2);
    let [a, b] = [rig.servers[0], rig.servers[1]];
    let hot = rig.hot();
    rig.drive(&[(a, hot), (b, hot)], 12, 0);
    let marks = rig.trace.rebalance_series();
    // ~14 seconds of overload with t_wait = 5 s allows at most 3 plans.
    assert!(
        (1..=3).contains(&marks.len()),
        "T_wait not respected: {} plans",
        marks.len()
    );
}

#[test]
fn idle_pool_is_drained_to_one_server() {
    let mut rig = rig(BalancerStrategy::Dynamoth, 4, 2);
    let [a, b] = [rig.servers[0], rig.servers[1]];
    rig.drive(&[(a, 10), (b, 10)], 8, 0);
    assert_eq!(rig.lb().active_servers().len(), 1);
    // After the shrink no further plans appear.
    let marks_before = rig.trace.rebalance_series().len();
    rig.drive(&[(rig.servers[0], 10)], 8, 8);
    assert_eq!(rig.trace.rebalance_series().len(), marks_before);
}

#[test]
fn manual_strategy_never_rebalances() {
    let mut rig = rig(BalancerStrategy::Manual, 4, 2);
    let first = rig.servers[0];
    let hot = rig.hot();
    rig.drive(&[(first, hot)], 10, 0);
    assert_eq!(rig.lb().plan().id(), PlanId(0));
    assert!(rig.trace.rebalance_series().is_empty());
    assert_eq!(rig.lb().active_servers().len(), 2);
}

#[test]
fn consistent_hash_strategy_spawns_and_remaps_everything() {
    let mut rig = rig(BalancerStrategy::ConsistentHash, 4, 1);
    let first = rig.servers[0];
    let hot = rig.hot();
    rig.drive(&[(first, hot)], 10, 0);
    let lb = rig.lb();
    assert!(lb.active_servers().len() >= 2, "baseline must grow");
    // The baseline plan maps every known channel via the grown ring,
    // never replicated.
    assert_eq!(lb.plan().len(), 4);
    for (_, mapping) in lb.plan().iter() {
        assert!(!mapping.is_replicated());
    }
    assert!(rig
        .trace
        .rebalance_series()
        .iter()
        .all(|&(_, k)| k == dynamoth_core::RebalanceKind::ConsistentHash));
}

#[test]
fn load_trace_reflects_reports() {
    let mut rig = rig(BalancerStrategy::Manual, 2, 2);
    let [a, b] = [rig.servers[0], rig.servers[1]];
    let cap = rig.cfg.capacity_per_tick();
    rig.drive(&[(a, (cap * 0.8) as u64), (b, (cap * 0.4) as u64)], 5, 0);
    let series = rig.trace.load_series();
    assert!(!series.is_empty());
    let (_, avg, max) = *series.last().unwrap();
    assert!((avg - 0.6).abs() < 0.01, "avg {avg}");
    assert!((max - 0.8).abs() < 0.01, "max {max}");
    assert!(rig.trace.server_series().len() >= 5);
}
