//! Property tests of the dispatcher protocol: under arbitrary plan
//! changes and publication streams, the redirection machinery keeps its
//! structural invariants (no self-forwarding, bounded hop counts, at
//! most one switch per change, version monotonicity).

use std::sync::Arc;

use dynamoth_core::{
    ChannelId, ChannelMapping, DispatchAction, Dispatcher, MessageId, Plan, PlanId, Publication,
    Ring, ServerId, MAX_FORWARD_HOPS,
};
use dynamoth_sim::{NodeId, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

fn arb_mapping() -> impl Strategy<Value = ChannelMapping> {
    prop_oneof![
        (0usize..6).prop_map(|i| ChannelMapping::Single(sid(i))),
        prop::collection::btree_set(0usize..6, 2..4)
            .prop_map(|s| ChannelMapping::AllSubscribers(s.into_iter().map(sid).collect())),
        prop::collection::btree_set(0usize..6, 2..4)
            .prop_map(|s| ChannelMapping::AllPublishers(s.into_iter().map(sid).collect())),
    ]
}

#[derive(Debug, Clone)]
enum Event {
    InstallPlan(Vec<(u64, ChannelMapping)>),
    Publish { channel: u64, hops: u8, hint: u64 },
    NoLocalSubs(u64),
    Expire(u64),
}

fn arb_event() -> impl Strategy<Value = Event> {
    prop_oneof![
        prop::collection::vec((0u64..8, arb_mapping()), 0..4).prop_map(Event::InstallPlan),
        (0u64..8, 0u8..6, 0u64..10).prop_map(|(channel, hops, hint)| Event::Publish {
            channel,
            hops,
            hint
        }),
        (0u64..8).prop_map(Event::NoLocalSubs),
        (0u64..8).prop_map(Event::Expire),
    ]
}

proptest! {
    #[test]
    fn dispatcher_invariants_hold_under_arbitrary_histories(
        events in prop::collection::vec(arb_event(), 1..60),
    ) {
        let servers: Vec<ServerId> = (0..6).map(sid).collect();
        let ring = Arc::new(Ring::new(&servers, 32));
        let me = sid(0);
        let mut d = Dispatcher::new(
            me,
            Arc::clone(&ring),
            SimDuration::from_secs(60),
            SimDuration::from_secs(2),
        );
        let mut now = SimTime::ZERO;
        let mut rng = SimRng::new(5);
        let mut plan_version = 0u64;
        let mut switches_per_install = 0usize;
        for event in events {
            now += SimDuration::from_millis(250);
            match event {
                Event::InstallPlan(entries) => {
                    plan_version += 1;
                    let mut plan = Plan::bootstrap();
                    for (c, m) in entries {
                        plan.set(ChannelId(c), m);
                    }
                    plan.set_id(PlanId(plan_version));
                    d.install_plan(now, Arc::new(plan));
                    switches_per_install = 0;
                }
                Event::Publish { channel, hops, hint } => {
                    let p = Publication {
                        channel: ChannelId(channel),
                        id: MessageId { origin: NodeId::from_index(99), seq: 0 },
                        payload: 32,
                        sent_at: now,
                        publisher: NodeId::from_index(99),
                        hops,
                    };
                    let actions = d.on_client_publication(now, &mut rng, &p, PlanId(hint));
                    for action in &actions {
                        match action {
                            DispatchAction::ForwardTo { servers, publication } => {
                                // Never forward to ourselves, never exceed
                                // the hop bound, always increment hops.
                                prop_assert!(hops < MAX_FORWARD_HOPS);
                                prop_assert_eq!(publication.hops, hops + 1);
                                prop_assert!(!servers.is_empty());
                                for s in servers {
                                    prop_assert!(*s != me || servers.len() > 1,
                                        "self in forward targets: {servers:?}");
                                }
                            }
                            DispatchAction::EmitSwitch { plan, .. } => {
                                switches_per_install += 1;
                                // At most one switch per channel per plan
                                // install; plan versions never regress.
                                prop_assert!(switches_per_install <= 8);
                                prop_assert!(plan.0 <= plan_version);
                            }
                            DispatchAction::NotifyWrongServer { plan, mapping, .. } => {
                                prop_assert!(plan.0 <= plan_version);
                                prop_assert!(mapping.replication_factor() >= 1);
                            }
                            DispatchAction::NotifyNoMoreSubscribers { .. } => {}
                        }
                    }
                    // A current-hint publication at a responsible server
                    // yields no wrong-server notice.
                    if hint >= plan_version && d.is_responsible(ChannelId(channel)) {
                        let corrected = actions
                            .iter()
                            .any(|a| matches!(a, DispatchAction::NotifyWrongServer { .. }));
                        prop_assert!(!corrected, "current client was corrected");
                    }
                }
                Event::NoLocalSubs(c) => {
                    let actions = d.on_no_local_subscribers(ChannelId(c));
                    for action in actions {
                        if let DispatchAction::NotifyNoMoreSubscribers { servers, .. } = action {
                            prop_assert!(!servers.contains(&me));
                        }
                    }
                    // Idempotent: a second call reports nothing.
                    prop_assert!(d.on_no_local_subscribers(ChannelId(c)).is_empty());
                }
                Event::Expire(c) => {
                    d.expire(now + SimDuration::from_secs(120), ChannelId(c));
                    prop_assert!(!d.is_reconfiguring(ChannelId(c)));
                }
            }
        }
    }

    /// After every channel's forwarding state expires, the dispatcher
    /// holds no reconfiguration state at all.
    #[test]
    fn expiry_leaves_no_state(entries in prop::collection::vec((0u64..8, arb_mapping()), 0..8)) {
        let servers: Vec<ServerId> = (0..6).map(sid).collect();
        let ring = Arc::new(Ring::new(&servers, 32));
        let mut d = Dispatcher::new(
            sid(0),
            Arc::clone(&ring),
            SimDuration::from_secs(60),
            SimDuration::from_secs(2),
        );
        let mut plan = Plan::bootstrap();
        for (c, m) in entries {
            plan.set(ChannelId(c), m);
        }
        plan.set_id(PlanId(1));
        d.install_plan(SimTime::ZERO, Arc::new(plan));
        let far = SimTime::from_secs(10_000);
        for c in 0..8 {
            d.expire(far, ChannelId(c));
            prop_assert!(!d.is_reconfiguring(ChannelId(c)));
            prop_assert!(!d.is_mirroring(ChannelId(c)));
        }
    }
}
