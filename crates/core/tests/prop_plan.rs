//! Property tests on plans and channel mappings: the routing invariants
//! that make delivery possible under every replication mode.

use dynamoth_core::{ChannelId, ChannelMapping, Plan, Ring, ServerId, DEFAULT_VNODES};
use dynamoth_sim::{NodeId, SimRng};
use proptest::prelude::*;

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

/// One step of a random plan edit history.
#[derive(Debug, Clone)]
enum Op {
    Set(u64, ChannelMapping),
    Unset(u64),
    Migrate(u64, usize, usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..16, arb_mapping()).prop_map(|(c, m)| Op::Set(c, m)),
        (0u64..16).prop_map(Op::Unset),
        (0u64..16, 0usize..12, 0usize..12).prop_map(|(c, f, t)| Op::Migrate(c, f, t)),
    ]
}

fn arb_mapping() -> impl Strategy<Value = ChannelMapping> {
    prop_oneof![
        (0usize..12).prop_map(|i| ChannelMapping::Single(sid(i))),
        prop::collection::btree_set(0usize..12, 2..6)
            .prop_map(|set| { ChannelMapping::AllSubscribers(set.into_iter().map(sid).collect()) }),
        prop::collection::btree_set(0usize..12, 2..6)
            .prop_map(|set| { ChannelMapping::AllPublishers(set.into_iter().map(sid).collect()) }),
    ]
}

proptest! {
    /// Whatever the mode and whatever random choices the two sides make,
    /// a publisher's target set always intersects a subscriber's target
    /// set — i.e. every publication can reach every subscriber.
    #[test]
    fn publisher_and_subscriber_targets_always_intersect(
        mapping in arb_mapping(),
        pub_seed in 0u64..1_000,
        sub_seed in 0u64..1_000,
    ) {
        let mut pub_rng = SimRng::new(pub_seed);
        let mut sub_rng = SimRng::new(sub_seed);
        let pub_targets = mapping.publish_targets(&mut pub_rng);
        let sub_targets = mapping.subscribe_targets(&mut sub_rng);
        prop_assert!(!pub_targets.is_empty());
        prop_assert!(!sub_targets.is_empty());
        prop_assert!(
            pub_targets.iter().any(|s| sub_targets.contains(s))
                || sub_targets.iter().any(|s| pub_targets.contains(s)),
            "no common server: {pub_targets:?} vs {sub_targets:?}"
        );
    }

    /// Targets are always members of the mapping.
    #[test]
    fn targets_are_members(mapping in arb_mapping(), seed in 0u64..1_000) {
        let mut rng = SimRng::new(seed);
        for s in mapping.publish_targets(&mut rng) {
            prop_assert!(mapping.contains(s));
        }
        for s in mapping.subscribe_targets(&mut rng) {
            prop_assert!(mapping.contains(s));
        }
    }

    /// Every channel resolves to at least one server under any plan.
    #[test]
    fn resolution_is_total(
        entries in prop::collection::vec((0u64..64, arb_mapping()), 0..32),
        probe in 0u64..128,
    ) {
        let ring = Ring::new(&[sid(0), sid(1), sid(2)], DEFAULT_VNODES);
        let mut plan = Plan::bootstrap();
        for (c, m) in entries {
            plan.set(ChannelId(c), m);
        }
        let mapping = plan.resolve(ChannelId(probe), &ring);
        prop_assert!(mapping.replication_factor() >= 1);
    }

    /// After migrating a channel away from `from`, the mapping no longer
    /// contains `from` (unless `from == to`), and a replicated mapping
    /// never shrinks below two members — it collapses to `Single`.
    #[test]
    fn migrate_removes_the_source(
        mapping in arb_mapping(),
        from_idx in 0usize..12,
        to_idx in 0usize..12,
    ) {
        let ring = Ring::new(&[sid(0), sid(1), sid(2)], DEFAULT_VNODES);
        let from = sid(from_idx);
        let to = sid(to_idx);
        prop_assume!(from != to);
        let mut plan = Plan::bootstrap();
        plan.set(ChannelId(1), mapping);
        plan.migrate(ChannelId(1), from, to, &ring);
        let after = plan.mapping(ChannelId(1)).unwrap();
        prop_assert!(!after.contains(from));
        prop_assert!(
            !after.is_replicated() || after.replication_factor() >= 2,
            "degenerate replicated mapping: {after:?}"
        );
    }

    /// Any sequence of `set`/`unset`/`migrate` operations leaves the plan
    /// with only well-formed mappings: non-empty, replicated ⇒ at least
    /// two distinct servers, and `diff` against itself empty.
    #[test]
    fn op_sequences_preserve_plan_invariants(
        ops in prop::collection::vec(arb_op(), 0..64),
    ) {
        let ring = Ring::new(&[sid(0), sid(1), sid(2)], DEFAULT_VNODES);
        let mut plan = Plan::bootstrap();
        for op in ops {
            match op {
                Op::Set(c, m) => plan.set(ChannelId(c), m),
                Op::Unset(c) => { plan.unset(ChannelId(c)); }
                Op::Migrate(c, from, to) => {
                    plan.migrate(ChannelId(c), sid(from), sid(to), &ring)
                }
            }
            for (channel, mapping) in plan.iter() {
                prop_assert!(
                    mapping.replication_factor() >= 1,
                    "empty mapping for {channel}"
                );
                if mapping.is_replicated() {
                    let distinct: std::collections::BTreeSet<ServerId> =
                        mapping.servers().iter().copied().collect();
                    prop_assert!(
                        distinct.len() >= 2,
                        "replicated mapping for {channel} with fewer than \
                         two distinct servers: {mapping:?}"
                    );
                }
            }
        }
        prop_assert!(plan.diff(&plan.clone(), &ring).is_empty());
    }

    /// `diff` reports exactly the channels whose resolution changed.
    #[test]
    fn diff_is_sound_and_complete(
        old_entries in prop::collection::vec((0u64..32, arb_mapping()), 0..16),
        new_entries in prop::collection::vec((0u64..32, arb_mapping()), 0..16),
    ) {
        let ring = Ring::new(&[sid(0), sid(1), sid(2)], DEFAULT_VNODES);
        let mut old = Plan::bootstrap();
        for (c, m) in old_entries {
            old.set(ChannelId(c), m);
        }
        let mut new = Plan::bootstrap();
        for (c, m) in new_entries {
            new.set(ChannelId(c), m);
        }
        let changes = old.diff(&new, &ring);
        // Soundness: every reported change is a real difference.
        for change in &changes {
            prop_assert_eq!(&old.resolve(change.channel, &ring), &change.old);
            prop_assert_eq!(&new.resolve(change.channel, &ring), &change.new);
            prop_assert_ne!(&change.old, &change.new);
        }
        // Completeness over the mentioned universe.
        let mentioned: std::collections::BTreeSet<ChannelId> = old
            .iter()
            .map(|(c, _)| c)
            .chain(new.iter().map(|(c, _)| c))
            .collect();
        for c in mentioned {
            let differs = old.resolve(c, &ring) != new.resolve(c, &ring);
            let reported = changes.iter().any(|ch| ch.channel == c);
            prop_assert_eq!(differs, reported, "channel {} mis-reported", c);
        }
    }
}
