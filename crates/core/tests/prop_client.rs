//! Property tests for the client library: duplicate suppression and
//! subscription-state invariants under arbitrary protocol traffic.

use std::sync::Arc;

use dynamoth_core::{
    ChannelId, ChannelMapping, ClientEvent, DynamothClient, DynamothConfig, MessageId, Msg, PlanId,
    Publication, Ring, ServerId,
};
use dynamoth_sim::{NodeId, SimRng, SimTime};
use proptest::prelude::*;

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

fn client() -> DynamothClient {
    let servers: Vec<ServerId> = (0..4).map(sid).collect();
    let ring = Arc::new(Ring::new(&servers, 32));
    DynamothClient::new(
        NodeId::from_index(99),
        ring,
        Arc::new(DynamothConfig::default()),
    )
}

fn publication(seq: u64, origin: usize) -> Publication {
    Publication {
        channel: ChannelId(1),
        id: MessageId {
            origin: NodeId::from_index(origin),
            seq,
        },
        payload: 64,
        sent_at: SimTime::ZERO,
        publisher: NodeId::from_index(origin),
        hops: 0,
    }
}

proptest! {
    /// Whatever multiset of deliveries arrives (including arbitrary
    /// duplication), the application sees each unique message id exactly
    /// once.
    #[test]
    fn deliveries_collapse_to_the_unique_set(
        ids in prop::collection::vec((0u64..64, 0usize..4), 1..300),
    ) {
        let mut c = client();
        let mut rng = SimRng::new(7);
        let mut delivered = std::collections::BTreeSet::new();
        let mut app_seen = Vec::new();
        for (seq, origin) in ids {
            let p = publication(seq, origin);
            delivered.insert(p.id);
            let (events, _) =
                c.on_message(SimTime::ZERO, &mut rng, sid(0).node(), Msg::Deliver(p));
            for e in events {
                if let ClientEvent::Delivery(p) = e {
                    app_seen.push(p.id);
                }
            }
        }
        let unique: std::collections::BTreeSet<_> = app_seen.iter().copied().collect();
        prop_assert_eq!(unique.len(), app_seen.len(), "application saw duplicates");
        prop_assert_eq!(unique, delivered, "application missed messages");
    }

    /// Random interleavings of subscribe/unsubscribe/switch keep the
    /// client's subscription state consistent: it holds server
    /// subscriptions iff it wants the channel, and only on servers of
    /// the learned mapping.
    #[test]
    fn subscription_state_stays_consistent(
        ops in prop::collection::vec((0u8..4, 0u64..6, 0usize..4), 1..120),
        seed in 0u64..1_000,
    ) {
        let mut c = client();
        let mut rng = SimRng::new(seed);
        let mut version = 1u64;
        for (op, ch, srv) in ops {
            let channel = ChannelId(ch);
            let now = SimTime::from_secs(version);
            match op {
                0 => {
                    let _ = c.subscribe(now, &mut rng, channel);
                }
                1 => {
                    let _ = c.unsubscribe(now, channel);
                }
                2 => {
                    version += 1;
                    let mapping = ChannelMapping::Single(sid(srv));
                    let _ = c.on_message(
                        now,
                        &mut rng,
                        sid(srv).node(),
                        Msg::Switch { channel, mapping, plan: PlanId(version) },
                    );
                }
                _ => {
                    version += 1;
                    let mapping = ChannelMapping::AllSubscribers(vec![sid(0), sid(1 + srv % 3)]);
                    let _ = c.on_message(
                        now,
                        &mut rng,
                        sid(0).node(),
                        Msg::SubscriptionMoved { channel, mapping, plan: PlanId(version) },
                    );
                }
            }
            // Invariants after every step:
            for probe in 0..6u64 {
                let channel = ChannelId(probe);
                let servers = c.subscription_servers(channel);
                prop_assert_eq!(c.is_subscribed(channel), !servers.is_empty());
                // No duplicate servers in the set.
                let set: std::collections::BTreeSet<_> = servers.iter().collect();
                prop_assert_eq!(set.len(), servers.len());
            }
        }
    }

    /// Plan entries only exist for channels the client has actually
    /// interacted with, and expiry never removes entries of live
    /// subscriptions.
    #[test]
    fn plan_stays_minimal_and_expiry_is_safe(
        channels in prop::collection::vec(0u64..16, 1..40),
        seed in 0u64..1_000,
    ) {
        let mut c = client();
        let mut rng = SimRng::new(seed);
        let mut used = std::collections::BTreeSet::new();
        for (i, &ch) in channels.iter().enumerate() {
            let now = SimTime::from_secs(i as u64);
            used.insert(ch);
            if i % 2 == 0 {
                let _ = c.subscribe(now, &mut rng, ChannelId(ch));
            } else {
                let _ = c.publish(now, &mut rng, ChannelId(ch), 64);
            }
        }
        prop_assert!(c.plan_len() <= used.len());
        // Far-future expiry drops everything not subscribed.
        let far = SimTime::from_secs(1_000_000);
        c.expire_plan_entries(far);
        let live: Vec<ChannelId> = c.subscriptions().collect();
        prop_assert!(c.plan_len() <= live.len().max(used.len()));
        for ch in live {
            // Subscribed channels survive arbitrary expiry.
            prop_assert!(c.is_subscribed(ch));
        }
    }
}
