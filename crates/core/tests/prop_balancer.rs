//! Property tests for the load-balancing algorithms: Algorithm 2's
//! post-conditions and the estimator's conservation laws under arbitrary
//! load distributions.

use dynamoth_core::balancer::estimator::LoadView;
use dynamoth_core::balancer::{high_load, low_load};
use dynamoth_core::{
    ChannelId, ChannelTick, DynamothConfig, LlaReport, MetricsStore, Plan, Ring, ServerId,
    DEFAULT_VNODES,
};
use dynamoth_sim::NodeId;
use proptest::prelude::*;

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

/// Builds a store where server `i` hosts the given channels with the
/// given per-tick byte loads.
fn store_from(dist: &[Vec<(u64, u64)>]) -> (MetricsStore, Vec<ServerId>) {
    let mut store = MetricsStore::new(1);
    let servers: Vec<ServerId> = (0..dist.len()).map(sid).collect();
    for (i, channels) in dist.iter().enumerate() {
        let egress: u64 = channels.iter().map(|&(_, b)| b).sum();
        store.record(LlaReport {
            server: sid(i),
            tick: 0,
            measured_egress_bytes: egress,
            capacity_bytes: 1_000.0,
            cpu_busy_micros: 0,
            channels: channels
                .iter()
                .map(|&(c, b)| {
                    (
                        ChannelId(c),
                        ChannelTick {
                            bytes_out: b,
                            ..Default::default()
                        },
                    )
                })
                .collect(),
        });
    }
    (store, servers)
}

/// A random per-server channel distribution with disjoint channel ids.
fn arb_distribution() -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(prop::collection::vec(1u64..600, 0..6), 2..6).prop_map(|loads| {
        let mut next_channel = 0u64;
        loads
            .into_iter()
            .map(|server_loads| {
                server_loads
                    .into_iter()
                    .map(|bytes| {
                        next_channel += 1;
                        (next_channel, bytes)
                    })
                    .collect()
            })
            .collect()
    })
}

fn ring_of(servers: &[ServerId]) -> Ring {
    Ring::new(servers, DEFAULT_VNODES)
}

fn cfg() -> DynamothConfig {
    DynamothConfig {
        lr_high: 0.9,
        lr_safe: 0.7,
        lr_low: 0.35,
        ..DynamothConfig::default()
    }
}

proptest! {
    /// Total estimated load is conserved by arbitrary migrations.
    #[test]
    fn estimator_conserves_load(dist in arb_distribution(), moves in prop::collection::vec((0usize..6, 0usize..6, 0u64..20), 0..20)) {
        let (store, servers) = store_from(&dist);
        let mut view = LoadView::from_store(&store, &servers, 1_000.0);
        let total_before: f64 = view.servers().map(|s| view.load_ratio(s)).sum();
        for (from, to, ch) in moves {
            let from = servers[from % servers.len()];
            let to = servers[to % servers.len()];
            if from != to {
                view.migrate(ChannelId(ch), from, to);
            }
        }
        let total_after: f64 = view.servers().map(|s| view.load_ratio(s)).sum();
        prop_assert!((total_before - total_after).abs() < 1e-6,
            "{total_before} vs {total_after}");
    }

    /// Algorithm 2 either brings every server's *estimated* load below
    /// `LR_high` or asks for more servers; it never overloads a target
    /// beyond `LR_safe` by its own migrations, and it always terminates.
    #[test]
    fn algorithm2_postconditions(dist in arb_distribution()) {
        let (store, servers) = store_from(&dist);
        let mut view = LoadView::from_store(&store, &servers, 1_000.0);
        let before: Vec<f64> = servers.iter().map(|&s| view.load_ratio(s)).collect();
        let out = high_load::rebalance(&Plan::bootstrap(), &mut view, &ring_of(&servers), &cfg(), &[]);
        if out.servers_wanted == 0 {
            for &s in &servers {
                prop_assert!(
                    view.load_ratio(s) < 0.9 + 1e-9,
                    "server {s} still above LR_high with no growth requested"
                );
            }
        }
        // No server that was below LR_safe before may end above it
        // (migrations must not create new hotspots).
        for (i, &s) in servers.iter().enumerate() {
            if before[i] <= 0.7 {
                prop_assert!(view.load_ratio(s) <= 0.7 + 1e-9,
                    "server {s} pushed past LR_safe: {} -> {}", before[i], view.load_ratio(s));
            }
        }
    }

    /// The low-load drain, when it fires, empties exactly one server and
    /// never pushes a receiving server past `LR_safe` (servers that were
    /// already above it are high-load rebalancing's problem, not the
    /// drain's).
    #[test]
    fn low_load_drain_is_safe(dist in arb_distribution()) {
        let (store, servers) = store_from(&dist);
        let mut view = LoadView::from_store(&store, &servers, 1_000.0);
        let before: Vec<f64> = servers.iter().map(|&s| view.load_ratio(s)).collect();
        if let Some(out) = low_load::rebalance(&Plan::bootstrap(), &mut view, &ring_of(&servers), &cfg(), &[]) {
            prop_assert!(view.channels_on(out.release).is_empty());
            for (i, &s) in servers.iter().enumerate() {
                prop_assert!(view.load_ratio(s) <= before[i].max(0.7) + 1e-9);
            }
            // Every migrated channel is mapped somewhere else.
            for (c, m) in out.plan.iter() {
                prop_assert!(m.servers().iter().all(|&s| s != out.release),
                    "channel {c} still mapped to the released server");
            }
        }
    }

    /// When the low-load drain aborts (returns `None`), the shared load
    /// view must be byte-for-byte what it was before the call: a partial
    /// drain that was rolled back may not leave phantom migrations in
    /// the estimator. Run with `lr_low = 0.5` because with the other
    /// properties' `lr_low = lr_safe / 2` an abort after a successful
    /// staged migration is arithmetically unreachable.
    #[test]
    fn low_load_abort_leaves_estimates_intact(dist in arb_distribution()) {
        let (store, servers) = store_from(&dist);
        let mut view = LoadView::from_store(&store, &servers, 1_000.0);
        let reference = LoadView::from_store(&store, &servers, 1_000.0);
        let cfg = DynamothConfig { lr_low: 0.5, ..cfg() };
        if low_load::rebalance(&Plan::bootstrap(), &mut view, &ring_of(&servers), &cfg, &[]).is_none() {
            for &s in &servers {
                prop_assert!(
                    (view.load_ratio(s) - reference.load_ratio(s)).abs() < 1e-12,
                    "aborted drain corrupted {s}: {} -> {}",
                    reference.load_ratio(s), view.load_ratio(s)
                );
                prop_assert_eq!(view.channels_on(s), reference.channels_on(s));
            }
        }
    }

    /// Algorithm 2 never *unmaps* a channel: everything it touches ends
    /// with a concrete single-server mapping.
    #[test]
    fn algorithm2_only_migrates(dist in arb_distribution()) {
        let (store, servers) = store_from(&dist);
        let mut view = LoadView::from_store(&store, &servers, 1_000.0);
        let out = high_load::rebalance(&Plan::bootstrap(), &mut view, &ring_of(&servers), &cfg(), &[]);
        for (_, mapping) in out.plan.iter() {
            prop_assert_eq!(mapping.replication_factor(), 1);
            prop_assert!(servers.contains(&mapping.servers()[0]));
        }
    }
}

/// Deterministic replay of the counterexample recorded in
/// `prop_balancer.proptest-regressions` (`dist = [[(1, 546), (2, 155)],
/// [], []]`): one server sits just above `LR_safe` while the global
/// average is below `LR_low`, so the drain fires and must release an
/// idle server without touching the loaded one. Pinned as a plain test
/// so the case runs on every `cargo test` regardless of the proptest
/// implementation's regression-file handling.
#[test]
fn saved_regression_boundary_drain_is_safe() {
    let dist: Vec<Vec<(u64, u64)>> = vec![vec![(1, 546), (2, 155)], vec![], vec![]];
    let (store, servers) = store_from(&dist);

    // Algorithm 2: LR_0 = 0.701 is below LR_high, so no migration and
    // no growth request.
    let mut view = LoadView::from_store(&store, &servers, 1_000.0);
    let out = high_load::rebalance(
        &Plan::bootstrap(),
        &mut view,
        &ring_of(&servers),
        &cfg(),
        &[],
    );
    assert!(!out.changed);
    assert_eq!(out.servers_wanted, 0);
    assert!(out.plan.is_empty());

    // Low-load drain: average 0.2337 is below LR_low, so one of the two
    // idle servers is released; the loaded server's estimate must be
    // exactly untouched even though it sits above LR_safe.
    let mut view = LoadView::from_store(&store, &servers, 1_000.0);
    let out = low_load::rebalance(
        &Plan::bootstrap(),
        &mut view,
        &ring_of(&servers),
        &cfg(),
        &[],
    )
    .expect("drain fires");
    assert!(out.release == servers[1] || out.release == servers[2]);
    assert!(view.channels_on(out.release).is_empty());
    assert!(out.plan.is_empty(), "an idle server needs no migrations");
    assert!((view.load_ratio(servers[0]) - 0.701).abs() < 1e-12);
}
