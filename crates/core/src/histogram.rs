//! A fixed-size logarithmic latency histogram for percentile reporting.
//!
//! Experiments produce tens of millions of response-time samples, far
//! too many to retain; a log-scale histogram gives p50/p95/p99 with a
//! bounded ~2.5 % relative error at constant memory, which is plenty for
//! comparing against the paper's plotted curves.

use dynamoth_sim::SimDuration;

const BUCKETS: usize = 400;
/// Smallest representable latency (one bucket boundary), microseconds.
const MIN_US: f64 = 100.0;
/// Largest representable latency; everything above lands in the last
/// bucket.
const MAX_US: f64 = 600e6;

/// Log-scale latency histogram.
///
/// # Examples
///
/// ```
/// use dynamoth_core::LatencyHistogram;
/// use dynamoth_sim::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// for ms in [10u64, 20, 30, 40, 1_000] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.len(), 5);
/// let p50 = h.quantile(0.5).unwrap().as_millis_f64();
/// assert!((25.0..36.0).contains(&p50), "{p50}");
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    sum_us: f64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            sum_us: 0.0,
            max_us: 0,
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= MIN_US {
            return 0;
        }
        let ratio = (us / MIN_US).ln() / (MAX_US / MIN_US).ln();
        ((ratio * (BUCKETS - 1) as f64).ceil() as usize).min(BUCKETS - 1)
    }

    /// Upper bound of bucket `i`, microseconds.
    fn bucket_upper_us(i: usize) -> f64 {
        MIN_US * (MAX_US / MIN_US).powf(i as f64 / (BUCKETS - 1) as f64)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimDuration) {
        let us = latency.as_micros();
        self.counts[Self::bucket_of(us as f64)] += 1;
        self.total += 1;
        self.sum_us += us as f64;
        self.max_us = self.max_us.max(us);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// `true` if no sample was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Mean latency, or `None` when empty.
    pub fn mean(&self) -> Option<SimDuration> {
        (self.total > 0).then(|| SimDuration::from_micros((self.sum_us / self.total as f64) as u64))
    }

    /// Largest recorded latency.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_micros(self.max_us)
    }

    /// The latency at quantile `q ∈ [0, 1]` (bucket upper bound), or
    /// `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<SimDuration> {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.total == 0 {
            return None;
        }
        let rank = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_micros(Self::bucket_upper_us(i) as u64));
            }
        }
        Some(self.max())
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum_us += other.sum_us;
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_bound_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_micros(i * 100)); // 0.1 ms .. 1 s
        }
        for (q, expected_ms) in [(0.5, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q).unwrap().as_millis_f64();
            let err = (got - expected_ms).abs() / expected_ms;
            assert!(err < 0.05, "q{q}: got {got} ms, expected ≈{expected_ms} ms");
        }
    }

    #[test]
    fn mean_and_max_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_millis(10));
        h.record(SimDuration::from_millis(30));
        assert_eq!(h.mean().unwrap(), SimDuration::from_millis(20));
        assert_eq!(h.max(), SimDuration::from_millis(30));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn extreme_values_clamp_to_edge_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(1));
        h.record(SimDuration::from_secs(10_000));
        assert_eq!(h.len(), 2);
        assert!(h.quantile(0.01).unwrap() <= SimDuration::from_micros(200));
        assert!(h.quantile(1.0).unwrap() >= SimDuration::from_secs(500));
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_millis(10));
        b.record(SimDuration::from_millis(1_000));
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert!(a.quantile(1.0).unwrap() >= SimDuration::from_millis(900));
    }

    #[test]
    #[should_panic(expected = "quantile out of range")]
    fn out_of_range_quantile_panics() {
        let _ = LatencyHistogram::new().quantile(1.5);
    }
}
