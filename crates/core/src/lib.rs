//! # dynamoth-core
//!
//! The Dynamoth middleware (Gascon-Samson et al., ICDCS 2015), rebuilt
//! from scratch: a scalable, elastic, channel-based pub/sub layer over a
//! fleet of unmodified pub/sub servers.
//!
//! The crate contains every component of the paper's architecture
//! (Fig. 1):
//!
//! * [`Plan`] / [`ChannelMapping`] — the channel → server lookup
//!   structure, including both replication schemes (§II-B);
//! * [`Ring`] — consistent hashing with virtual identifiers, the
//!   bootstrap mapping and the baseline load balancer;
//! * [`DynamothClient`] — the client library with lazy local plans,
//!   wrong-server recovery and duplicate suppression (§II-C, §IV);
//! * [`Lla`] — per-server Local Load Analyzers (§III-A);
//! * [`Dispatcher`] — reconfiguration forwarding (§IV);
//! * [`LoadBalancer`] — hierarchical rebalancing: Algorithm 1
//!   (channel-level replication), Algorithm 2 (high-load migration) and
//!   the low-load drain (§III-B), plus the consistent-hashing baseline;
//! * [`ServerNode`] — the composite broker + dispatcher + LLA node;
//! * [`Cluster`] — harness assembling everything inside a simulation.
//!
//! ## Quick start
//!
//! ```
//! use dynamoth_core::{Cluster, ClusterConfig, ChannelId};
//! use dynamoth_sim::SimDuration;
//!
//! let mut cluster = Cluster::build(ClusterConfig::default());
//! cluster.run_for(SimDuration::from_secs(2));
//! assert!(cluster.active_server_count() >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balancer;
mod client;
mod config;
mod dispatcher;
mod harness;
mod hashing;
mod histogram;
mod lla;
mod message;
mod metrics;
mod plan;
mod server_node;
mod trace;
mod types;

pub use balancer::{BalancerStrategy, LoadBalancer, TAG_EVAL};
pub use client::{ClientEvent, ClientStats, DynamothClient};
pub use config::DynamothConfig;
pub use dispatcher::{DispatchAction, Dispatcher, DispatcherStats, MAX_FORWARD_HOPS};
pub use harness::{Cluster, ClusterConfig};
pub use hashing::{Ring, DEFAULT_VNODES};
pub use histogram::LatencyHistogram;
pub use lla::Lla;
pub use message::{Msg, Publication, CTRL_SIZE, PUB_HEADER};
pub use metrics::{ChannelAggregate, ChannelTick, LlaReport, MetricsStore};
pub use plan::{ChannelMapping, Plan, PlanChange};
pub use server_node::{ServerNode, TAG_TICK};
pub use trace::{RebalanceKind, Trace, TraceHandle};
pub use types::{ChannelId, ClientId, MessageId, PlanId, ServerId};

// Substrate types that appear in this crate's public API.
pub use dynamoth_pubsub::CpuModel;
