//! Consistent hashing with virtual identifiers.
//!
//! The implementation lives in `dynamoth-pubsub` (`hashing` module) so
//! the simulator and the routed TCP tier share one copy; this module
//! re-exports it under the historical `dynamoth_core` paths.

pub use dynamoth_pubsub::hashing::{Ring, DEFAULT_VNODES};
