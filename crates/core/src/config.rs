//! All tunable thresholds of the Dynamoth middleware, named after the
//! quantities in the paper.
//!
//! The paper states (§III-B) that "the values of the various threshold
//! parameters were determined empirically based on the capabilities of
//! the machines at our disposal"; the defaults here were calibrated the
//! same way against the simulated substrate (see `DESIGN.md` and
//! `EXPERIMENTS.md`).

use dynamoth_pubsub::balance::Tuning;
use dynamoth_sim::SimDuration;

/// Configuration of the load balancer, local load analyzers, dispatchers
/// and client library.
#[derive(Debug, Clone)]
pub struct DynamothConfig {
    // ---- Channel-level rebalancing (Algorithm 1) ----
    /// `AllSubs_threshold`: minimum publications-to-subscribers ratio
    /// (`P_ratio`) for *all-subscribers* replication.
    pub all_subs_threshold: f64,
    /// `Publication_threshold`: minimum publications per second before
    /// all-subscribers replication is considered.
    pub publication_threshold: f64,
    /// `AllPubs_threshold`: minimum subscribers-to-publications ratio
    /// (`S_ratio`) for *all-publishers* replication.
    pub all_pubs_threshold: f64,
    /// `Subscriber_threshold`: minimum subscriber count before
    /// all-publishers replication is considered.
    pub subscriber_threshold: f64,
    /// Upper bound on `N_servers` for a replicated channel.
    pub max_replication: usize,

    // ---- System-level rebalancing (Algorithm 2 + low-load) ----
    /// `LR_high`: a server above this load ratio triggers high-load
    /// rebalancing.
    pub lr_high: f64,
    /// `LR_safe`: high-load rebalancing sheds channels until the
    /// estimated load ratio falls below this value.
    pub lr_safe: f64,
    /// Global average load ratio below which low-load rebalancing tries
    /// to drain and release servers.
    pub lr_low: f64,
    /// `T_wait`: minimum delay between two plan generations.
    pub t_wait: SimDuration,
    /// `T_i`: advertised maximum outgoing bandwidth of a pub/sub server,
    /// bytes per second (the denominator of the load ratio).
    pub server_capacity: f64,
    /// Delay between renting a server from the cloud and it becoming
    /// usable.
    pub provisioning_delay: SimDuration,
    /// Enables the CPU-aware load-ratio extension (the paper's future
    /// work, §VII): the effective load ratio of a server becomes
    /// `max(bandwidth LR, cpu utilization / cpu_capacity)`, so
    /// CPU-bound fan-out workloads trigger rebalancing even when the
    /// NIC has headroom. Off by default, like the paper's balancer.
    pub cpu_aware: bool,
    /// Maximum sustainable CPU utilization (the denominator of the CPU
    /// term above).
    pub cpu_capacity: f64,
    /// Enables adaptive `LR_high`/`LR_safe` tuning (the paper's §III-B
    /// future-work idea): an AIMD controller lowers the thresholds when
    /// the busiest server approaches the failure point and relaxes them
    /// after long calm stretches. Off by default.
    pub adaptive_thresholds: bool,
    /// Load ratio considered dangerously close to server failure (the
    /// paper observed Redis failing past ≈ 1.15).
    pub danger_lr: f64,
    /// Enables the reliability extension (§VII future work): load
    /// balancer failure detection with channel failover, and
    /// client-side ping/blacklist recovery. Off by default — the
    /// paper's system has no failure handling, and under saturation the
    /// health signals themselves queue behind data, so enabling this
    /// changes the post-overload dynamics of the experiments.
    pub fault_tolerance: bool,
    /// How long the load balancer waits without hearing from an active
    /// server's LLA before declaring it failed and migrating its
    /// channels to healthy servers. Healthy LLAs report every `tick`.
    pub server_failure_timeout: SimDuration,
    /// How often clients ping the servers they hold subscriptions on.
    pub client_ping_interval: SimDuration,
    /// Client-side failover threshold: a subscribed server silent for
    /// this long is treated as dead and its subscriptions are recovered
    /// through consistent hashing.
    pub client_failover_timeout: SimDuration,
    /// How long a client routes around a server it declared dead (its
    /// hash-ring identifiers are skipped during fallback resolution).
    pub dead_server_blacklist: SimDuration,
    /// Emit `<switch>` notifications to affected subscribers immediately
    /// when a plan is installed instead of piggybacking on the first
    /// publication (§IV-A2). The paper argues for the lazy scheme; this
    /// flag exists for the ablation study.
    pub eager_switch: bool,
    /// Number of LLA ticks averaged for load decisions.
    pub metrics_window: usize,
    /// Length of one metric time unit `t` (one second in the paper).
    pub tick: SimDuration,

    // ---- Client library / dispatcher ----
    /// Batched publication fan-out: within one delivery tick a server
    /// coalesces every publication bound for the same subscriber node
    /// into a single [`Msg::DeliverBatch`](crate::Msg::DeliverBatch),
    /// paying the protocol header once per batch instead of once per
    /// publication. Duplicate suppression, per-publication latency
    /// accounting and reconfiguration semantics are identical on both
    /// paths; the flag exists for the ablation study. On by default.
    pub delivery_batching: bool,
    /// TTL of an unused local-plan entry and of dispatcher forwarding
    /// state (§IV-A5).
    pub plan_entry_ttl: SimDuration,
    /// Number of recent message ids remembered for duplicate
    /// suppression.
    pub dedup_capacity: usize,
    /// How long a client keeps its *old* subscription alive after moving
    /// a subscription to a new server. Without this grace period a
    /// publication delivered between the unsubscribe taking effect on
    /// the old server and the subscribe taking effect on the new one
    /// would be lost; with it, the overlap produces duplicates that the
    /// id-based suppression removes (§IV-A3).
    pub unsubscribe_grace: SimDuration,
    /// How long a server newly *added* to a channel's (replicated)
    /// mapping mirrors publications back to the previous members. This
    /// covers subscribers whose subscriptions to the new member are
    /// still in flight; the previous members still hold them. Departed
    /// members are instead covered until they report no subscribers
    /// (§IV-A5), bounded by `plan_entry_ttl`. Subscribers catch up
    /// within roughly one switch delivery plus one subscribe (two WAN
    /// one-way latencies); keep this window short — mirroring duplicates
    /// the channel's full stream onto the previous members.
    pub replication_mirror_window: SimDuration,
}

impl Default for DynamothConfig {
    fn default() -> Self {
        DynamothConfig {
            all_subs_threshold: 600.0,
            publication_threshold: 800.0,
            all_pubs_threshold: 25.0,
            subscriber_threshold: 200.0,
            max_replication: 4,

            lr_high: 0.9,
            lr_safe: 0.7,
            lr_low: 0.35,
            t_wait: SimDuration::from_secs(10),
            server_capacity: 8.0e6,
            provisioning_delay: SimDuration::from_secs(5),
            cpu_aware: false,
            cpu_capacity: 0.85,
            adaptive_thresholds: false,
            danger_lr: 1.1,
            fault_tolerance: false,
            server_failure_timeout: SimDuration::from_secs(5),
            client_ping_interval: SimDuration::from_secs(2),
            client_failover_timeout: SimDuration::from_secs(6),
            dead_server_blacklist: SimDuration::from_secs(30),
            eager_switch: false,
            metrics_window: 3,
            tick: SimDuration::from_secs(1),

            delivery_batching: true,
            plan_entry_ttl: SimDuration::from_secs(60),
            dedup_capacity: 1_024,
            unsubscribe_grace: SimDuration::from_secs(1),
            replication_mirror_window: SimDuration::from_millis(1_500),
        }
    }
}

impl DynamothConfig {
    /// Capacity per metrics tick, in bytes (the denominator `T_i` of
    /// eq. 1 expressed per tick).
    pub fn capacity_per_tick(&self) -> f64 {
        self.server_capacity * self.tick.as_secs_f64()
    }
}

/// The balancing algorithms in `dynamoth-pubsub` consume a plain
/// [`Tuning`] snapshot; this conversion lets every existing call site
/// keep passing `&DynamothConfig`.
impl From<&DynamothConfig> for Tuning {
    fn from(cfg: &DynamothConfig) -> Tuning {
        Tuning {
            all_subs_threshold: cfg.all_subs_threshold,
            publication_threshold: cfg.publication_threshold,
            all_pubs_threshold: cfg.all_pubs_threshold,
            subscriber_threshold: cfg.subscriber_threshold,
            max_replication: cfg.max_replication,
            lr_high: cfg.lr_high,
            lr_safe: cfg.lr_safe,
            lr_low: cfg.lr_low,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_internally_consistent() {
        let cfg = DynamothConfig::default();
        assert!(cfg.lr_safe < cfg.lr_high);
        assert!(cfg.lr_low < cfg.lr_safe);
        assert!(cfg.max_replication >= 2);
        assert!(cfg.capacity_per_tick() > 0.0);
    }

    #[test]
    fn capacity_per_tick_scales_with_tick() {
        let cfg = DynamothConfig {
            server_capacity: 1_000.0,
            tick: SimDuration::from_millis(500),
            ..Default::default()
        };
        assert!((cfg.capacity_per_tick() - 500.0).abs() < 1e-9);
    }
}
