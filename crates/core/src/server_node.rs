//! The composite infrastructure node of Fig. 1: one standard pub/sub
//! server plus its collocated dispatcher and Local Load Analyzer,
//! exposed to the simulation as a single actor.

use std::collections::BTreeMap;
use std::sync::Arc;

use dynamoth_pubsub::{CpuModel, PubSubServer};
use dynamoth_sim::{Actor, ActorContext, NodeId, SendOutcome, SimDuration, SimTime};

use crate::config::DynamothConfig;
use crate::dispatcher::{DispatchAction, Dispatcher};
use crate::hashing::Ring;
use crate::lla::Lla;
use crate::message::{Msg, Publication};
use crate::types::{ChannelId, ServerId};

/// Timer tag of the LLA metrics tick.
pub const TAG_TICK: u64 = 1;
/// High bit marking dispatcher-teardown timers; the low bits carry the
/// channel id.
const TEARDOWN_BIT: u64 = 1 << 63;

/// Publications buffered for one subscriber node during the current
/// batching window (see [`DynamothConfig::delivery_batching`]).
#[derive(Debug, Default)]
struct PendingBatch {
    /// Latest broker CPU completion time across the buffered
    /// publications; the batch leaves the node once all of its entries
    /// have been processed.
    cpu_done: SimTime,
    pubs: Vec<Publication>,
}

/// A pub/sub server node: broker + dispatcher + LLA (Fig. 1).
#[derive(Debug)]
pub struct ServerNode {
    id: ServerId,
    lb: NodeId,
    cfg: Arc<DynamothConfig>,
    server: PubSubServer,
    dispatcher: Dispatcher,
    lla: Lla,
    cpu: CpuModel,
    /// Per-recipient fan-out buffers of the current batching window
    /// (ordered map so flush emission order is deterministic).
    pending: BTreeMap<NodeId, PendingBatch>,
    /// Fault-injection flag: a crashed node drops every message and
    /// stops reporting, like a killed process.
    crashed: bool,
}

impl ServerNode {
    /// Creates the node for server `id`, reporting to the load balancer
    /// at `lb`.
    pub fn new(id: ServerId, lb: NodeId, ring: Arc<Ring>, cfg: Arc<DynamothConfig>) -> Self {
        Self::with_cpu(id, lb, ring, cfg, CpuModel::default())
    }

    /// [`ServerNode::new`] with an explicit broker CPU model (used by
    /// the CPU-aware balancing experiments).
    pub fn with_cpu(
        id: ServerId,
        lb: NodeId,
        ring: Arc<Ring>,
        cfg: Arc<DynamothConfig>,
        cpu: CpuModel,
    ) -> Self {
        let lla = Lla::new(id, cfg.capacity_per_tick());
        ServerNode {
            id,
            lb,
            dispatcher: Dispatcher::new(
                id,
                ring,
                cfg.plan_entry_ttl,
                cfg.replication_mirror_window,
            ),
            cfg,
            server: PubSubServer::new(cpu.clone()),
            lla,
            cpu,
            pending: BTreeMap::new(),
            crashed: false,
        }
    }

    /// Fault injection: kill the node. It drops all traffic and stops
    /// reporting until [`ServerNode::recover`], and loses its broker
    /// state (subscriptions) like a killed process.
    pub fn crash(&mut self) {
        self.crashed = true;
        self.server = PubSubServer::new(self.cpu.clone());
        // Output buffered but not yet flushed dies with the process.
        self.pending.clear();
    }

    /// Fault injection: restart a crashed node with empty broker state
    /// (the dispatcher keeps the last plan, as if re-fetched on boot).
    pub fn recover(&mut self) {
        self.crashed = false;
    }

    /// `true` while fault injection keeps the node down.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// This node's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The underlying pub/sub server (inspection).
    pub fn pubsub(&self) -> &PubSubServer {
        &self.server
    }

    /// The collocated dispatcher (inspection).
    pub fn dispatcher(&self) -> &Dispatcher {
        &self.dispatcher
    }

    /// Processes a publication; `plan_hint` is `Some` when it came
    /// directly from a client (and must run the dispatcher protocol),
    /// `None` for dispatcher forwards (deliver locally only).
    fn handle_publication(
        &mut self,
        ctx: &mut dyn ActorContext<Msg>,
        p: Publication,
        plan_hint: Option<crate::types::PlanId>,
    ) {
        let now = ctx.now();
        self.lla
            .note_publication(p.channel, p.wire_size(), p.publisher);
        let outcome = self.server.publish(now, p.channel);
        if self.cfg.delivery_batching {
            // Fast path: buffer per recipient and flush once at the end
            // of the batching window, so every publication bound for
            // the same subscriber node in this window shares one wire
            // message (header amortized across the batch).
            for recipient in outcome.recipients {
                let batch = self.pending.entry(recipient).or_default();
                batch.cpu_done = batch.cpu_done.max(outcome.cpu_done);
                batch.pubs.push(p);
            }
            if !self.pending.is_empty() {
                ctx.request_flush();
            }
        } else {
            let cpu_delay = outcome.cpu_done.saturating_since(now);
            let mut delivered = 0u64;
            let mut killed: Vec<NodeId> = Vec::new();
            for recipient in outcome.recipients {
                match ctx.send_after(cpu_delay, recipient, Msg::Deliver(p)) {
                    SendOutcome::Sent => delivered += 1,
                    SendOutcome::Dropped => killed.push(recipient),
                }
            }
            self.lla
                .note_deliveries(p.channel, p.wire_size(), delivered);
            for client in killed {
                self.kill_client(ctx, client);
            }
        }
        if let Some(hint) = plan_hint {
            let actions = self
                .dispatcher
                .on_client_publication(now, ctx.rng(), &p, hint);
            self.execute(ctx, actions);
        }
    }

    /// Disconnects a client whose output buffer overflowed, exactly like
    /// Redis' `client-output-buffer-limit` enforcement.
    fn kill_client(&mut self, ctx: &mut dyn ActorContext<Msg>, client: NodeId) {
        let channels = self.server.disconnect(client);
        if channels.is_empty() {
            return;
        }
        // Best-effort notification; may itself be dropped (like a TCP
        // RST racing a full socket).
        let _ = ctx.send(
            client,
            Msg::Disconnected {
                channels: channels.clone(),
            },
        );
        for channel in channels {
            if self.server.subscriber_count(channel) == 0 {
                let actions = self.dispatcher.on_no_local_subscribers(channel);
                self.execute(ctx, actions);
            }
        }
    }

    fn execute(&mut self, ctx: &mut dyn ActorContext<Msg>, actions: Vec<DispatchAction>) {
        for action in actions {
            match action {
                DispatchAction::NotifyWrongServer {
                    publisher,
                    channel,
                    mapping,
                    plan,
                } => {
                    let _ = ctx.send(
                        publisher,
                        Msg::WrongServer {
                            channel,
                            mapping,
                            plan,
                        },
                    );
                }
                DispatchAction::EmitSwitch {
                    channel,
                    mapping,
                    plan,
                } => {
                    let subscribers: Vec<NodeId> = self.server.subscribers(channel).collect();
                    for s in subscribers {
                        let _ = ctx.send(
                            s,
                            Msg::Switch {
                                channel,
                                mapping: mapping.clone(),
                                plan,
                            },
                        );
                    }
                }
                DispatchAction::ForwardTo {
                    servers,
                    publication,
                } => {
                    for s in servers {
                        if s != self.id {
                            let _ = ctx.send(s.node(), Msg::Forward(publication));
                        }
                    }
                }
                DispatchAction::NotifyNoMoreSubscribers { servers, channel } => {
                    for s in servers {
                        if s != self.id {
                            let _ = ctx.send(s.node(), Msg::NoMoreSubscribers { channel });
                        }
                    }
                }
            }
        }
    }
}

impl Actor<Msg> for ServerNode {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        if self.crashed {
            return; // a dead process answers nothing
        }
        let now = ctx.now();
        match msg {
            Msg::Ping => {
                let _ = ctx.send(from, Msg::Pong);
            }
            Msg::Subscribe { channel, plan_hint } => {
                self.server.subscribe(now, from, channel);
                if let Some((mapping, plan)) = self.dispatcher.on_subscribe(channel, plan_hint) {
                    let _ = ctx.send(
                        from,
                        Msg::SubscriptionMoved {
                            channel,
                            mapping,
                            plan,
                        },
                    );
                }
            }
            Msg::Unsubscribe { channel } => {
                self.server.unsubscribe(now, from, channel);
                if self.server.subscriber_count(channel) == 0 {
                    let actions = self.dispatcher.on_no_local_subscribers(channel);
                    self.execute(ctx, actions);
                }
            }
            Msg::Publish {
                publication,
                plan_hint,
            } => self.handle_publication(ctx, publication, Some(plan_hint)),
            // Forwarded publications are delivered locally only — the
            // sending dispatcher already handled redirection (§IV-A2/3).
            Msg::Forward(p) => self.handle_publication(ctx, p, None),
            Msg::NoMoreSubscribers { channel } => {
                self.dispatcher
                    .on_no_more_subscribers(ServerId(from), channel);
            }
            Msg::PlanPush(plan) => {
                let affected = self.dispatcher.install_plan(now, plan);
                for channel in affected {
                    ctx.set_timer(
                        self.cfg.plan_entry_ttl + SimDuration::from_millis(1),
                        TEARDOWN_BIT | channel.0,
                    );
                    // Ablation mode: notify subscribers of the change
                    // right away instead of waiting for the first
                    // publication (the paper's lazy scheme, §IV-A2).
                    if self.cfg.eager_switch {
                        let actions = self.dispatcher.take_pending_switch(now, channel);
                        self.execute(ctx, actions);
                    }
                }
            }
            // Server nodes ignore client-plane and LB-plane traffic not
            // addressed to them.
            _ => {}
        }
    }

    fn on_flush(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        let pending = std::mem::take(&mut self.pending);
        if self.crashed {
            return; // buffered output died with the process
        }
        let now = ctx.now();
        let mut killed: Vec<NodeId> = Vec::new();
        for (recipient, batch) in pending {
            let cpu_delay = batch.cpu_done.saturating_since(now);
            // Singletons gain nothing from batch framing; send them
            // plain so the wire cost matches the unbatched path.
            let msg = if batch.pubs.len() == 1 {
                Msg::Deliver(batch.pubs[0])
            } else {
                Msg::DeliverBatch(batch.pubs.clone())
            };
            match ctx.send_after(cpu_delay, recipient, msg) {
                SendOutcome::Sent => {
                    // The LLA keeps per-publication accounting (its
                    // estimates feed the balancer's per-channel ratios,
                    // which must not depend on the batching knob).
                    for p in &batch.pubs {
                        self.lla.note_deliveries(p.channel, p.wire_size(), 1);
                    }
                }
                SendOutcome::Dropped => killed.push(recipient),
            }
        }
        for client in killed {
            self.kill_client(ctx, client);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        if self.crashed {
            if tag == TAG_TICK {
                // Keep the metronome alive so reporting resumes after a
                // recovery, but stay silent while down.
                ctx.set_timer(self.cfg.tick, TAG_TICK);
            }
            return;
        }
        if tag == TAG_TICK {
            let counts: Vec<(ChannelId, u32)> = self
                .server
                .channels()
                .map(|c| (c, self.server.subscriber_count(c) as u32))
                .collect();
            let egress = ctx.egress_bytes(ctx.node());
            let report = self
                .lla
                .end_tick(egress, self.server.cpu_busy_total(), counts);
            let _ = ctx.send(self.lb, Msg::LlaReport(report));
            ctx.set_timer(self.cfg.tick, TAG_TICK);
        } else if tag & TEARDOWN_BIT != 0 {
            self.dispatcher
                .expire(ctx.now(), ChannelId(tag & !TEARDOWN_BIT));
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
