//! Core identifier types shared across the Dynamoth middleware.

use std::fmt;

use dynamoth_sim::NodeId;

pub use dynamoth_pubsub::Channel as ChannelId;

/// Identifies a pub/sub server (a Redis instance in the paper). Wraps
/// the simulation [`NodeId`] the server's node runs under, which doubles
/// as its network address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub NodeId);

impl ServerId {
    /// The network address of this server.
    pub fn node(self) -> NodeId {
        self.0
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "H{}", self.0.index())
    }
}

/// Identifies a client of the middleware (a player, game server, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub NodeId);

impl ClientId {
    /// The network address of this client.
    pub fn node(self) -> NodeId {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0.index())
    }
}

/// Version number of a global plan. Monotonically increasing; "plan 0"
/// is the empty bootstrap plan that resolves everything through
/// consistent hashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PlanId(pub u64);

impl fmt::Display for PlanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan{}", self.0)
    }
}

/// Globally unique publication identifier: the publishing node plus a
/// per-publisher sequence number. Used by the client library to suppress
/// the duplicate deliveries that can occur during reconfiguration (§IV-3
/// of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId {
    /// The node that published the message.
    pub origin: NodeId,
    /// Sequence number local to the origin.
    pub seq: u64,
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let s = ServerId(NodeId::from_index(3));
        let c = ClientId(NodeId::from_index(8));
        assert_eq!(s.to_string(), "H3");
        assert_eq!(c.to_string(), "C8");
        assert_eq!(PlanId(2).to_string(), "plan2");
        let m = MessageId {
            origin: NodeId::from_index(1),
            seq: 9,
        };
        assert_eq!(m.to_string(), "n1#9");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = ServerId(NodeId::from_index(1));
        let b = ServerId(NodeId::from_index(2));
        assert!(a < b);
        let set: HashSet<ServerId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
