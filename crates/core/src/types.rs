//! Core identifier types shared across the Dynamoth middleware.

use std::fmt;

use dynamoth_sim::NodeId;

pub use dynamoth_pubsub::Channel as ChannelId;
pub use dynamoth_pubsub::{PlanId, ServerId};

/// Identifies a client of the middleware (a player, game server, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClientId(pub NodeId);

impl ClientId {
    /// The network address of this client.
    pub fn node(self) -> NodeId {
        self.0
    }
}

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0.index())
    }
}

/// Globally unique publication identifier: the publishing node plus a
/// per-publisher sequence number. Used by the client library to suppress
/// the duplicate deliveries that can occur during reconfiguration (§IV-3
/// of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId {
    /// The node that published the message.
    pub origin: NodeId,
    /// Sequence number local to the origin.
    pub seq: u64,
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.origin, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let c = ClientId(NodeId::from_index(8));
        assert_eq!(c.to_string(), "C8");
        let m = MessageId {
            origin: NodeId::from_index(1),
            seq: 9,
        };
        assert_eq!(m.to_string(), "n1#9");
    }
}
