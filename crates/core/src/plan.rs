//! Plans: the channel → server lookup structure at the heart of
//! Dynamoth (§II-A).
//!
//! The implementation lives in `dynamoth-pubsub` (`plan` module) so the
//! simulator and the routed TCP tier share one copy; this module
//! re-exports it under the historical `dynamoth_core` paths.

pub use dynamoth_pubsub::plan::{ChannelMapping, Plan, PlanChange};
