//! The Dynamoth load balancer node (§III), plus the consistent-hashing
//! baseline used in the paper's Experiment 2.
//!
//! The [`LoadBalancer`] actor ingests [`LlaReport`](crate::LlaReport)s
//! from every Local
//! Load Analyzer, and on every evaluation tick (gated by `T_wait`) runs
//! the two-step rebalancer: channel-level replication (Algorithm 1) then
//! system-level high-load rebalancing (Algorithm 2) or, when the system
//! is underloaded, the low-load drain. New plans are pushed reliably to
//! every dispatcher. Server rental/release is simulated with a
//! provisioning delay.

pub mod adaptive;
// The algorithm implementations moved to `dynamoth-pubsub` so the live
// TCP control plane can reuse them; re-exported here under the
// historical `dynamoth_core::balancer::*` paths.
pub use dynamoth_pubsub::balance::{channel_level, estimator, high_load, low_load};

use std::sync::Arc;

use dynamoth_sim::{Actor, ActorContext, NodeId, SimTime};

use crate::config::DynamothConfig;
use crate::hashing::Ring;
use crate::message::Msg;
use crate::metrics::MetricsStore;
use crate::plan::{ChannelMapping, Plan};
use crate::trace::{RebalanceKind, TraceHandle};
use crate::types::{PlanId, ServerId};

use adaptive::AdaptiveThresholds;
use estimator::LoadView;

/// Timer tag of the periodic evaluation tick.
pub const TAG_EVAL: u64 = 1;

/// Which balancing policy the node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BalancerStrategy {
    /// The paper's contribution: hierarchical channel/system balancing.
    Dynamoth,
    /// The baseline: grow a consistent-hashing ring on overload, with
    /// every server shedding 1/N of its channels to the new server.
    ConsistentHash,
    /// No automatic rebalancing: plans only change through
    /// [`LoadBalancer::install_manual_plan`]. Used by the
    /// micro-benchmarks of Experiment 1, where the paper fixes the
    /// replication configuration by hand.
    Manual,
}

/// The load balancer actor.
#[derive(Debug)]
pub struct LoadBalancer {
    cfg: Arc<DynamothConfig>,
    strategy: BalancerStrategy,
    ring: Arc<Ring>,
    /// The baseline's growing ring (starts as a copy of the bootstrap
    /// ring).
    ch_ring: Ring,
    pool: Vec<ServerId>,
    active: Vec<ServerId>,
    pending: Vec<(ServerId, SimTime)>,
    store: MetricsStore,
    plan: Plan,
    next_plan_id: u64,
    last_plan_at: Option<SimTime>,
    trace: TraceHandle,
    /// Last instant each server's LLA was heard from.
    last_report: std::collections::HashMap<ServerId, SimTime>,
    /// Every channel ever observed in a report (needed to remap a failed
    /// server's consistent-hash home channels).
    known_channels: std::collections::BTreeSet<crate::types::ChannelId>,
    /// Servers declared failed; excluded from provisioning until their
    /// LLA reports again (i.e. the process restarted).
    failed: std::collections::HashSet<ServerId>,
    /// Working copy of the thresholds, mutated by the adaptive
    /// controller when enabled.
    effective: DynamothConfig,
    adaptive: Option<AdaptiveThresholds>,
}

impl LoadBalancer {
    /// Creates a balancer managing `pool`, with the first
    /// `initial_active` servers rented up front. `ring` is the bootstrap
    /// consistent-hashing ring shared with clients and dispatchers.
    ///
    /// # Panics
    ///
    /// Panics if `initial_active` is zero or exceeds the pool size.
    pub fn new(
        cfg: Arc<DynamothConfig>,
        strategy: BalancerStrategy,
        ring: Arc<Ring>,
        pool: Vec<ServerId>,
        initial_active: usize,
        trace: TraceHandle,
    ) -> Self {
        assert!(
            initial_active >= 1 && initial_active <= pool.len(),
            "initial_active must be within the pool"
        );
        let active = pool[..initial_active].to_vec();
        let window = cfg.metrics_window;
        let effective = (*cfg).clone();
        let adaptive = cfg
            .adaptive_thresholds
            .then(|| AdaptiveThresholds::new(cfg.lr_high, cfg.lr_safe, cfg.danger_lr));
        LoadBalancer {
            cfg,
            strategy,
            ch_ring: (*ring).clone(),
            ring,
            pool,
            active,
            pending: Vec::new(),
            store: MetricsStore::new(window),
            plan: Plan::bootstrap(),
            next_plan_id: 0,
            last_plan_at: None,
            trace,
            last_report: std::collections::HashMap::new(),
            known_channels: std::collections::BTreeSet::new(),
            failed: std::collections::HashSet::new(),
            effective,
            adaptive,
        }
    }

    /// The thresholds currently in force (differ from the configuration
    /// when adaptive tuning is enabled).
    pub fn effective_thresholds(&self) -> (f64, f64) {
        (self.effective.lr_high, self.effective.lr_safe)
    }

    /// Currently rented (serving) servers.
    pub fn active_servers(&self) -> &[ServerId] {
        &self.active
    }

    /// Servers being provisioned.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// The current global plan.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Replaces the current plan without running any algorithm; the
    /// caller is responsible for pushing it to the dispatchers (see
    /// [`Cluster::install_plan`](crate::Cluster::install_plan)). Returns
    /// the plan stamped with its new version.
    pub fn install_manual_plan(&mut self, mut plan: Plan) -> Plan {
        self.next_plan_id += 1;
        plan.set_id(PlanId(self.next_plan_id));
        self.plan = plan.clone();
        plan
    }

    /// The CPU term for [`LoadView::from_store_with_cpu`], when the
    /// CPU-aware extension is enabled.
    fn cpu_term(&self) -> Option<(f64, u64)> {
        self.cfg
            .cpu_aware
            .then_some((self.cfg.cpu_capacity, self.cfg.tick.as_micros()))
    }

    /// Effective load ratio of `server`: bandwidth, or the max of
    /// bandwidth and normalized CPU under the CPU-aware extension.
    fn effective_load_ratio(&self, server: ServerId) -> Option<f64> {
        let bw = self.store.load_ratio(server)?;
        match self.cpu_term() {
            Some((cpu_capacity, tick_micros)) => {
                let cpu = self.store.cpu_ratio(server, tick_micros).unwrap_or(0.0);
                Some(bw.max(cpu / cpu_capacity))
            }
            None => Some(bw),
        }
    }

    fn gate_open(&self, now: SimTime) -> bool {
        self.last_plan_at
            .is_none_or(|t| now.saturating_since(t) >= self.cfg.t_wait)
    }

    fn spawn_servers(&mut self, now: SimTime, wanted: usize) -> usize {
        if !self.pending.is_empty() {
            return 0; // one provisioning wave at a time
        }
        let mut spawned = 0;
        for &s in &self.pool {
            if spawned >= wanted {
                break;
            }
            if self.active.contains(&s)
                || self.failed.contains(&s)
                || self.pending.iter().any(|&(p, _)| p == s)
            {
                continue;
            }
            self.pending.push((s, now + self.cfg.provisioning_delay));
            spawned += 1;
        }
        spawned
    }

    fn promote_pending(&mut self, ctx: &mut dyn ActorContext<Msg>, now: SimTime) {
        let ready: Vec<ServerId> = self
            .pending
            .iter()
            .filter(|&&(_, at)| at <= now)
            .map(|&(s, _)| s)
            .collect();
        if ready.is_empty() {
            return;
        }
        self.pending.retain(|&(_, at)| at > now);
        for s in ready {
            self.active.push(s);
            if self.strategy == BalancerStrategy::ConsistentHash {
                self.ch_ring.add_server(s);
            }
        }
        if self.strategy == BalancerStrategy::ConsistentHash {
            // The ring change remaps 1/N of every server's channels to
            // the newcomer, regardless of individual loads — exactly
            // the weakness the paper demonstrates.
            let mut plan = Plan::bootstrap();
            for channel in self.store.channels() {
                plan.set(
                    channel,
                    ChannelMapping::Single(self.ch_ring.server_for(channel)),
                );
            }
            self.push_plan(ctx, now, plan, RebalanceKind::ConsistentHash);
        }
        // Under the Dynamoth strategy the next evaluation migrates
        // channels onto the fresh server via Algorithm 2.
    }

    fn push_plan(
        &mut self,
        ctx: &mut dyn ActorContext<Msg>,
        now: SimTime,
        mut plan: Plan,
        kind: RebalanceKind,
    ) {
        self.next_plan_id += 1;
        plan.set_id(PlanId(self.next_plan_id));
        self.plan = plan.clone();
        let shared = Arc::new(plan);
        for &s in &self.pool {
            ctx.send(s.node(), Msg::PlanPush(Arc::clone(&shared)));
        }
        self.last_plan_at = Some(now);
        self.trace.record_rebalance(now, kind);
    }

    fn evaluate_dynamoth(&mut self, ctx: &mut dyn ActorContext<Msg>, now: SimTime) {
        if !self.gate_open(now) {
            return;
        }
        let mut view = LoadView::from_store_with_cpu(
            &self.store,
            &self.active,
            self.cfg.capacity_per_tick(),
            self.cpu_term(),
        );
        // Failed servers are routed around, so every resolve the
        // algorithms gate on must agree with where traffic really goes.
        let excluded: Vec<ServerId> = self.failed.iter().copied().collect();
        let plan = &self.plan;
        let ring = &self.ring;
        let mut aggregates: Vec<_> = self
            .store
            .channel_aggregates(|c| plan.resolve_excluding(c, ring, &excluded))
            .into_iter()
            .collect();
        aggregates.sort_by_key(|&(c, _)| c);

        // Step 1: channel-level (micro) rebalancing — Algorithm 1.
        let mut plan = self.plan.clone();
        let cl_changed = channel_level::apply(
            &mut plan,
            &self.ring,
            &aggregates,
            &mut view,
            &self.active,
            &self.effective,
            &excluded,
        );

        // Step 2: system-level (macro) rebalancing — Algorithm 2.
        let high = high_load::rebalance(&plan, &mut view, &self.ring, &self.effective, &excluded);
        let mut plan = high.plan;

        // Step 3: low-load drain, only when nothing else is going on.
        let mut release = None;
        if !high.changed && high.servers_wanted == 0 && !cl_changed {
            if let Some(low) =
                low_load::rebalance(&plan, &mut view, &self.ring, &self.effective, &excluded)
            {
                release = Some(low.release);
                plan = low.plan;
            }
        }

        if high.servers_wanted > 0 {
            self.spawn_servers(now, high.servers_wanted);
        }

        let changed = cl_changed || high.changed || release.is_some();
        if changed {
            let kind = if let Some(victim) = release {
                self.active.retain(|&s| s != victim);
                self.store.forget(victim);
                RebalanceKind::LowLoad
            } else if high.changed {
                RebalanceKind::HighLoad
            } else {
                RebalanceKind::ChannelLevel
            };
            self.push_plan(ctx, now, plan, kind);
        }
    }

    fn evaluate_consistent_hash(&mut self, now: SimTime) {
        if !self.gate_open(now) {
            return;
        }
        let max_lr = self
            .active
            .iter()
            .filter_map(|&s| self.effective_load_ratio(s))
            .fold(0.0f64, f64::max);
        if max_lr > self.effective.lr_high {
            // The only lever consistent hashing has: rent another server.
            if self.spawn_servers(now, 1) > 0 {
                self.last_plan_at = Some(now);
            }
        }
    }

    /// Declares active servers that stopped reporting as failed and
    /// migrates every channel they were responsible for to healthy
    /// servers (the reliability extension; §VII future work). Clients
    /// recover lazily: their publications to the dead server go
    /// unanswered, the client-side failover timeout fires, and the
    /// consistent-hash fallback leads them to a dispatcher holding the
    /// failover plan.
    fn detect_failures(&mut self, ctx: &mut dyn ActorContext<Msg>, now: SimTime) {
        if !self.cfg.fault_tolerance || self.strategy == BalancerStrategy::Manual {
            return;
        }
        let timeout = self.cfg.server_failure_timeout;
        let failed: Vec<ServerId> = self
            .active
            .iter()
            .copied()
            .filter(|s| {
                self.last_report
                    .get(s)
                    .is_some_and(|&at| now.saturating_since(at) > timeout)
            })
            .collect();
        if failed.is_empty() {
            return;
        }
        for &s in &failed {
            self.active.retain(|&a| a != s);
            self.store.forget(s);
            self.last_report.remove(&s);
            self.failed.insert(s);
        }
        // A failed server that was mid-provisioning must not be promoted.
        self.pending.retain(|&(s, _)| !failed.contains(&s));
        if self.active.is_empty() {
            // Nothing healthy to fail over to; wait for provisioning.
            self.spawn_servers(now, failed.len());
            return;
        }
        // Remap every known channel that resolved to a failed server,
        // spreading them round-robin over the healthy pool. Resolution
        // excludes *earlier* corpses (traffic already routes around
        // them) but not this batch, so the containment check still
        // sees the dying mapping it must replace.
        let prior: Vec<ServerId> = self
            .failed
            .iter()
            .copied()
            .filter(|s| !failed.contains(s))
            .collect();
        let mut plan = self.plan.clone();
        let healthy = self.active.clone();
        let mut round = 0usize;
        for &channel in &self.known_channels.clone() {
            let mapping = plan.resolve_excluding(channel, &self.ring, &prior);
            for &dead in &failed {
                if mapping.contains(dead) {
                    let target = healthy[round % healthy.len()];
                    round += 1;
                    plan.migrate_excluding(channel, dead, target, &self.ring, &prior);
                }
            }
        }
        self.push_plan(ctx, now, plan, RebalanceKind::Failover);
        // Replace the lost capacity.
        self.spawn_servers(now, failed.len());
    }

    fn record_tick_trace(&mut self, now: SimTime) {
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut n = 0usize;
        for &s in &self.active {
            if let Some(lr) = self.effective_load_ratio(s) {
                sum += lr;
                max = max.max(lr);
                n += 1;
            }
        }
        if n > 0 {
            self.trace.record_load(now, sum / n as f64, max);
            if let Some(controller) = &mut self.adaptive {
                if controller.observe(max) {
                    self.effective.lr_high = controller.lr_high();
                    self.effective.lr_safe = controller.lr_safe();
                }
            }
        }
        self.trace.record_server_count(now, self.active.len());
        self.trace.add_server_seconds(self.active.len());
    }
}

impl Actor<Msg> for LoadBalancer {
    fn on_message(&mut self, _ctx: &mut dyn ActorContext<Msg>, _from: NodeId, msg: Msg) {
        if let Msg::LlaReport(report) = msg {
            let deliveries: u64 = report.channels.iter().map(|&(_, t)| t.deliveries).sum();
            if deliveries > 0 {
                self.trace.add_deliveries(report.tick, deliveries);
            }
            self.last_report.insert(report.server, _ctx.now());
            // A report from a failed server means it restarted: it
            // becomes a provisioning candidate again.
            self.failed.remove(&report.server);
            self.known_channels
                .extend(report.channels.iter().map(|&(c, _)| c));
            self.store.record(report);
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        if tag != TAG_EVAL {
            return;
        }
        let now = ctx.now();
        self.promote_pending(ctx, now);
        self.detect_failures(ctx, now);
        match self.strategy {
            BalancerStrategy::Dynamoth => self.evaluate_dynamoth(ctx, now),
            BalancerStrategy::ConsistentHash => self.evaluate_consistent_hash(now),
            BalancerStrategy::Manual => {}
        }
        self.record_tick_trace(now);
        ctx.set_timer(self.cfg.tick, TAG_EVAL);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}
