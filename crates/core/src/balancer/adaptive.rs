//! Adaptive threshold tuning — the paper's §III-B future-work idea of
//! "a mechanism to automatically set and update thresholds based on
//! real-time conditions".
//!
//! The paper sets `LR_high` / `LR_safe` empirically for its hardware and
//! notes they would need re-tuning elsewhere. [`AdaptiveThresholds`]
//! automates that with a conservative AIMD rule driven by the one signal
//! the balancer can observe without client cooperation: how close the
//! busiest server comes to the failure point (≈ 1.15 in the paper's
//! measurements, Fig. 6):
//!
//! * whenever the maximum load ratio reaches the danger zone, the
//!   trigger thresholds are lowered multiplicatively — rebalance
//!   earlier next time;
//! * after a long calm stretch they creep back up additively, so an
//!   over-conservative setting does not waste servers forever.

/// AIMD controller for the pair (`LR_high`, `LR_safe`).
#[derive(Debug, Clone)]
pub struct AdaptiveThresholds {
    initial_high: f64,
    gap: f64,
    lr_high: f64,
    /// Load ratio considered dangerously close to server failure.
    danger: f64,
    /// Lower bound for `LR_high`.
    floor: f64,
    /// Consecutive calm observations required before relaxing.
    calm_needed: u32,
    calm: u32,
}

impl AdaptiveThresholds {
    /// Creates a controller starting from the configured thresholds.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lr_safe < lr_high < danger`.
    pub fn new(lr_high: f64, lr_safe: f64, danger: f64) -> Self {
        assert!(
            0.0 < lr_safe && lr_safe < lr_high && lr_high < danger,
            "thresholds must satisfy 0 < LR_safe < LR_high < danger"
        );
        AdaptiveThresholds {
            initial_high: lr_high,
            gap: lr_high - lr_safe,
            lr_high,
            danger,
            floor: lr_high * 0.6,
            calm_needed: 30,
            calm: 0,
        }
    }

    /// Current `LR_high`.
    pub fn lr_high(&self) -> f64 {
        self.lr_high
    }

    /// Current `LR_safe` (tracks `LR_high` at a constant gap).
    pub fn lr_safe(&self) -> f64 {
        self.lr_high - self.gap
    }

    /// Feeds one tick's maximum observed load ratio. Returns `true` if
    /// the thresholds changed.
    pub fn observe(&mut self, max_lr: f64) -> bool {
        if max_lr >= self.danger {
            // Multiplicative decrease: we nearly lost a server; trigger
            // rebalancing earlier from now on.
            self.calm = 0;
            let new = (self.lr_high * 0.85).max(self.floor);
            if (new - self.lr_high).abs() > f64::EPSILON {
                self.lr_high = new;
                return true;
            }
            return false;
        }
        if max_lr < self.lr_safe() {
            self.calm += 1;
            if self.calm >= self.calm_needed && self.lr_high < self.initial_high {
                // Additive increase back towards the configured value.
                self.calm = 0;
                self.lr_high = (self.lr_high + 0.02).min(self.initial_high);
                return true;
            }
        } else {
            self.calm = 0;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> AdaptiveThresholds {
        AdaptiveThresholds::new(0.9, 0.7, 1.1)
    }

    #[test]
    fn starts_at_configured_values() {
        let a = controller();
        assert!((a.lr_high() - 0.9).abs() < 1e-12);
        assert!((a.lr_safe() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn danger_lowers_thresholds_multiplicatively() {
        let mut a = controller();
        assert!(a.observe(1.2));
        assert!((a.lr_high() - 0.765).abs() < 1e-9);
        // The gap is preserved.
        assert!((a.lr_high() - a.lr_safe() - 0.2).abs() < 1e-9);
        // Repeated danger keeps lowering, but never below the floor.
        for _ in 0..20 {
            a.observe(1.2);
        }
        assert!(a.lr_high() >= 0.9 * 0.6 - 1e-9);
    }

    #[test]
    fn calm_stretch_relaxes_back_additively() {
        let mut a = controller();
        a.observe(1.2); // lowered to 0.765
        let lowered = a.lr_high();
        // 29 calm ticks: nothing yet.
        for _ in 0..29 {
            assert!(!a.observe(0.3));
        }
        assert!(a.observe(0.3));
        assert!((a.lr_high() - (lowered + 0.02)).abs() < 1e-9);
        // It never exceeds the configured value.
        for _ in 0..10_000 {
            a.observe(0.1);
        }
        assert!(a.lr_high() <= 0.9 + 1e-9);
    }

    #[test]
    fn moderate_load_resets_the_calm_counter() {
        let mut a = controller();
        a.observe(1.2);
        for _ in 0..29 {
            a.observe(0.3);
        }
        // One busy tick resets the streak…
        assert!(!a.observe(0.8));
        // …so the 30th calm tick no longer fires.
        assert!(!a.observe(0.3));
    }

    #[test]
    fn never_adjusts_without_danger_at_initial_values() {
        let mut a = controller();
        for _ in 0..1_000 {
            assert!(!a.observe(0.5));
        }
    }

    #[test]
    #[should_panic(expected = "thresholds must satisfy")]
    fn invalid_ordering_panics() {
        let _ = AdaptiveThresholds::new(0.7, 0.9, 1.1);
    }
}
