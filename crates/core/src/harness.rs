//! Simulation assembly: builds a complete Dynamoth cluster (pub/sub
//! server nodes, load balancer, transport) inside a
//! [`World`](dynamoth_sim::World), ready for workloads to attach client
//! actors.

use std::sync::Arc;

use dynamoth_net::{CloudTransport, CloudTransportConfig};
use dynamoth_pubsub::CpuModel;
use dynamoth_sim::{Actor, NodeClass, NodeId, SimDuration, SimTime, World};

use crate::balancer::{BalancerStrategy, LoadBalancer, TAG_EVAL};
use crate::client::DynamothClient;
use crate::config::DynamothConfig;
use crate::hashing::{Ring, DEFAULT_VNODES};
use crate::message::Msg;
use crate::server_node::{ServerNode, TAG_TICK};
use crate::trace::TraceHandle;
use crate::types::ServerId;

/// Everything needed to build a cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// World RNG seed (same seed ⇒ identical run).
    pub seed: u64,
    /// Total servers available in the cloud pool.
    pub pool_size: usize,
    /// Servers rented at start ("plan 0" hashes over these).
    pub initial_active: usize,
    /// Load-balancing policy.
    pub strategy: BalancerStrategy,
    /// Middleware thresholds.
    pub dynamoth: DynamothConfig,
    /// Network model.
    pub transport: CloudTransportConfig,
    /// Broker CPU cost model.
    pub cpu: CpuModel,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            seed: 42,
            pool_size: 8,
            initial_active: 1,
            strategy: BalancerStrategy::Dynamoth,
            dynamoth: DynamothConfig::default(),
            transport: CloudTransportConfig::default(),
            cpu: CpuModel::default(),
        }
    }
}

/// A running cluster: the simulated world plus handles to its parts.
///
/// # Examples
///
/// ```
/// use dynamoth_core::{Cluster, ClusterConfig};
/// use dynamoth_sim::SimDuration;
///
/// let mut cluster = Cluster::build(ClusterConfig::default());
/// cluster.run_for(SimDuration::from_secs(5));
/// assert_eq!(cluster.active_server_count(), 1); // idle: nothing spawned
/// ```
pub struct Cluster {
    /// The simulation world; attach client actors here.
    pub world: World<Msg>,
    /// The load balancer's node id.
    pub lb: NodeId,
    /// All pool servers (active or not).
    pub servers: Vec<ServerId>,
    /// The bootstrap consistent-hashing ring shared by all parties.
    pub ring: Arc<Ring>,
    /// The middleware configuration.
    pub cfg: Arc<DynamothConfig>,
    /// Shared experiment trace.
    pub trace: TraceHandle,
}

impl Cluster {
    /// Builds the cluster: `pool_size` server nodes, one load balancer,
    /// LLA/eval timers armed at the first tick.
    ///
    /// # Panics
    ///
    /// Panics if `initial_active` is zero or exceeds `pool_size`.
    pub fn build(config: ClusterConfig) -> Cluster {
        assert!(
            config.initial_active >= 1 && config.initial_active <= config.pool_size,
            "initial_active must be within the pool"
        );
        let cfg = Arc::new(config.dynamoth);
        let transport = CloudTransport::new(config.transport);
        let mut world: World<Msg> = World::new(config.seed, Box::new(transport));

        // Server nodes are created first so their NodeIds are 0..pool;
        // the load balancer lands on index `pool_size`.
        let lb_node = NodeId::from_index(config.pool_size);
        let servers: Vec<ServerId> = (0..config.pool_size)
            .map(|i| ServerId(NodeId::from_index(i)))
            .collect();
        let ring = Arc::new(Ring::new(&servers[..config.initial_active], DEFAULT_VNODES));
        for &sid in &servers {
            let node = world.add_node(
                NodeClass::Infra,
                Box::new(ServerNode::with_cpu(
                    sid,
                    lb_node,
                    Arc::clone(&ring),
                    Arc::clone(&cfg),
                    config.cpu.clone(),
                )),
            );
            assert_eq!(node, sid.0, "server node ids must be dense from 0");
        }

        let trace = TraceHandle::new();
        let lb_actor = LoadBalancer::new(
            Arc::clone(&cfg),
            config.strategy,
            Arc::clone(&ring),
            servers.clone(),
            config.initial_active,
            trace.clone(),
        );
        let lb = world.add_node(NodeClass::Infra, Box::new(lb_actor));
        assert_eq!(lb, lb_node, "load balancer must follow the servers");

        // Arm the periodic timers: LLAs tick first, the balancer
        // evaluates just after the reports are in flight.
        let tick = SimTime::ZERO + cfg.tick;
        for &sid in &servers {
            world.schedule_timer(sid.0, tick, TAG_TICK);
        }
        world.schedule_timer(lb, tick + SimDuration::from_millis(100), TAG_EVAL);

        Cluster {
            world,
            lb,
            servers,
            ring,
            cfg,
            trace,
        }
    }

    /// Registers a client actor and returns its node id.
    pub fn add_client(&mut self, actor: Box<dyn Actor<Msg>>) -> NodeId {
        self.world.add_node(NodeClass::Client, actor)
    }

    /// Creates a client-library instance for the node `node` (sharing
    /// the cluster's ring and configuration).
    pub fn client_library(&self, node: NodeId) -> DynamothClient {
        DynamothClient::new(node, Arc::clone(&self.ring), Arc::clone(&self.cfg))
    }

    /// Installs a hand-written plan (Experiment 1 style: the paper fixes
    /// the replication configuration manually for the micro-benchmarks)
    /// and pushes it to every dispatcher. Clients still learn it lazily
    /// through the normal wrong-server/switch machinery.
    ///
    /// # Panics
    ///
    /// Panics if the load balancer actor cannot be found.
    pub fn install_plan(&mut self, plan: crate::Plan) {
        let stamped = self
            .world
            .actor_mut::<LoadBalancer>(self.lb)
            .expect("load balancer present")
            .install_manual_plan(plan);
        let shared = std::sync::Arc::new(stamped);
        let lb = self.lb;
        for &s in &self.servers.clone() {
            self.world
                .post(lb, s.0, Msg::PlanPush(std::sync::Arc::clone(&shared)));
        }
    }

    /// Advances the simulation by `d`.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.world.now() + d;
        self.world.run_until(deadline);
    }

    /// Number of servers the balancer currently rents.
    pub fn active_server_count(&self) -> usize {
        self.world
            .actor::<LoadBalancer>(self.lb)
            .map(|lb| lb.active_servers().len())
            .unwrap_or(0)
    }

    /// Immutable access to a server node (inspection in tests).
    pub fn server_node(&self, server: ServerId) -> Option<&ServerNode> {
        self.world.actor::<ServerNode>(server.0)
    }

    /// Immutable access to the load balancer (inspection in tests).
    pub fn load_balancer(&self) -> Option<&LoadBalancer> {
        self.world.actor::<LoadBalancer>(self.lb)
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("servers", &self.servers.len())
            .field("now", &self.world.now())
            .finish_non_exhaustive()
    }
}
