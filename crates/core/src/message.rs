//! The wire protocol of the Dynamoth middleware.
//!
//! Every message exchanged between clients, pub/sub server nodes and the
//! load balancer is a [`Msg`]. Payloads are modelled by their size only —
//! the simulation never materializes application bytes — but every
//! message carries the metadata the protocol actually needs (channel,
//! unique id, publish timestamp for latency accounting, hop count for
//! forwarding-loop protection).

use std::sync::Arc;

use dynamoth_sim::{Message, NodeId, SimTime};

use crate::metrics::LlaReport;
use crate::plan::{ChannelMapping, Plan};
use crate::types::{ChannelId, MessageId, PlanId};

/// Wire size of small control messages (subscribe, redirects, …).
pub const CTRL_SIZE: u32 = 64;
/// Per-publication protocol overhead added to the payload size.
pub const PUB_HEADER: u32 = 64;
/// Per-entry framing cost inside a [`Msg::DeliverBatch`] (length prefix
/// + message id); the full [`PUB_HEADER`] is paid once per batch.
pub const BATCH_ENTRY_HEADER: u32 = 8;

/// A publication flowing through the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publication {
    /// The channel the message is published on.
    pub channel: ChannelId,
    /// Globally unique message id (for duplicate suppression).
    pub id: MessageId,
    /// Application payload size in bytes.
    pub payload: u32,
    /// Instant the publisher sent the message (drives response-time
    /// measurements).
    pub sent_at: SimTime,
    /// The publishing node.
    pub publisher: NodeId,
    /// Dispatcher-forwarding hop count (loop protection).
    pub hops: u8,
}

impl Publication {
    /// Bytes this publication occupies on the wire.
    pub fn wire_size(&self) -> u32 {
        PUB_HEADER + self.payload
    }
}

/// Every message of the Dynamoth protocol.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- Client → pub/sub server ----
    /// Subscribe the sender to a channel. `plan_hint` is the plan
    /// version under which the sender learned the channel's mapping
    /// (`PlanId(0)` when falling back to consistent hashing); the
    /// dispatcher uses it to detect clients with outdated plans.
    Subscribe {
        /// Channel to subscribe to.
        channel: ChannelId,
        /// Sender's plan version for this channel.
        plan_hint: PlanId,
    },
    /// Remove the sender's subscription.
    Unsubscribe {
        /// Channel to unsubscribe from.
        channel: ChannelId,
    },
    /// Publish a message on a channel. See [`Msg::Subscribe`] for
    /// `plan_hint`.
    Publish {
        /// The publication.
        publication: Publication,
        /// Sender's plan version for this channel.
        plan_hint: PlanId,
    },

    // ---- Pub/sub server → client ----
    /// Fan-out delivery of a publication to a subscriber.
    Deliver(Publication),
    /// Batched fan-out: every publication destined to one subscriber
    /// node within a delivery tick, coalesced into a single wire
    /// message. The protocol header is paid once for the whole batch;
    /// each entry adds only its payload plus a small per-entry framing
    /// cost. Receivers unpack the batch through the same dedup window
    /// as [`Msg::Deliver`], so reconfiguration-duplicate semantics are
    /// identical on both paths.
    DeliverBatch(Vec<Publication>),
    /// Tells a publisher it used the wrong (or an outdated) server for
    /// `channel` and what the correct mapping is (§IV, "publishing on
    /// old server").
    WrongServer {
        /// Affected channel.
        channel: ChannelId,
        /// The mapping the client should use from now on.
        mapping: ChannelMapping,
        /// Plan version the mapping comes from.
        plan: PlanId,
    },
    /// Tells a subscriber it subscribed on the wrong (or an outdated)
    /// server (§IV-A4).
    SubscriptionMoved {
        /// Affected channel.
        channel: ChannelId,
        /// The mapping the client should use from now on.
        mapping: ChannelMapping,
        /// Plan version the mapping comes from.
        plan: PlanId,
    },
    /// `<switch to H1>` notification sent to all subscribers of a moved
    /// channel with the first post-change publication (§IV-A2).
    Switch {
        /// Affected channel.
        channel: ChannelId,
        /// The mapping subscribers should move to.
        mapping: ChannelMapping,
        /// Plan version the mapping comes from.
        plan: PlanId,
    },
    /// The server killed the sender's connection (output-buffer
    /// overflow); lists the subscriptions that were lost. Modelled as a
    /// transport-level connection-reset signal (zero wire size, not
    /// carried in the congested data stream), like a TCP RST.
    Disconnected {
        /// Channels whose subscriptions were dropped.
        channels: Vec<ChannelId>,
    },

    // ---- Dispatcher ↔ dispatcher ----
    /// A publication forwarded between dispatchers during
    /// reconfiguration. The receiver delivers it to local subscribers
    /// only (it must not re-forward, §IV-A2/3).
    Forward(Publication),
    /// The old server has no subscribers left for `channel`; the new
    /// server's dispatcher can stop back-forwarding (§IV-A5).
    NoMoreSubscribers {
        /// Affected channel.
        channel: ChannelId,
    },

    /// Client-side liveness probe of a pub/sub server (the reliability
    /// extension; §VII future work).
    Ping,
    /// Server response to [`Msg::Ping`].
    Pong,

    // ---- Infrastructure control plane ----
    /// Aggregate metrics update from a Local Load Analyzer to the load
    /// balancer (§III-A).
    LlaReport(LlaReport),
    /// A new global plan pushed reliably to every dispatcher (§IV-A1).
    PlanPush(Arc<Plan>),
}

impl Message for Msg {
    fn wire_size(&self) -> u32 {
        match self {
            Msg::Publish { publication: p, .. } => p.wire_size(),
            Msg::Deliver(p) | Msg::Forward(p) => p.wire_size(),
            Msg::DeliverBatch(batch) => {
                PUB_HEADER
                    + batch
                        .iter()
                        .map(|p| BATCH_ENTRY_HEADER + p.payload)
                        .sum::<u32>()
            }
            Msg::Subscribe { .. }
            | Msg::Unsubscribe { .. }
            | Msg::Ping
            | Msg::Pong
            | Msg::NoMoreSubscribers { .. } => CTRL_SIZE,
            Msg::WrongServer { mapping, .. }
            | Msg::SubscriptionMoved { mapping, .. }
            | Msg::Switch { mapping, .. } => CTRL_SIZE + 8 * mapping.servers().len() as u32,
            // Connection resets are out-of-band (see the variant docs).
            Msg::Disconnected { .. } => 0,
            Msg::LlaReport(r) => r.wire_size(),
            Msg::PlanPush(plan) => plan.wire_size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ServerId;

    fn publication(payload: u32) -> Publication {
        Publication {
            channel: ChannelId(1),
            id: MessageId {
                origin: NodeId::from_index(0),
                seq: 1,
            },
            payload,
            sent_at: SimTime::ZERO,
            publisher: NodeId::from_index(0),
            hops: 0,
        }
    }

    #[test]
    fn publication_sizes_include_header() {
        let p = publication(1_000);
        assert_eq!(p.wire_size(), 1_000 + PUB_HEADER);
        assert_eq!(
            Msg::Publish {
                publication: p,
                plan_hint: PlanId(0)
            }
            .wire_size(),
            p.wire_size()
        );
        assert_eq!(Msg::Deliver(p).wire_size(), p.wire_size());
        assert_eq!(Msg::Forward(p).wire_size(), p.wire_size());
    }

    #[test]
    fn batch_amortizes_the_header() {
        let p = publication(1_000);
        // A singleton batch pays the entry framing on top of the plain
        // delivery (which is why senders use `Deliver` for singletons)…
        assert_eq!(
            Msg::DeliverBatch(vec![p]).wire_size(),
            Msg::Deliver(p).wire_size() + BATCH_ENTRY_HEADER
        );
        // …and a full batch pays PUB_HEADER exactly once.
        let n = 100u32;
        let batch = Msg::DeliverBatch(vec![p; n as usize]);
        assert_eq!(
            batch.wire_size(),
            PUB_HEADER + n * (BATCH_ENTRY_HEADER + 1_000)
        );
        assert!(batch.wire_size() < n * Msg::Deliver(p).wire_size());
    }

    #[test]
    fn control_messages_are_small() {
        assert_eq!(
            Msg::Subscribe {
                channel: ChannelId(1),
                plan_hint: PlanId(0)
            }
            .wire_size(),
            CTRL_SIZE
        );
        let mapping = ChannelMapping::AllSubscribers(vec![
            ServerId(NodeId::from_index(0)),
            ServerId(NodeId::from_index(1)),
        ]);
        let switch = Msg::Switch {
            channel: ChannelId(1),
            mapping,
            plan: PlanId(1),
        };
        assert_eq!(switch.wire_size(), CTRL_SIZE + 16);
    }

    #[test]
    fn plan_push_size_scales_with_entries() {
        let mut plan = Plan::bootstrap();
        let base = Msg::PlanPush(Arc::new(plan.clone())).wire_size();
        plan.set(
            ChannelId(1),
            ChannelMapping::Single(ServerId(NodeId::from_index(0))),
        );
        let one = Msg::PlanPush(Arc::new(plan)).wire_size();
        assert!(one > base);
    }
}
