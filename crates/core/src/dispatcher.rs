//! The dispatcher (§II-A, §IV): the per-server component that makes
//! reconfiguration transparent.
//!
//! Each pub/sub server node hosts a dispatcher holding the complete
//! current global plan. The dispatcher:
//!
//! * detects publications and subscriptions that arrive at a server not
//!   responsible for the channel — or from clients whose *plan version*
//!   for the channel predates its last mapping change — corrects the
//!   sender ([`Msg::WrongServer`](crate::Msg::WrongServer) /
//!   [`Msg::SubscriptionMoved`](crate::Msg::SubscriptionMoved)) and
//!   forwards the publication wherever needed so nothing is lost;
//! * after a plan change, emits a `<switch>` notification to its local
//!   subscribers together with the first publication on the changed
//!   channel (§IV-A2), which also covers replication-mode changes where
//!   this server stays a member;
//! * forwards publications *new server → departed old server* while the
//!   old server still has subscribers, stopping on
//!   [`Msg::NoMoreSubscribers`](crate::Msg::NoMoreSubscribers) (§IV-A5);
//! * tears all forwarding state down after the plan-entry TTL, mirroring
//!   the client-side timers (§IV-A5).
//!
//! Plan-version hints: every client stamps its publications and
//! subscriptions with the plan version under which it learned the
//! channel's mapping (`PlanId(0)` for the consistent-hashing fallback).
//! The dispatcher remembers, per channel, the plan version of its last
//! mapping change; a hint older than that marks a client with an
//! outdated local plan that must be informed even when the server it
//! chose happens to be a valid replica — without this, clients falling
//! back to consistent hashing would all pile onto the hash-home member
//! of a replicated channel and replication would never spread load.
//!
//! Batched fan-out: the dispatcher itself is agnostic to
//! [`delivery_batching`](crate::DynamothConfig::delivery_batching) —
//! it reasons about individual publications. Forwarded publications
//! ([`Msg::Forward`](crate::Msg::Forward)) re-enter the receiving
//! server's publication path, so they join that node's per-recipient
//! batch buffers exactly like client publications, and `<switch>`
//! notifications stay un-batched control traffic. Duplicate
//! suppression during reconfiguration therefore works identically on
//! both delivery paths (the client unpacks batches through the same
//! dedup window).
//!
//! Like the client library, the dispatcher is a pure state machine
//! returning [`DispatchAction`]s for the server node to execute.

use std::collections::HashMap;
use std::sync::Arc;

use dynamoth_sim::{NodeId, SimRng, SimTime};

use crate::hashing::Ring;
use crate::message::Publication;
use crate::plan::{ChannelMapping, Plan};
use crate::types::{ChannelId, PlanId, ServerId};

/// Maximum dispatcher-forwarding hops a publication may take; protects
/// against routing loops while plans race.
pub const MAX_FORWARD_HOPS: u8 = 4;

/// Side effects the server node must carry out for the dispatcher.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DispatchAction {
    /// Tell the publisher it used a wrong or outdated server.
    NotifyWrongServer {
        /// The publisher to correct.
        publisher: NodeId,
        /// Affected channel.
        channel: ChannelId,
        /// Correct mapping.
        mapping: ChannelMapping,
        /// Plan version of the mapping.
        plan: PlanId,
    },
    /// Publish a `<switch>` notification to all local subscribers of the
    /// channel.
    EmitSwitch {
        /// Affected channel.
        channel: ChannelId,
        /// Mapping the subscribers should move to.
        mapping: ChannelMapping,
        /// Plan version of the mapping.
        plan: PlanId,
    },
    /// Forward the publication to other servers' dispatchers (they
    /// deliver it locally without re-forwarding).
    ForwardTo {
        /// Destination servers.
        servers: Vec<ServerId>,
        /// The publication, with its hop count already incremented.
        publication: Publication,
    },
    /// Tell the listed servers that this (old) server has no subscribers
    /// left on the channel.
    NotifyNoMoreSubscribers {
        /// Destination servers (the channel's new home).
        servers: Vec<ServerId>,
        /// Affected channel.
        channel: ChannelId,
    },
}

#[derive(Debug)]
struct ForwardOld {
    no_subs_notified: bool,
    expires_at: SimTime,
}

#[derive(Debug)]
struct ForwardNew {
    /// Previous members to mirror publications to, each with its own
    /// deadline: departed members last until they report no subscribers
    /// (bounded by the TTL), members that merely stayed behind during a
    /// mapping expansion only for the short mirror window.
    old_servers: Vec<(ServerId, SimTime)>,
}

/// Counters describing dispatcher activity, used by tests and traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DispatcherStats {
    /// Publications from clients with wrong or outdated plans.
    pub wrong_server_publications: u64,
    /// Subscriptions from clients with wrong or outdated plans.
    pub wrong_server_subscriptions: u64,
    /// Publications forwarded to other servers.
    pub forwarded: u64,
    /// `<switch>` notifications emitted.
    pub switches_emitted: u64,
}

/// Per-server dispatcher state machine.
#[derive(Debug)]
pub struct Dispatcher {
    me: ServerId,
    ring: Arc<Ring>,
    plan: Arc<Plan>,
    ttl: dynamoth_sim::SimDuration,
    mirror_window: dynamoth_sim::SimDuration,
    /// Plan version of each channel's last mapping change.
    changed_at: HashMap<ChannelId, PlanId>,
    /// Channels whose subscribers must be switched with the next
    /// publication.
    switch_pending: HashMap<ChannelId, SimTime>,
    forward_old: HashMap<ChannelId, ForwardOld>,
    forward_new: HashMap<ChannelId, ForwardNew>,
    stats: DispatcherStats,
}

impl Dispatcher {
    /// Creates the dispatcher for server `me` with the bootstrap plan.
    /// `ttl` bounds all forwarding state (§IV-A5); `mirror_window` is
    /// the shorter period during which a newly added member mirrors
    /// publications back to members that stayed.
    pub fn new(
        me: ServerId,
        ring: Arc<Ring>,
        ttl: dynamoth_sim::SimDuration,
        mirror_window: dynamoth_sim::SimDuration,
    ) -> Self {
        Dispatcher {
            me,
            ring,
            plan: Arc::new(Plan::bootstrap()),
            ttl,
            mirror_window,
            changed_at: HashMap::new(),
            switch_pending: HashMap::new(),
            forward_old: HashMap::new(),
            forward_new: HashMap::new(),
            stats: DispatcherStats::default(),
        }
    }

    /// Dispatcher activity counters.
    pub fn stats(&self) -> DispatcherStats {
        self.stats
    }

    /// The plan currently installed.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// `true` if this server is responsible for `channel` under the
    /// current plan.
    pub fn is_responsible(&self, channel: ChannelId) -> bool {
        self.plan.resolve(channel, &self.ring).contains(self.me)
    }

    fn version_of(&self, channel: ChannelId) -> PlanId {
        self.changed_at.get(&channel).copied().unwrap_or(PlanId(0))
    }

    /// Installs a new global plan (§IV-A1). Returns the channels whose
    /// reconfiguration state was created, so the server node can arm
    /// teardown timers at `now + ttl` and call [`Dispatcher::expire`]
    /// when they fire.
    pub fn install_plan(&mut self, now: SimTime, new_plan: Arc<Plan>) -> Vec<ChannelId> {
        let changes = self.plan.diff(&new_plan, &self.ring);
        let mut affected = Vec::new();
        let expires_at = now + self.ttl;
        for change in changes {
            self.changed_at.insert(change.channel, new_plan.id());
            let was = change.old.contains(self.me);
            let is = change.new.contains(self.me);
            if was {
                // Local subscribers must be told about the new mapping
                // with the first post-change publication — whether the
                // channel left this server entirely or merely changed
                // its replication shape.
                self.switch_pending.insert(change.channel, expires_at);
                affected.push(change.channel);
            }
            if was && !is {
                self.forward_old.insert(
                    change.channel,
                    ForwardOld {
                        no_subs_notified: false,
                        expires_at,
                    },
                );
            } else if is && !was {
                // We are a *new* member: mirror publications back to
                // every previous member. Departed members hold
                // subscribers until they all switch (long deadline, cut
                // short by NoMoreSubscribers); members that stayed still
                // hold the subscribers whose subscription to us is in
                // flight (short mirror window).
                let mirror_until = now + self.mirror_window;
                let old_servers: Vec<(ServerId, SimTime)> = change
                    .old
                    .servers()
                    .iter()
                    .copied()
                    .filter(|&s| s != self.me)
                    .map(|s| {
                        if change.new.contains(s) {
                            (s, mirror_until)
                        } else {
                            (s, expires_at)
                        }
                    })
                    .collect();
                if !old_servers.is_empty() {
                    self.forward_new
                        .insert(change.channel, ForwardNew { old_servers });
                    affected.push(change.channel);
                }
            }
        }
        self.plan = new_plan;
        affected
    }

    /// Handles a publication arriving from a client (a `Publish` with
    /// its plan-version hint). The server node always delivers to local
    /// subscribers; this method returns the extra protocol actions.
    pub fn on_client_publication(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        p: &Publication,
        plan_hint: PlanId,
    ) -> Vec<DispatchAction> {
        let mapping = self.plan.resolve(p.channel, &self.ring);
        let version = self.version_of(p.channel);
        let mut actions = Vec::new();

        // First post-change publication: switch local subscribers.
        if let Some(expires) = self.switch_pending.remove(&p.channel) {
            if now < expires {
                self.stats.switches_emitted += 1;
                actions.push(DispatchAction::EmitSwitch {
                    channel: p.channel,
                    mapping: mapping.clone(),
                    plan: version,
                });
            }
        }

        if mapping.contains(self.me) {
            if plan_hint < version {
                // Correct server, outdated client (e.g. it fell back to
                // consistent hashing and does not know the channel is
                // replicated).
                self.stats.wrong_server_publications += 1;
                actions.push(DispatchAction::NotifyWrongServer {
                    publisher: p.publisher,
                    channel: p.channel,
                    mapping: mapping.clone(),
                    plan: version,
                });
                // Under all-publishers replication the client should
                // have published to every member; cover for it.
                if let ChannelMapping::AllPublishers(members) = &mapping {
                    if p.hops < MAX_FORWARD_HOPS {
                        let others: Vec<ServerId> =
                            members.iter().copied().filter(|&s| s != self.me).collect();
                        if !others.is_empty() {
                            let mut copy = *p;
                            copy.hops += 1;
                            self.stats.forwarded += 1;
                            actions.push(DispatchAction::ForwardTo {
                                servers: others,
                                publication: copy,
                            });
                        }
                    }
                }
            }
            // If we are a new home of a channel whose previous members
            // may still hold subscribers, mirror the publication there
            // (§IV-A3, Fig. 3b).
            if let Some(fwd) = self.forward_new.get_mut(&p.channel) {
                fwd.old_servers.retain(|&(_, deadline)| now < deadline);
                let servers: Vec<ServerId> = fwd.old_servers.iter().map(|&(s, _)| s).collect();
                if fwd.old_servers.is_empty() {
                    self.forward_new.remove(&p.channel);
                }
                if !servers.is_empty() && p.hops < MAX_FORWARD_HOPS {
                    let mut copy = *p;
                    copy.hops += 1;
                    self.stats.forwarded += 1;
                    actions.push(DispatchAction::ForwardTo {
                        servers,
                        publication: copy,
                    });
                }
            }
        } else {
            // Wrong server (stale client plan or consistent-hash
            // fallback; §IV-A2, Fig. 3a).
            self.stats.wrong_server_publications += 1;
            actions.push(DispatchAction::NotifyWrongServer {
                publisher: p.publisher,
                channel: p.channel,
                mapping: mapping.clone(),
                plan: version,
            });
            if p.hops < MAX_FORWARD_HOPS {
                let mut copy = *p;
                copy.hops += 1;
                self.stats.forwarded += 1;
                actions.push(DispatchAction::ForwardTo {
                    servers: mapping.publish_targets(rng),
                    publication: copy,
                });
            }
        }
        actions
    }

    /// Consumes the pending `<switch>` for `channel`, if any, returning
    /// the emission action. Used by the eager-propagation ablation mode;
    /// the paper's lazy scheme instead piggybacks on the first
    /// publication via [`Dispatcher::on_client_publication`].
    pub fn take_pending_switch(&mut self, now: SimTime, channel: ChannelId) -> Vec<DispatchAction> {
        match self.switch_pending.remove(&channel) {
            Some(expires) if now < expires => {
                self.stats.switches_emitted += 1;
                vec![DispatchAction::EmitSwitch {
                    channel,
                    mapping: self.plan.resolve(channel, &self.ring),
                    plan: self.version_of(channel),
                }]
            }
            _ => Vec::new(),
        }
    }

    /// Handles a subscription arriving from a client. Returns the
    /// correct mapping (and its version) if the client chose a wrong
    /// server or holds an outdated plan entry (§IV-A4).
    pub fn on_subscribe(
        &mut self,
        channel: ChannelId,
        plan_hint: PlanId,
    ) -> Option<(ChannelMapping, PlanId)> {
        let mapping = self.plan.resolve(channel, &self.ring);
        let version = self.version_of(channel);
        if mapping.contains(self.me) && plan_hint >= version {
            None
        } else {
            self.stats.wrong_server_subscriptions += 1;
            Some((mapping, version))
        }
    }

    /// Called when the local subscriber count of `channel` reaches zero.
    /// If this server is forwarding as the *old* home of the channel, it
    /// notifies the new home so back-forwarding stops (§IV-A5).
    pub fn on_no_local_subscribers(&mut self, channel: ChannelId) -> Vec<DispatchAction> {
        let Some(state) = self.forward_old.get_mut(&channel) else {
            return Vec::new();
        };
        if state.no_subs_notified {
            return Vec::new();
        }
        state.no_subs_notified = true;
        let servers: Vec<ServerId> = self
            .plan
            .resolve(channel, &self.ring)
            .servers()
            .iter()
            .copied()
            .filter(|&s| s != self.me)
            .collect();
        if servers.is_empty() {
            return Vec::new();
        }
        vec![DispatchAction::NotifyNoMoreSubscribers { servers, channel }]
    }

    /// Handles a `NoMoreSubscribers` notification from the old server
    /// `from`: stop forwarding publications of `channel` back to it.
    pub fn on_no_more_subscribers(&mut self, from: ServerId, channel: ChannelId) {
        if let Some(state) = self.forward_new.get_mut(&channel) {
            state.old_servers.retain(|&(s, _)| s != from);
            if state.old_servers.is_empty() {
                self.forward_new.remove(&channel);
            }
        }
    }

    /// Tears down expired reconfiguration state for `channel`; called
    /// from the timer armed after [`Dispatcher::install_plan`].
    pub fn expire(&mut self, now: SimTime, channel: ChannelId) {
        if self
            .switch_pending
            .get(&channel)
            .is_some_and(|&at| now >= at)
        {
            self.switch_pending.remove(&channel);
        }
        if self
            .forward_old
            .get(&channel)
            .is_some_and(|s| now >= s.expires_at)
        {
            self.forward_old.remove(&channel);
        }
        if let Some(state) = self.forward_new.get_mut(&channel) {
            state.old_servers.retain(|&(_, deadline)| now < deadline);
            if state.old_servers.is_empty() {
                self.forward_new.remove(&channel);
            }
        }
    }

    /// `true` while this server, as a *new* member of `channel`'s
    /// mapping, still mirrors publications back to previous members.
    pub fn is_mirroring(&self, channel: ChannelId) -> bool {
        self.forward_new.contains_key(&channel)
    }

    /// `true` while this server keeps reconfiguration state for
    /// `channel`.
    pub fn is_reconfiguring(&self, channel: ChannelId) -> bool {
        self.switch_pending.contains_key(&channel)
            || self.forward_old.contains_key(&channel)
            || self.forward_new.contains_key(&channel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamoth_sim::SimDuration;

    use crate::types::MessageId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    fn setup() -> (Dispatcher, Arc<Ring>, SimRng) {
        let servers: Vec<ServerId> = (0..4).map(sid).collect();
        let ring = Arc::new(Ring::new(&servers, 32));
        let d = Dispatcher::new(
            sid(0),
            Arc::clone(&ring),
            SimDuration::from_secs(60),
            SimDuration::from_secs(5),
        );
        (d, ring, SimRng::new(3))
    }

    fn publication(ch: u64, hops: u8) -> Publication {
        Publication {
            channel: ChannelId(ch),
            id: MessageId {
                origin: NodeId::from_index(50),
                seq: 0,
            },
            payload: 100,
            sent_at: SimTime::ZERO,
            publisher: NodeId::from_index(50),
            hops,
        }
    }

    /// A channel that hashes to server 0 on the test ring.
    fn home_channel(ring: &Ring) -> ChannelId {
        (0..)
            .map(ChannelId)
            .find(|&c| ring.server_for(c) == sid(0))
            .unwrap()
    }

    /// A channel that does NOT hash to server 0.
    fn foreign_channel(ring: &Ring) -> ChannelId {
        (0..)
            .map(ChannelId)
            .find(|&c| ring.server_for(c) != sid(0))
            .unwrap()
    }

    fn install(d: &mut Dispatcher, entries: &[(ChannelId, ChannelMapping)], id: u64) {
        let mut plan = Plan::bootstrap();
        for (c, m) in entries {
            plan.set(*c, m.clone());
        }
        plan.set_id(PlanId(id));
        d.install_plan(SimTime::ZERO, Arc::new(plan));
    }

    #[test]
    fn correct_server_current_client_needs_no_action() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(0));
        assert!(actions.is_empty());
    }

    #[test]
    fn wrong_server_publication_corrects_and_forwards() {
        let (mut d, ring, mut rng) = setup();
        let c = foreign_channel(&ring);
        let correct = ring.server_for(c);
        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(0));
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            &actions[0],
            DispatchAction::NotifyWrongServer { mapping, .. }
                if *mapping == ChannelMapping::Single(correct)
        ));
        match &actions[1] {
            DispatchAction::ForwardTo {
                servers,
                publication,
            } => {
                assert_eq!(servers, &vec![correct]);
                assert_eq!(publication.hops, 1);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn outdated_hint_on_member_server_is_corrected() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        // The channel becomes all-subscribers over {me, s1} at plan 3.
        install(
            &mut d,
            &[(c, ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]))],
            3,
        );
        // A client publishing with hint 0 must be informed even though
        // this server is a valid replica.
        let actions = d.on_client_publication(
            SimTime::from_secs(1),
            &mut rng,
            &publication(c.0, 0),
            PlanId(0),
        );
        assert!(actions.iter().any(|a| matches!(
            a,
            DispatchAction::NotifyWrongServer {
                plan: PlanId(3),
                ..
            }
        )));
        // No forward needed for all-subscribers (one member suffices).
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DispatchAction::ForwardTo { .. })));
        // A current client is left alone (after the pending switch fired).
        let actions = d.on_client_publication(
            SimTime::from_secs(1),
            &mut rng,
            &publication(c.0, 0),
            PlanId(3),
        );
        assert!(actions.is_empty(), "{actions:?}");
    }

    #[test]
    fn outdated_hint_on_all_publishers_member_forwards_to_other_members() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        install(
            &mut d,
            &[(
                c,
                ChannelMapping::AllPublishers(vec![sid(0), sid(1), sid(2)]),
            )],
            2,
        );
        // Drain the pending switch with one publication.
        let _ = d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(2));
        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(0));
        let fwd = actions
            .iter()
            .find_map(|a| match a {
                DispatchAction::ForwardTo { servers, .. } => Some(servers.clone()),
                _ => None,
            })
            .expect("must forward to the other members");
        assert_eq!(fwd, vec![sid(1), sid(2)]);
    }

    #[test]
    fn switch_is_emitted_once_after_migration() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        install(&mut d, &[(c, ChannelMapping::Single(sid(1)))], 1);
        assert!(d.is_reconfiguring(c));

        let first =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(0));
        assert!(first
            .iter()
            .any(|a| matches!(a, DispatchAction::EmitSwitch { .. })));
        let second =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(0));
        assert!(!second
            .iter()
            .any(|a| matches!(a, DispatchAction::EmitSwitch { .. })));
        assert_eq!(d.stats().switches_emitted, 1);
    }

    #[test]
    fn take_pending_switch_consumes_the_obligation() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        install(&mut d, &[(c, ChannelMapping::Single(sid(1)))], 1);
        // Eager mode: the switch can be taken immediately…
        let actions = d.take_pending_switch(SimTime::ZERO, c);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            DispatchAction::EmitSwitch { mapping, plan, .. }
                if *mapping == ChannelMapping::Single(sid(1)) && *plan == PlanId(1)
        ));
        // …and is then consumed: neither a second take nor the first
        // publication re-emits it.
        assert!(d.take_pending_switch(SimTime::ZERO, c).is_empty());
        let on_pub =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(1));
        assert!(!on_pub
            .iter()
            .any(|a| matches!(a, DispatchAction::EmitSwitch { .. })));
        // Expired obligations are not emitted either.
        install(&mut d, &[(c, ChannelMapping::Single(sid(2)))], 2);
        assert!(d.take_pending_switch(SimTime::from_secs(120), c).is_empty());
    }

    #[test]
    fn switch_fires_even_when_server_stays_member() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        // Replication change: Single(me) → AllSubscribers([me, s2]).
        install(
            &mut d,
            &[(c, ChannelMapping::AllSubscribers(vec![sid(0), sid(2)]))],
            1,
        );
        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(1));
        assert!(actions
            .iter()
            .any(|a| matches!(a, DispatchAction::EmitSwitch { .. })));
    }

    #[test]
    fn new_home_forwards_back_to_old_until_notified() {
        let (mut d, ring, mut rng) = setup();
        let c = foreign_channel(&ring);
        let old_home = ring.server_for(c);
        install(&mut d, &[(c, ChannelMapping::Single(sid(0)))], 1);

        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(1));
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            DispatchAction::ForwardTo { servers, .. } if servers == &vec![old_home]
        ));

        d.on_no_more_subscribers(old_home, c);
        let after =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(1));
        assert!(after.is_empty());
        assert!(!d.is_reconfiguring(c));
    }

    #[test]
    fn old_home_notifies_when_subscribers_reach_zero() {
        let (mut d, ring, _) = setup();
        let c = home_channel(&ring);
        install(&mut d, &[(c, ChannelMapping::Single(sid(2)))], 1);

        let actions = d.on_no_local_subscribers(c);
        assert_eq!(
            actions,
            vec![DispatchAction::NotifyNoMoreSubscribers {
                servers: vec![sid(2)],
                channel: c
            }]
        );
        // Only notified once.
        assert!(d.on_no_local_subscribers(c).is_empty());
        // Channels without forwarding state produce nothing.
        assert!(d.on_no_local_subscribers(ChannelId(u64::MAX)).is_empty());
    }

    #[test]
    fn wrong_subscription_returns_correct_mapping_and_version() {
        let (mut d, ring, _) = setup();
        let foreign = foreign_channel(&ring);
        let home = home_channel(&ring);
        assert_eq!(
            d.on_subscribe(foreign, PlanId(0)),
            Some((ChannelMapping::Single(ring.server_for(foreign)), PlanId(0)))
        );
        assert_eq!(d.on_subscribe(home, PlanId(0)), None);
        // After a replication change the subscriber with an old hint is
        // informed even on a member server.
        install(
            &mut d,
            &[(home, ChannelMapping::AllPublishers(vec![sid(0), sid(1)]))],
            5,
        );
        assert!(d.on_subscribe(home, PlanId(4)).is_some());
        assert_eq!(d.on_subscribe(home, PlanId(5)), None);
    }

    #[test]
    fn forwarding_state_expires_after_ttl() {
        let (mut d, ring, mut rng) = setup();
        let c = home_channel(&ring);
        install(&mut d, &[(c, ChannelMapping::Single(sid(1)))], 1);
        assert!(d.is_reconfiguring(c));

        d.expire(SimTime::from_secs(30), c);
        assert!(d.is_reconfiguring(c));
        d.expire(SimTime::from_secs(61), c);
        assert!(!d.is_reconfiguring(c));
        // After expiry no more switches are produced (the stale entry is
        // gone), but wrong-server redirection still works via the plan.
        let actions = d.on_client_publication(
            SimTime::from_secs(61),
            &mut rng,
            &publication(c.0, 0),
            PlanId(1),
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, DispatchAction::NotifyWrongServer { .. })));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DispatchAction::EmitSwitch { .. })));
    }

    #[test]
    fn hop_limit_stops_forwarding() {
        let (mut d, ring, mut rng) = setup();
        let c = foreign_channel(&ring);
        let actions = d.on_client_publication(
            SimTime::ZERO,
            &mut rng,
            &publication(c.0, MAX_FORWARD_HOPS),
            PlanId(0),
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, DispatchAction::NotifyWrongServer { .. })));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DispatchAction::ForwardTo { .. })));
    }

    #[test]
    fn expansion_mirrors_to_staying_members_for_a_bounded_window() {
        let (mut d, ring, mut rng) = setup();
        let c = foreign_channel(&ring);
        let old_home = ring.server_for(c);
        // c becomes all-subscribers on {us, old_home}: old_home stays a
        // member, but subscribers may not have subscribed to us yet —
        // we must mirror publications back for the mirror window.
        install(
            &mut d,
            &[(c, ChannelMapping::AllSubscribers(vec![sid(0), old_home]))],
            1,
        );
        assert!(d.is_reconfiguring(c));
        let actions =
            d.on_client_publication(SimTime::ZERO, &mut rng, &publication(c.0, 0), PlanId(1));
        assert!(actions.iter().any(|a| matches!(
            a,
            DispatchAction::ForwardTo { servers, .. } if servers == &vec![old_home]
        )));
        // After the mirror window (5 s in the test setup) mirroring
        // stops on its own.
        let later = SimTime::from_secs(60);
        let actions = d.on_client_publication(later, &mut rng, &publication(c.0, 0), PlanId(1));
        assert!(!actions
            .iter()
            .any(|a| matches!(a, DispatchAction::ForwardTo { .. })));
        assert!(!d.is_reconfiguring(c));
    }
}
