//! The Local Load Analyzer (§III-A).
//!
//! One [`Lla`] runs collocated with every pub/sub server. It observes
//! every publication and delivery processed by the local server (the
//! paper registers it as an "observer" on every channel; here the server
//! node calls the `note_*` hooks, which is equivalent and free), and at
//! every time unit `t` produces an [`LlaReport`] combining:
//!
//! * per-channel counters (publications, deliveries, bytes, distinct
//!   publishers, current subscribers), and
//! * the interface-level measured outgoing bytes, read from the
//!   transport's NIC accounting — the `M_i` of the load-ratio formula.

use std::collections::{HashMap, HashSet};

use dynamoth_pubsub::balance::CapacityEstimator;
use dynamoth_sim::NodeId;

use crate::metrics::{ChannelTick, LlaReport};
use crate::types::{ChannelId, ServerId};

#[derive(Debug, Default)]
struct Acc {
    publications: u64,
    deliveries: u64,
    bytes_in: u64,
    bytes_out: u64,
    publishers: HashSet<NodeId>,
}

/// Per-server load analyzer accumulating one tick of metrics at a time.
#[derive(Debug)]
pub struct Lla {
    server: ServerId,
    /// Observed-capacity estimate of `T_i`: the paper defines capacity
    /// as the *measured maximum* outgoing throughput, so the advertised
    /// bandwidth is only a floor (see
    /// [`CapacityEstimator`]).
    capacity: CapacityEstimator,
    tick: u64,
    acc: HashMap<ChannelId, Acc>,
    last_egress_total: u64,
    last_cpu_total_micros: u64,
}

impl Lla {
    /// Creates an analyzer for `server` with advertised capacity `T_i`
    /// (bytes per tick). The advertised value is a floor: when the
    /// server demonstrates a higher sustained egress, the reported
    /// capacity follows the measurement (with decay), so `LR_i` stops
    /// lying when provisioned capacity ≠ real capacity.
    pub fn new(server: ServerId, capacity_bytes_per_tick: f64) -> Self {
        Lla {
            server,
            capacity: CapacityEstimator::new(capacity_bytes_per_tick),
            tick: 0,
            acc: HashMap::new(),
            last_egress_total: 0,
            last_cpu_total_micros: 0,
        }
    }

    /// Records a publication received on `channel` from `publisher`.
    pub fn note_publication(&mut self, channel: ChannelId, wire_size: u32, publisher: NodeId) {
        let a = self.acc.entry(channel).or_default();
        a.publications += 1;
        a.bytes_in += wire_size as u64;
        a.publishers.insert(publisher);
    }

    /// Records `count` outgoing deliveries of `wire_size` bytes each on
    /// `channel`.
    pub fn note_deliveries(&mut self, channel: ChannelId, wire_size: u32, count: u64) {
        let a = self.acc.entry(channel).or_default();
        a.deliveries += count;
        a.bytes_out += wire_size as u64 * count;
    }

    /// Closes the current time unit and produces the aggregate report.
    ///
    /// * `egress_total` — the transport's cumulative NIC byte counter
    ///   for this node; the report contains the delta from the previous
    ///   tick.
    /// * `subscriber_counts` — current per-channel subscriber counts
    ///   from the local pub/sub server (channels with subscribers but no
    ///   traffic this tick are still reported, so the balancer sees
    ///   them).
    /// * `cpu_total` — the server's cumulative CPU busy time; the report
    ///   carries the delta from the previous tick.
    pub fn end_tick(
        &mut self,
        egress_total: u64,
        cpu_total: dynamoth_sim::SimDuration,
        subscriber_counts: impl IntoIterator<Item = (ChannelId, u32)>,
    ) -> LlaReport {
        let mut channels: HashMap<ChannelId, ChannelTick> = self
            .acc
            .drain()
            .map(|(c, a)| {
                (
                    c,
                    ChannelTick {
                        publications: a.publications,
                        deliveries: a.deliveries,
                        bytes_in: a.bytes_in,
                        bytes_out: a.bytes_out,
                        publishers: a.publishers.len() as u32,
                        subscribers: 0,
                    },
                )
            })
            .collect();
        for (c, subs) in subscriber_counts {
            channels.entry(c).or_default().subscribers = subs;
        }
        let measured = egress_total.saturating_sub(self.last_egress_total);
        self.last_egress_total = egress_total;
        self.capacity.observe(measured as f64);
        let cpu_total_micros = cpu_total.as_micros();
        let cpu_busy_micros = cpu_total_micros.saturating_sub(self.last_cpu_total_micros);
        self.last_cpu_total_micros = cpu_total_micros;
        let tick = self.tick;
        self.tick += 1;
        let mut channels: Vec<(ChannelId, ChannelTick)> = channels.into_iter().collect();
        channels.sort_by_key(|&(c, _)| c); // deterministic report order
        LlaReport {
            server: self.server,
            tick,
            measured_egress_bytes: measured,
            capacity_bytes: self.capacity.capacity(),
            cpu_busy_micros,
            channels,
        }
    }

    /// The server this analyzer monitors.
    pub fn server(&self) -> ServerId {
        self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lla() -> Lla {
        Lla::new(ServerId(NodeId::from_index(0)), 1_000.0)
    }

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn tick_report_contains_all_metrics() {
        let mut lla = lla();
        lla.note_publication(ChannelId(1), 100, n(1));
        lla.note_publication(ChannelId(1), 100, n(2));
        lla.note_publication(ChannelId(1), 100, n(1)); // repeat publisher
        lla.note_deliveries(ChannelId(1), 100, 5);
        let report = lla.end_tick(
            450,
            dynamoth_sim::SimDuration::from_micros(300),
            [(ChannelId(1), 5)],
        );
        assert_eq!(report.tick, 0);
        assert_eq!(report.measured_egress_bytes, 450);
        assert_eq!(report.cpu_busy_micros, 300);
        let (_, t) = report.channels[0];
        assert_eq!(t.publications, 3);
        assert_eq!(t.publishers, 2);
        assert_eq!(t.deliveries, 5);
        assert_eq!(t.bytes_out, 500);
        assert_eq!(t.bytes_in, 300);
        assert_eq!(t.subscribers, 5);
    }

    #[test]
    fn counters_reset_between_ticks() {
        let mut lla = lla();
        lla.note_publication(ChannelId(1), 100, n(1));
        let _ = lla.end_tick(100, dynamoth_sim::SimDuration::from_micros(100), []);
        let report = lla.end_tick(250, dynamoth_sim::SimDuration::from_micros(180), []);
        assert_eq!(report.tick, 1);
        // Egress and CPU are deltas, publication counters reset.
        assert_eq!(report.measured_egress_bytes, 150);
        assert_eq!(report.cpu_busy_micros, 80);
        assert!(report.channels.is_empty());
    }

    #[test]
    fn idle_channels_with_subscribers_are_reported() {
        let mut lla = lla();
        let report = lla.end_tick(0, dynamoth_sim::SimDuration::ZERO, [(ChannelId(9), 3)]);
        assert_eq!(report.channels.len(), 1);
        assert_eq!(report.channels[0].1.subscribers, 3);
        assert_eq!(report.channels[0].1.publications, 0);
    }

    #[test]
    fn capacity_follows_sustained_maximum() {
        // Provisioned floor is 1000 bytes/tick, but the server sustains
        // 1500: `T_i` must follow the measurement so the load ratio
        // reads "at capacity" instead of 1.5 — but only once the level
        // has held for the estimator's window. The first hot ticks still
        // report LR > 1, which is what the adaptive-threshold controller
        // keys off during near-failure episodes.
        let mut lla = lla();
        let r = lla.end_tick(1_500, dynamoth_sim::SimDuration::ZERO, []);
        assert!((r.capacity_bytes - 1_000.0).abs() < 1e-9);
        assert!((r.load_ratio() - 1.5).abs() < 1e-9);
        let _ = lla.end_tick(3_000, dynamoth_sim::SimDuration::ZERO, []);
        let r3 = lla.end_tick(4_500, dynamoth_sim::SimDuration::ZERO, []);
        assert!((r3.capacity_bytes - 1_500.0).abs() < 1e-9);
        assert!(r3.load_ratio() <= 1.0 + 1e-9);
        // A quieter tick decays the demonstrated maximum without ever
        // dropping below the provisioned floor.
        let r4 = lla.end_tick(4_600, dynamoth_sim::SimDuration::ZERO, []);
        assert!(r4.capacity_bytes < 1_500.0);
        assert!(r4.capacity_bytes >= 1_000.0);
    }

    #[test]
    fn capacity_stays_at_floor_under_light_load() {
        let mut lla = lla();
        let r = lla.end_tick(400, dynamoth_sim::SimDuration::ZERO, []);
        assert!((r.capacity_bytes - 1_000.0).abs() < 1e-9);
        assert!((r.load_ratio() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn report_order_is_deterministic() {
        let mut lla = lla();
        lla.note_publication(ChannelId(5), 10, n(1));
        lla.note_publication(ChannelId(2), 10, n(1));
        lla.note_publication(ChannelId(9), 10, n(1));
        let report = lla.end_tick(0, dynamoth_sim::SimDuration::ZERO, []);
        let order: Vec<u64> = report.channels.iter().map(|(c, _)| c.0).collect();
        assert_eq!(order, vec![2, 5, 9]);
    }
}
