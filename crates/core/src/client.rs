//! The Dynamoth client library (§II-A, §II-C, §IV).
//!
//! [`DynamothClient`] exposes the standard pub/sub API (`subscribe`,
//! `unsubscribe`, `publish`) and hides all middleware mechanics:
//!
//! * a **local plan** `P(C)` containing only the channels the client
//!   actually uses, updated lazily from server notifications
//!   ([`Msg::WrongServer`], [`Msg::SubscriptionMoved`], [`Msg::Switch`]);
//! * **consistent hashing fallback** for channels with no plan entry;
//! * **replication awareness** — publications and subscriptions are
//!   routed per the channel's [`ChannelMapping`];
//! * **duplicate suppression** with globally unique message ids, needed
//!   because a subscriber may briefly be subscribed on both the old and
//!   the new server during reconfiguration;
//! * **plan-entry timers**: entries unused for `plan_entry_ttl` are
//!   dropped, so a later use falls back to consistent hashing, exactly
//!   mirroring the dispatcher-side forwarding timeout (§IV-A5).
//!
//! The struct is transport-agnostic: every method returns the list of
//! `(destination, message)` pairs to put on the wire, which the embedding
//! actor sends. This makes the protocol logic directly unit-testable.

use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::Arc;

#[cfg(test)]
use dynamoth_sim::SimDuration;
use dynamoth_sim::{NodeId, SimRng, SimTime};

use crate::config::DynamothConfig;
use crate::hashing::Ring;
use crate::message::{Msg, Publication};
use crate::plan::ChannelMapping;
use crate::types::{ChannelId, MessageId, PlanId, ServerId};

/// An application-visible event produced by the client library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A (non-duplicate) publication was delivered.
    Delivery(Publication),
    /// A server killed our connection (output-buffer overflow); the
    /// listed subscriptions were lost and are *not* automatically
    /// restored.
    SubscriptionsLost {
        /// The server that dropped us.
        server: ServerId,
        /// Channels whose subscriptions were lost on that server.
        channels: Vec<ChannelId>,
    },
}

/// Counters describing the client's protocol activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Publications delivered to the application.
    pub deliveries: u64,
    /// `DeliverBatch` wire messages unpacked (each carries ≥ 2
    /// publications; singletons arrive as plain `Deliver`).
    pub batches_received: u64,
    /// Duplicate deliveries suppressed.
    pub duplicates_suppressed: u64,
    /// `WrongServer` notices received.
    pub wrong_server_notices: u64,
    /// `Switch` / `SubscriptionMoved` notifications acted upon.
    pub subscription_moves: u64,
    /// Publications sent (counting one per publish call, not per
    /// replica).
    pub publishes: u64,
}

#[derive(Debug, Clone)]
struct PlanEntry {
    mapping: ChannelMapping,
    last_used: SimTime,
    /// Plan version the mapping was learned under; stamped onto
    /// publications and subscriptions so dispatchers can detect
    /// outdated entries.
    version: PlanId,
}

#[derive(Debug, Default)]
struct Dedup {
    seen: HashSet<MessageId>,
    order: VecDeque<MessageId>,
}

impl Dedup {
    /// Returns `true` if `id` is new (not a duplicate), recording it.
    fn insert(&mut self, id: MessageId, cap: usize) -> bool {
        if !self.seen.insert(id) {
            return false;
        }
        self.order.push_back(id);
        while self.order.len() > cap {
            let old = self.order.pop_front().expect("non-empty");
            self.seen.remove(&old);
        }
        true
    }
}

/// The client-side middleware state machine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use dynamoth_core::{ChannelId, DynamothClient, DynamothConfig, Ring, ServerId};
/// use dynamoth_sim::{NodeId, SimRng, SimTime};
///
/// let ring = Arc::new(Ring::new(&[ServerId(NodeId::from_index(0))], 16));
/// let mut client = DynamothClient::new(
///     NodeId::from_index(5),
///     ring,
///     Arc::new(DynamothConfig::default()),
/// );
/// let mut rng = SimRng::new(1);
/// let out = client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
/// assert_eq!(out.len(), 1); // one Subscribe to the hash-determined server
/// ```
#[derive(Debug)]
pub struct DynamothClient {
    node: NodeId,
    ring: Arc<Ring>,
    cfg: Arc<DynamothConfig>,
    plan: HashMap<ChannelId, PlanEntry>,
    subs: HashMap<ChannelId, BTreeSet<ServerId>>,
    /// Old subscriptions kept alive for a grace period after a move so
    /// no publication is lost while the new subscription is in flight.
    deferred_unsubs: Vec<(SimTime, ServerId, ChannelId)>,
    /// Last instant each subscribed server was heard from (deliveries,
    /// pongs, corrections); drives the reliability extension's
    /// client-side failover.
    last_heard: HashMap<ServerId, SimTime>,
    /// Last instant we pinged each server.
    last_ping: HashMap<ServerId, SimTime>,
    /// Servers declared dead, routed around until the blacklist expires.
    dead_servers: HashMap<ServerId, SimTime>,
    /// Servers we recently published to (publishers get no deliveries,
    /// so liveness must watch these explicitly).
    last_published: HashMap<ServerId, SimTime>,
    dedup: Dedup,
    next_seq: u64,
    stats: ClientStats,
}

impl DynamothClient {
    /// Creates a client for the node `node`, given the bootstrap
    /// consistent-hashing ring and the middleware configuration.
    pub fn new(node: NodeId, ring: Arc<Ring>, cfg: Arc<DynamothConfig>) -> Self {
        DynamothClient {
            node,
            ring,
            cfg,
            plan: HashMap::new(),
            subs: HashMap::new(),
            deferred_unsubs: Vec::new(),
            last_heard: HashMap::new(),
            last_ping: HashMap::new(),
            dead_servers: HashMap::new(),
            last_published: HashMap::new(),
            dedup: Dedup::default(),
            next_seq: 0,
            stats: ClientStats::default(),
        }
    }

    /// The node this client runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The middleware configuration this client was built with.
    pub fn config(&self) -> &DynamothConfig {
        &self.cfg
    }

    /// Protocol counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Channels the client currently wants to be subscribed to.
    pub fn subscriptions(&self) -> impl Iterator<Item = ChannelId> + '_ {
        self.subs.keys().copied()
    }

    /// `true` if the client holds a subscription to `channel`.
    pub fn is_subscribed(&self, channel: ChannelId) -> bool {
        self.subs.contains_key(&channel)
    }

    /// The servers currently holding our subscription to `channel`.
    pub fn subscription_servers(&self, channel: ChannelId) -> Vec<ServerId> {
        self.subs
            .get(&channel)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Number of local-plan entries (should stay small: only channels
    /// the client uses, §II-C).
    pub fn plan_len(&self) -> usize {
        self.plan.len()
    }

    fn resolve(&self, channel: ChannelId) -> (ChannelMapping, PlanId) {
        if let Some(e) = self.plan.get(&channel) {
            // Route around blacklisted servers: keep the live members of
            // a replicated mapping, otherwise fall back to the ring.
            let live: Vec<ServerId> = e
                .mapping
                .servers()
                .iter()
                .copied()
                .filter(|s| !self.dead_servers.contains_key(s))
                .collect();
            if live.len() == e.mapping.replication_factor() {
                return (e.mapping.clone(), e.version);
            }
            match (&e.mapping, live.len()) {
                (_, 0) => {} // fall through to the ring
                (ChannelMapping::Single(_), _) => unreachable!("live ⊆ {{single}}"),
                (ChannelMapping::AllSubscribers(_), 1) | (ChannelMapping::AllPublishers(_), 1) => {
                    return (ChannelMapping::Single(live[0]), e.version)
                }
                (ChannelMapping::AllSubscribers(_), _) => {
                    return (ChannelMapping::AllSubscribers(live), e.version)
                }
                (ChannelMapping::AllPublishers(_), _) => {
                    return (ChannelMapping::AllPublishers(live), e.version)
                }
            }
        }
        let dead: Vec<ServerId> = self.dead_servers.keys().copied().collect();
        let home = self
            .ring
            .server_for_excluding(channel, &dead)
            .unwrap_or_else(|| self.ring.server_for(channel));
        (ChannelMapping::Single(home), PlanId(0))
    }

    fn touch(&mut self, now: SimTime, channel: ChannelId) {
        if let Some(e) = self.plan.get_mut(&channel) {
            e.last_used = now;
        }
    }

    /// Records a server-provided mapping. Returns `None` for notices
    /// older than what we already know (stale corrections can race
    /// switches), `Some(true)` when the notice carries *new* information
    /// (version advanced) and `Some(false)` for a same-version
    /// duplicate.
    fn learn(
        &mut self,
        now: SimTime,
        channel: ChannelId,
        mapping: ChannelMapping,
        version: PlanId,
    ) -> Option<bool> {
        let advanced = match self.plan.get(&channel) {
            Some(existing) if version < existing.version => return None,
            Some(existing) => version > existing.version,
            None => true,
        };
        self.plan.insert(
            channel,
            PlanEntry {
                mapping,
                last_used: now,
                version,
            },
        );
        Some(advanced)
    }

    /// Subscribes to `channel`, returning the wire messages to send.
    pub fn subscribe(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        channel: ChannelId,
    ) -> Vec<(NodeId, Msg)> {
        let (mapping, plan_hint) = self.resolve(channel);
        self.touch(now, channel);
        let targets = mapping.subscribe_targets(rng);
        let current = self.subs.entry(channel).or_default();
        let mut out = Vec::new();
        for s in targets {
            if current.insert(s) {
                out.push((s.node(), Msg::Subscribe { channel, plan_hint }));
            }
        }
        for (to, _) in &out {
            self.last_heard.entry(ServerId(*to)).or_insert(now);
        }
        out
    }

    /// Unsubscribes from `channel` on every server holding the
    /// subscription, including servers still in their post-move grace
    /// period.
    pub fn unsubscribe(&mut self, _now: SimTime, channel: ChannelId) -> Vec<(NodeId, Msg)> {
        let mut servers: BTreeSet<ServerId> = self.subs.remove(&channel).unwrap_or_default();
        self.deferred_unsubs.retain(|&(_, s, c)| {
            if c == channel {
                servers.insert(s);
                false
            } else {
                true
            }
        });
        servers
            .into_iter()
            .map(|s| (s.node(), Msg::Unsubscribe { channel }))
            .collect()
    }

    /// Emits the unsubscribes whose grace period has elapsed. Actors
    /// should call this from periodic timers (the client library also
    /// polls it on every incoming message).
    pub fn poll_deferred(&mut self, now: SimTime) -> Vec<(NodeId, Msg)> {
        let mut out = Vec::new();
        let subs = &self.subs;
        self.deferred_unsubs.retain(|&(due, server, channel)| {
            if subs.get(&channel).is_some_and(|set| set.contains(&server)) {
                return false; // re-desired in the meantime: keep it
            }
            if due <= now {
                out.push((server.node(), Msg::Unsubscribe { channel }));
                false
            } else {
                true
            }
        });
        out
    }

    /// Publishes `payload` bytes on `channel`. Returns the message id
    /// (for correlating the echo) and the wire messages — one per target
    /// server as dictated by the channel's replication mode.
    pub fn publish(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        channel: ChannelId,
        payload: u32,
    ) -> (MessageId, Vec<(NodeId, Msg)>) {
        let id = MessageId {
            origin: self.node,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.stats.publishes += 1;
        let (mapping, plan_hint) = self.resolve(channel);
        self.touch(now, channel);
        let publication = Publication {
            channel,
            id,
            payload,
            sent_at: now,
            publisher: self.node,
            hops: 0,
        };
        let out: Vec<(NodeId, Msg)> = mapping
            .publish_targets(rng)
            .into_iter()
            .map(|s| {
                (
                    s.node(),
                    Msg::Publish {
                        publication,
                        plan_hint,
                    },
                )
            })
            .collect();
        for (to, _) in &out {
            let server = ServerId(*to);
            self.last_published.insert(server, now);
            self.last_heard.entry(server).or_insert(now);
        }
        (id, out)
    }

    /// Processes an incoming message from server node `from`; returns
    /// application events and any wire messages triggered (subscription
    /// moves).
    pub fn on_message(
        &mut self,
        now: SimTime,
        rng: &mut SimRng,
        from: NodeId,
        msg: Msg,
    ) -> (Vec<ClientEvent>, Vec<(NodeId, Msg)>) {
        self.last_heard.insert(ServerId(from), now);
        let mut events = Vec::new();
        let mut out = self.poll_deferred(now);
        match msg {
            Msg::Deliver(p) => {
                self.touch(now, p.channel);
                if self.dedup.insert(p.id, self.cfg.dedup_capacity) {
                    self.stats.deliveries += 1;
                    events.push(ClientEvent::Delivery(p));
                } else {
                    self.stats.duplicates_suppressed += 1;
                }
            }
            // A batch is unpacked entry by entry through the same dedup
            // window as single deliveries, so duplicate suppression
            // during reconfiguration behaves identically whether the
            // server batched or not. Each entry keeps its own `sent_at`,
            // so per-publication latency accounting is unaffected.
            Msg::DeliverBatch(batch) => {
                self.stats.batches_received += 1;
                for p in batch {
                    self.touch(now, p.channel);
                    if self.dedup.insert(p.id, self.cfg.dedup_capacity) {
                        self.stats.deliveries += 1;
                        events.push(ClientEvent::Delivery(p));
                    } else {
                        self.stats.duplicates_suppressed += 1;
                    }
                }
            }
            Msg::WrongServer {
                channel,
                mapping,
                plan,
            } => {
                self.stats.wrong_server_notices += 1;
                // A publisher that is also subscribed must keep its
                // subscription consistent with the new mapping too.
                if let Some(advanced) = self.learn(now, channel, mapping.clone(), plan) {
                    out.extend(self.retarget_subscription(now, rng, channel, &mapping, advanced));
                }
            }
            Msg::SubscriptionMoved {
                channel,
                mapping,
                plan,
            }
            | Msg::Switch {
                channel,
                mapping,
                plan,
            } => {
                self.stats.subscription_moves += 1;
                if let Some(advanced) = self.learn(now, channel, mapping.clone(), plan) {
                    out.extend(self.retarget_subscription(now, rng, channel, &mapping, advanced));
                }
            }
            Msg::Disconnected { channels } => {
                let server = ServerId(from);
                let mut lost = Vec::new();
                for ch in channels {
                    if let Some(set) = self.subs.get_mut(&ch) {
                        if set.remove(&server) {
                            lost.push(ch);
                        }
                        if set.is_empty() {
                            self.subs.remove(&ch);
                        }
                    }
                }
                if !lost.is_empty() {
                    events.push(ClientEvent::SubscriptionsLost {
                        server,
                        channels: lost,
                    });
                }
            }
            // Clients ignore infrastructure-plane traffic.
            _ => {}
        }
        (events, out)
    }

    /// Moves our subscription to `channel` onto the servers dictated by
    /// `mapping`: subscribe to missing targets first, then unsubscribe
    /// from servers no longer used (§IV-A4).
    ///
    /// When `rebalance` is `false` (a same-version duplicate notice),
    /// a subscription that already satisfies the mapping is left alone;
    /// when it is `true` (the mapping really changed) the target servers
    /// are re-drawn so that the subscriber population spreads over the
    /// new member set.
    fn retarget_subscription(
        &mut self,
        _now: SimTime,
        rng: &mut SimRng,
        channel: ChannelId,
        mapping: &ChannelMapping,
        rebalance: bool,
    ) -> Vec<(NodeId, Msg)> {
        let Some(current) = self.subs.get(&channel).cloned() else {
            return Vec::new(); // not subscribed: nothing to move
        };
        if !rebalance {
            // Idempotence: duplicate notices must not cause a random
            // re-roll and churn.
            let satisfied = match mapping {
                ChannelMapping::Single(s) => current.len() == 1 && current.contains(s),
                ChannelMapping::AllSubscribers(v) => {
                    current.len() == v.len() && v.iter().all(|s| current.contains(s))
                }
                ChannelMapping::AllPublishers(v) => {
                    current.len() == 1 && current.iter().all(|s| v.contains(s))
                }
            };
            if satisfied {
                return Vec::new();
            }
        }
        let desired: BTreeSet<ServerId> = mapping.subscribe_targets(rng).into_iter().collect();
        let plan_hint = self
            .plan
            .get(&channel)
            .map(|e| e.version)
            .unwrap_or(PlanId(0));
        let mut out = Vec::new();
        for &s in desired.difference(&current) {
            out.push((s.node(), Msg::Subscribe { channel, plan_hint }));
        }
        // Old servers are released only after the grace period so the
        // new subscription is live before the old one dies; duplicate
        // deliveries in the overlap are suppressed by message ids.
        let due = _now + self.cfg.unsubscribe_grace;
        for &s in current.difference(&desired) {
            if !self
                .deferred_unsubs
                .iter()
                .any(|&(_, ds, dc)| ds == s && dc == channel)
            {
                self.deferred_unsubs.push((due, s, channel));
            }
        }
        self.subs.insert(channel, desired);
        out
    }

    /// Liveness maintenance for the reliability extension: pings the
    /// servers holding our subscriptions, and fails over subscriptions
    /// held on servers that have been silent past the failover timeout —
    /// the plan entries of affected channels are dropped so resolution
    /// falls back to consistent hashing, whose home dispatcher redirects
    /// us to the failover plan. Call from a periodic timer.
    pub fn liveness_actions(&mut self, now: SimTime, rng: &mut SimRng) -> Vec<(NodeId, Msg)> {
        let mut out = self.poll_deferred(now);
        if !self.cfg.fault_tolerance {
            return out;
        }
        self.dead_servers.retain(|_, &mut until| now < until);
        // Monitor servers holding our subscriptions plus servers we
        // published to recently (fire-and-forget publishers otherwise
        // never notice a dead broker).
        let publish_window = self.cfg.client_failover_timeout * 2;
        self.last_published
            .retain(|_, &mut at| now.saturating_since(at) <= publish_window);
        let mut subscribed: BTreeSet<ServerId> = self.subs.values().flatten().copied().collect();
        subscribed.extend(self.last_published.keys().copied());
        let mut dead: Vec<ServerId> = Vec::new();
        for &server in &subscribed {
            let heard = *self.last_heard.entry(server).or_insert(now);
            let silent = now.saturating_since(heard);
            if silent > self.cfg.client_failover_timeout {
                dead.push(server);
            } else if silent >= self.cfg.client_ping_interval {
                let pinged = self
                    .last_ping
                    .get(&server)
                    .copied()
                    .unwrap_or(SimTime::ZERO);
                if now.saturating_since(pinged) >= self.cfg.client_ping_interval {
                    self.last_ping.insert(server, now);
                    out.push((server.node(), Msg::Ping));
                }
            }
        }
        for server in dead {
            self.last_heard.remove(&server);
            self.last_ping.remove(&server);
            self.last_published.remove(&server);
            self.dead_servers
                .insert(server, now + self.cfg.dead_server_blacklist);
            // Forget every plan entry involving the dead server so the
            // next use re-resolves around it.
            self.plan.retain(|_, e| !e.mapping.contains(server));
            let affected: Vec<ChannelId> = self
                .subs
                .iter()
                .filter(|(_, servers)| servers.contains(&server))
                .map(|(&c, _)| c)
                .collect();
            for channel in affected {
                // Drop the dead subscription and re-subscribe from
                // scratch through the (blacklist-aware) resolution.
                if let Some(set) = self.subs.get_mut(&channel) {
                    set.remove(&server);
                }
                self.deferred_unsubs
                    .retain(|&(_, s, c)| !(s == server && c == channel));
                out.extend(self.subscribe(now, rng, channel));
            }
        }
        out
    }

    /// Drops plan entries that have not been used for
    /// `plan_entry_ttl` and that the client is not subscribed to
    /// (§IV-A5). Call periodically.
    pub fn expire_plan_entries(&mut self, now: SimTime) {
        let ttl = self.cfg.plan_entry_ttl;
        let subs = &self.subs;
        self.plan
            .retain(|c, e| subs.contains_key(c) || now.saturating_since(e.last_used) < ttl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    fn setup(n_servers: usize) -> (DynamothClient, SimRng, Arc<Ring>) {
        let servers: Vec<ServerId> = (0..n_servers).map(sid).collect();
        let ring = Arc::new(Ring::new(&servers, 32));
        let client = DynamothClient::new(
            NodeId::from_index(100),
            Arc::clone(&ring),
            Arc::new(DynamothConfig {
                // The liveness/failover unit tests exercise the
                // reliability extension.
                fault_tolerance: true,
                ..Default::default()
            }),
        );
        (client, SimRng::new(9), ring)
    }

    fn publication(ch: u64, seq: u64) -> Publication {
        Publication {
            channel: ChannelId(ch),
            id: MessageId {
                origin: NodeId::from_index(7),
                seq,
            },
            payload: 100,
            sent_at: SimTime::ZERO,
            publisher: NodeId::from_index(7),
            hops: 0,
        }
    }

    #[test]
    fn subscribe_uses_consistent_hashing_without_plan() {
        let (mut client, mut rng, ring) = setup(4);
        let out = client.subscribe(SimTime::ZERO, &mut rng, ChannelId(3));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, ring.server_for(ChannelId(3)).node());
        assert!(matches!(
            out[0].1,
            Msg::Subscribe {
                channel: ChannelId(3),
                ..
            }
        ));
        assert!(client.is_subscribed(ChannelId(3)));
    }

    #[test]
    fn duplicate_subscribe_sends_nothing() {
        let (mut client, mut rng, _) = setup(2);
        let first = client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        assert_eq!(first.len(), 1);
        let second = client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        assert!(second.is_empty());
    }

    #[test]
    fn publish_goes_to_hash_server_then_learned_server() {
        let (mut client, mut rng, ring) = setup(4);
        let (_, out) = client.publish(SimTime::ZERO, &mut rng, ChannelId(5), 200);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, ring.server_for(ChannelId(5)).node());

        // Server corrects us.
        let (_, _) = client.on_message(
            SimTime::from_secs(1),
            &mut rng,
            out[0].0,
            Msg::WrongServer {
                channel: ChannelId(5),
                mapping: ChannelMapping::Single(sid(2)),
                plan: PlanId(1),
            },
        );
        let (_, out2) = client.publish(SimTime::from_secs(1), &mut rng, ChannelId(5), 200);
        assert_eq!(out2[0].0, sid(2).node());
        assert_eq!(client.stats().wrong_server_notices, 1);
    }

    #[test]
    fn publish_to_all_publishers_channel_hits_every_replica() {
        let (mut client, mut rng, _) = setup(4);
        client.learn(
            SimTime::ZERO,
            ChannelId(1),
            ChannelMapping::AllPublishers(vec![sid(0), sid(1), sid(2)]),
            PlanId(1),
        );
        let (_, out) = client.publish(SimTime::ZERO, &mut rng, ChannelId(1), 10);
        let mut targets: Vec<NodeId> = out.iter().map(|(n, _)| *n).collect();
        targets.sort();
        assert_eq!(targets, vec![sid(0).node(), sid(1).node(), sid(2).node()]);
    }

    #[test]
    fn subscribe_to_all_subscribers_channel_hits_every_replica() {
        let (mut client, mut rng, _) = setup(4);
        client.learn(
            SimTime::ZERO,
            ChannelId(1),
            ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]),
            PlanId(1),
        );
        let out = client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn deliveries_are_deduplicated() {
        let (mut client, mut rng, _) = setup(2);
        let p = publication(1, 0);
        let (ev1, _) = client.on_message(SimTime::ZERO, &mut rng, sid(0).node(), Msg::Deliver(p));
        assert_eq!(ev1, vec![ClientEvent::Delivery(p)]);
        let (ev2, _) = client.on_message(SimTime::ZERO, &mut rng, sid(1).node(), Msg::Deliver(p));
        assert!(ev2.is_empty());
        assert_eq!(client.stats().duplicates_suppressed, 1);
        // A different message passes.
        let p2 = publication(1, 1);
        let (ev3, _) = client.on_message(SimTime::ZERO, &mut rng, sid(0).node(), Msg::Deliver(p2));
        assert_eq!(ev3.len(), 1);
    }

    #[test]
    fn dedup_window_is_bounded() {
        let (mut client, mut rng, _) = setup(1);
        let cap = client.cfg.dedup_capacity;
        for seq in 0..(cap as u64 + 10) {
            let p = publication(1, seq);
            client.on_message(SimTime::ZERO, &mut rng, sid(0).node(), Msg::Deliver(p));
        }
        assert!(client.dedup.seen.len() <= cap);
    }

    #[test]
    fn batch_unpacks_through_the_dedup_window() {
        let (mut client, mut rng, _) = setup(2);
        let a = publication(1, 0);
        let b = publication(1, 1);
        let c = publication(1, 2);
        // `a` already arrived singly (say, from the old server before a
        // migration); the batch re-delivers it plus two fresh entries.
        client.on_message(SimTime::ZERO, &mut rng, sid(0).node(), Msg::Deliver(a));
        let (events, _) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            sid(1).node(),
            Msg::DeliverBatch(vec![a, b, c]),
        );
        assert_eq!(
            events,
            vec![ClientEvent::Delivery(b), ClientEvent::Delivery(c)]
        );
        assert_eq!(client.stats().duplicates_suppressed, 1);
        assert_eq!(client.stats().batches_received, 1);
        assert_eq!(client.stats().deliveries, 3);
        // A second copy of the whole batch is fully suppressed.
        let (events, _) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            sid(0).node(),
            Msg::DeliverBatch(vec![a, b, c]),
        );
        assert!(events.is_empty());
        assert_eq!(client.stats().duplicates_suppressed, 4);
    }

    #[test]
    fn batch_entries_keep_their_own_sent_at() {
        let (mut client, mut rng, _) = setup(1);
        let mut early = publication(1, 0);
        early.sent_at = SimTime::from_millis(10);
        let mut late = publication(1, 1);
        late.sent_at = SimTime::from_millis(25);
        let (events, _) = client.on_message(
            SimTime::from_millis(40),
            &mut rng,
            sid(0).node(),
            Msg::DeliverBatch(vec![early, late]),
        );
        // Latency accounting reads `sent_at` per publication; batching
        // must not collapse entries onto the batch's arrival metadata.
        match &events[..] {
            [ClientEvent::Delivery(p0), ClientEvent::Delivery(p1)] => {
                assert_eq!(p0.sent_at, SimTime::from_millis(10));
                assert_eq!(p1.sent_at, SimTime::from_millis(25));
            }
            other => panic!("unexpected events: {other:?}"),
        }
    }

    #[test]
    fn switch_moves_subscription() {
        let (mut client, mut rng, ring) = setup(4);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(2));
        let old = ring.server_for(ChannelId(2));
        let new_mapping = ChannelMapping::Single(sid((old.0.index() + 1) % 4));
        let (_, out) = client.on_message(
            SimTime::from_secs(1),
            &mut rng,
            old.node(),
            Msg::Switch {
                channel: ChannelId(2),
                mapping: new_mapping.clone(),
                plan: PlanId(1),
            },
        );
        // Subscribe to the new server immediately; the unsubscribe from
        // the old server is deferred by the grace period so no message
        // is lost while the new subscription is in flight.
        assert_eq!(out.len(), 1);
        assert!(out
            .iter()
            .any(|(n, m)| *n == new_mapping.servers()[0].node()
                && matches!(m, Msg::Subscribe { .. })));
        assert_eq!(
            client.subscription_servers(ChannelId(2)),
            new_mapping.servers()
        );
        // Before the grace period: nothing. After: the unsubscribe.
        assert!(client.poll_deferred(SimTime::from_secs(1)).is_empty());
        let grace = DynamothConfig::default().unsubscribe_grace;
        let later = SimTime::from_secs(1) + grace + SimDuration::from_millis(1);
        let deferred = client.poll_deferred(later);
        assert_eq!(deferred.len(), 1);
        assert!(
            matches!(deferred[0], (n, Msg::Unsubscribe { .. }) if n == old.node()),
            "{deferred:?}"
        );
        // Polling again yields nothing.
        assert!(client.poll_deferred(later).is_empty());
    }

    #[test]
    fn switch_without_subscription_only_updates_plan() {
        let (mut client, mut rng, _) = setup(2);
        let (_, out) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            sid(0).node(),
            Msg::Switch {
                channel: ChannelId(9),
                mapping: ChannelMapping::Single(sid(1)),
                plan: PlanId(1),
            },
        );
        assert!(out.is_empty());
        assert_eq!(client.plan_len(), 1);
    }

    #[test]
    fn all_publishers_switch_rerolls_but_duplicates_are_idempotent() {
        let (mut client, mut rng, _) = setup(4);
        client.learn(
            SimTime::ZERO,
            ChannelId(1),
            ChannelMapping::Single(sid(0)),
            PlanId(1),
        );
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        // Channel becomes all-publishers over {s0, s1}: the subscriber
        // re-draws its target among the members (spreading the
        // population), ending on exactly one member.
        let mapping = ChannelMapping::AllPublishers(vec![sid(0), sid(1)]);
        let (_, _out) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            sid(0).node(),
            Msg::Switch {
                channel: ChannelId(1),
                mapping: mapping.clone(),
                plan: PlanId(2),
            },
        );
        let servers = client.subscription_servers(ChannelId(1));
        assert_eq!(servers.len(), 1);
        assert!(mapping.contains(servers[0]));
        // A duplicate notice of the same version changes nothing.
        let (_, out2) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            sid(1).node(),
            Msg::Switch {
                channel: ChannelId(1),
                mapping: mapping.clone(),
                plan: PlanId(2),
            },
        );
        assert!(out2.is_empty(), "{out2:?}");
        assert_eq!(client.subscription_servers(ChannelId(1)), servers);
    }

    #[test]
    fn disconnect_drops_subscriptions_and_reports() {
        let (mut client, mut rng, ring) = setup(2);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        let server = ring.server_for(ChannelId(1));
        let (events, _) = client.on_message(
            SimTime::ZERO,
            &mut rng,
            server.node(),
            Msg::Disconnected {
                channels: vec![ChannelId(1)],
            },
        );
        assert_eq!(
            events,
            vec![ClientEvent::SubscriptionsLost {
                server,
                channels: vec![ChannelId(1)]
            }]
        );
        assert!(!client.is_subscribed(ChannelId(1)));
    }

    #[test]
    fn plan_entries_expire_when_unused_and_unsubscribed() {
        let (mut client, mut rng, _) = setup(2);
        client.learn(
            SimTime::ZERO,
            ChannelId(1),
            ChannelMapping::Single(sid(1)),
            PlanId(1),
        );
        client.learn(
            SimTime::ZERO,
            ChannelId(2),
            ChannelMapping::Single(sid(1)),
            PlanId(1),
        );
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(2));
        let late = SimTime::ZERO + DynamothConfig::default().plan_entry_ttl * 2;
        client.expire_plan_entries(late);
        // Entry 1 expired; entry 2 kept (still subscribed).
        assert_eq!(client.plan_len(), 1);
        assert!(client.plan.contains_key(&ChannelId(2)));
    }

    #[test]
    fn unsubscribe_clears_state() {
        let (mut client, mut rng, _) = setup(2);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        let out = client.unsubscribe(SimTime::ZERO, ChannelId(1));
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].1, Msg::Unsubscribe { .. }));
        assert!(!client.is_subscribed(ChannelId(1)));
        assert!(client.unsubscribe(SimTime::ZERO, ChannelId(1)).is_empty());
    }

    #[test]
    fn liveness_pings_subscribed_and_published_servers() {
        let (mut client, mut rng, ring) = setup(4);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        client.publish(SimTime::ZERO, &mut rng, ChannelId(2), 10);
        let sub_server = ring.server_for(ChannelId(1));
        let pub_server = ring.server_for(ChannelId(2));
        // Before the ping interval: silence.
        assert!(client
            .liveness_actions(SimTime::from_millis(500), &mut rng)
            .is_empty());
        // After it: one ping per monitored server.
        let interval = DynamothConfig::default().client_ping_interval;
        let out = client.liveness_actions(SimTime::ZERO + interval, &mut rng);
        let mut pinged: Vec<NodeId> = out
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Ping))
            .map(|&(n, _)| n)
            .collect();
        pinged.sort();
        pinged.dedup();
        let mut expected = vec![sub_server.node(), pub_server.node()];
        expected.sort();
        expected.dedup();
        assert_eq!(pinged, expected);
        // A pong resets the clock: no more pings right away.
        client.on_message(
            SimTime::ZERO + interval,
            &mut rng,
            sub_server.node(),
            Msg::Pong,
        );
        let out = client.liveness_actions(SimTime::ZERO + interval, &mut rng);
        assert!(!out
            .iter()
            .any(|&(n, ref m)| n == sub_server.node() && matches!(m, Msg::Ping)));
    }

    #[test]
    fn silent_server_triggers_failover_resubscription() {
        let (mut client, mut rng, ring) = setup(4);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        let dead = ring.server_for(ChannelId(1));
        let cfg = DynamothConfig::default();
        let late = SimTime::ZERO + cfg.client_failover_timeout + SimDuration::from_millis(1);
        let out = client.liveness_actions(late, &mut rng);
        // A fresh Subscribe went somewhere else.
        let resub: Vec<NodeId> = out
            .iter()
            .filter(|(_, m)| matches!(m, Msg::Subscribe { .. }))
            .map(|&(n, _)| n)
            .collect();
        assert_eq!(resub.len(), 1);
        assert_ne!(resub[0], dead.node(), "resubscribed to the dead server");
        assert_eq!(
            client.subscription_servers(ChannelId(1)),
            vec![ServerId(resub[0])]
        );
        // Publishes route around the blacklisted server too.
        let (_, out) = client.publish(late, &mut rng, ChannelId(1), 10);
        assert_ne!(out[0].0, dead.node());
    }

    #[test]
    fn blacklist_expires_and_the_home_returns() {
        let (mut client, mut rng, ring) = setup(4);
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        let home = ring.server_for(ChannelId(1));
        let cfg = DynamothConfig::default();
        let late = SimTime::ZERO + cfg.client_failover_timeout + SimDuration::from_millis(1);
        client.liveness_actions(late, &mut rng);
        // While blacklisted, resolution avoids the home.
        let (_, out) = client.publish(late, &mut rng, ChannelId(1), 10);
        assert_ne!(out[0].0, home.node());
        // After expiry (and with the plan entry gone) the ring home is
        // used again.
        let after = late + cfg.dead_server_blacklist + SimDuration::from_secs(1);
        client.liveness_actions(after, &mut rng);
        client.unsubscribe(after, ChannelId(1));
        client.plan.remove(&ChannelId(1));
        let (_, out) = client.publish(after, &mut rng, ChannelId(1), 10);
        assert_eq!(out[0].0, home.node());
    }

    #[test]
    fn replicated_mapping_sheds_dead_members() {
        let (mut client, mut rng, _) = setup(4);
        client.learn(
            SimTime::ZERO,
            ChannelId(1),
            ChannelMapping::AllSubscribers(vec![sid(0), sid(1), sid(2)]),
            PlanId(1),
        );
        client.subscribe(SimTime::ZERO, &mut rng, ChannelId(1));
        assert_eq!(client.subscription_servers(ChannelId(1)).len(), 3);
        // Publish once so s1 is monitored… actually mark s1 dead directly
        // through silence: only s1's subscription goes quiet is not
        // distinguishable per-server here, so drive the blacklist path:
        client
            .dead_servers
            .insert(sid(1), SimTime::from_secs(1_000));
        let (mapping, _) = client.resolve(ChannelId(1));
        assert_eq!(
            mapping,
            ChannelMapping::AllSubscribers(vec![sid(0), sid(2)])
        );
    }

    #[test]
    fn message_ids_are_unique_and_increasing() {
        let (mut client, mut rng, _) = setup(1);
        let (id1, _) = client.publish(SimTime::ZERO, &mut rng, ChannelId(1), 10);
        let (id2, _) = client.publish(SimTime::ZERO, &mut rng, ChannelId(1), 10);
        assert_ne!(id1, id2);
        assert!(id2.seq > id1.seq);
        assert_eq!(id1.origin, client.node());
    }

    #[test]
    fn dedup_eviction_is_strictly_fifo() {
        // Over-fill the window far past capacity and assert the oldest
        // ids — and only the oldest — have been forgotten. If eviction
        // ever discards an arbitrary entry instead of the oldest, a
        // reconfiguration duplicate of a recent message would slip
        // through as a fresh delivery.
        let mid = |seq| MessageId {
            origin: NodeId::from_index(99),
            seq,
        };
        let cap = 8;
        let mut dedup = Dedup::default();
        for seq in 0..3 * cap as u64 {
            assert!(dedup.insert(mid(seq), cap), "id {seq} is new");
        }
        // Exactly the `cap` most recent ids are remembered, in order.
        assert_eq!(dedup.order.len(), cap);
        assert_eq!(
            dedup.order.iter().map(|id| id.seq).collect::<Vec<_>>(),
            (2 * cap as u64..3 * cap as u64).collect::<Vec<_>>()
        );
        for seq in 2 * cap as u64..3 * cap as u64 {
            assert!(
                !dedup.insert(mid(seq), cap),
                "recent id {seq} must still dedup"
            );
        }
        // Evicted (oldest) ids are treated as new again — the window is
        // a bounded memory, not a permanent filter.
        assert!(dedup.insert(mid(0), cap));
    }

    #[test]
    fn dedup_reinserting_a_seen_id_does_not_grow_the_window() {
        // A duplicate insert must not push a second FIFO entry for the
        // same id: that would make the window evict fresh ids early.
        let mid = |seq| MessageId {
            origin: NodeId::from_index(7),
            seq,
        };
        let mut dedup = Dedup::default();
        for seq in 0..4 {
            assert!(dedup.insert(mid(seq), 4));
        }
        for seq in 0..4 {
            assert!(!dedup.insert(mid(seq), 4));
        }
        assert_eq!(dedup.order.len(), 4);
        // One more fresh id evicts exactly the oldest.
        assert!(dedup.insert(mid(10), 4));
        assert!(!dedup.seen.contains(&mid(0)));
        assert!(dedup.seen.contains(&mid(1)));
    }
}
