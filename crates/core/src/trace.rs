//! Experiment instrumentation: a shared sink collecting the time series
//! plotted in the paper's figures (players, messages/s, response times,
//! server counts, load ratios, rebalancing events).
//!
//! A [`TraceHandle`] is a cheaply cloneable reference handed to workload
//! actors and the load balancer; the harness reads the aggregated series
//! out at the end of a run.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use dynamoth_sim::{SimDuration, SimTime};

use crate::histogram::LatencyHistogram;

/// Which balancing action triggered a reconfiguration mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceKind {
    /// Algorithm 2 (and/or channel-level changes) under high load.
    HighLoad,
    /// Low-load drain releasing a server.
    LowLoad,
    /// Channel-level replication change only.
    ChannelLevel,
    /// Consistent-hashing baseline ring growth.
    ConsistentHash,
    /// A failed server's channels were migrated to healthy servers.
    Failover,
}

/// Aggregated per-second experiment series.
#[derive(Debug, Default)]
pub struct Trace {
    resp: BTreeMap<u64, (f64, u64)>,
    histogram: LatencyHistogram,
    server_seconds: u64,
    rebalances: Vec<(f64, RebalanceKind)>,
    server_count: BTreeMap<u64, usize>,
    load: BTreeMap<u64, (f64, f64)>,
    deliveries: BTreeMap<u64, u64>,
    players: BTreeMap<u64, usize>,
    /// Subscriptions lost to output-buffer overflows.
    pub lost_subscriptions: u64,
    /// Total publications delivered to applications.
    pub delivered_total: u64,
}

/// Shared, cloneable, thread-safe handle to a [`Trace`] (workload
/// actors and the load balancer write; the harness reads).
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Arc<Mutex<Trace>>);

impl TraceHandle {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one response-time sample (publish → echo delivery).
    pub fn record_response(&self, now: SimTime, latency: SimDuration) {
        let mut t = self.0.lock();
        let e = t.resp.entry(now.as_secs()).or_insert((0.0, 0));
        e.0 += latency.as_millis_f64();
        e.1 += 1;
        t.histogram.record(latency);
        t.delivered_total += 1;
    }

    /// Latency quantile over the whole run (log-histogram approximation).
    pub fn response_quantile_ms(&self, q: f64) -> Option<f64> {
        self.0
            .lock()
            .histogram
            .quantile(q)
            .map(|d| d.as_millis_f64())
    }

    /// Adds one tick's worth of rented-server time (cloud-cost
    /// accounting; the paper's future work asks for a cost model, this
    /// is its measurement half).
    pub fn add_server_seconds(&self, servers: usize) {
        self.0.lock().server_seconds += servers as u64;
    }

    /// Total server-seconds rented over the run.
    pub fn server_seconds(&self) -> u64 {
        self.0.lock().server_seconds
    }

    /// Records a reconfiguration mark (the diamonds/circles in the
    /// paper's figures).
    pub fn record_rebalance(&self, now: SimTime, kind: RebalanceKind) {
        self.0.lock().rebalances.push((now.as_secs_f64(), kind));
    }

    /// Records the number of active pub/sub servers at a tick.
    pub fn record_server_count(&self, now: SimTime, n: usize) {
        self.0.lock().server_count.insert(now.as_secs(), n);
    }

    /// Records average and maximum load ratio across active servers.
    pub fn record_load(&self, now: SimTime, avg: f64, max: f64) {
        self.0.lock().load.insert(now.as_secs(), (avg, max));
    }

    /// Adds outgoing-message deliveries reported by an LLA for a tick.
    pub fn add_deliveries(&self, tick_second: u64, n: u64) {
        *self.0.lock().deliveries.entry(tick_second).or_insert(0) += n;
    }

    /// Records the active player/client count.
    pub fn record_players(&self, now: SimTime, n: usize) {
        self.0.lock().players.insert(now.as_secs(), n);
    }

    /// Counts a lost subscription (output-buffer overflow).
    pub fn record_lost_subscription(&self) {
        self.0.lock().lost_subscriptions += 1;
    }

    /// Mean response time (ms) per second of simulation.
    pub fn response_series(&self) -> Vec<(u64, f64)> {
        self.0
            .lock()
            .resp
            .iter()
            .map(|(&s, &(sum, n))| (s, sum / n as f64))
            .collect()
    }

    /// Mean response time (ms) over the whole run, or `None` when no
    /// deliveries happened.
    pub fn mean_response_ms(&self) -> Option<f64> {
        let t = self.0.lock();
        let (sum, n) = t
            .resp
            .values()
            .fold((0.0, 0u64), |(s, c), &(sum, n)| (s + sum, c + n));
        (n > 0).then(|| sum / n as f64)
    }

    /// Mean response time (ms) restricted to `[from, to)` seconds.
    pub fn mean_response_ms_between(&self, from: u64, to: u64) -> Option<f64> {
        let t = self.0.lock();
        let (sum, n) = t
            .resp
            .range(from..to)
            .fold((0.0, 0u64), |(s, c), (_, &(sum, n))| (s + sum, c + n));
        (n > 0).then(|| sum / n as f64)
    }

    /// Reconfiguration marks `(second, kind)`.
    pub fn rebalance_series(&self) -> Vec<(f64, RebalanceKind)> {
        self.0.lock().rebalances.clone()
    }

    /// Active server count per second.
    pub fn server_series(&self) -> Vec<(u64, usize)> {
        self.0
            .lock()
            .server_count
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect()
    }

    /// `(second, avg LR, max LR)` per second.
    pub fn load_series(&self) -> Vec<(u64, f64, f64)> {
        self.0
            .lock()
            .load
            .iter()
            .map(|(&s, &(avg, max))| (s, avg, max))
            .collect()
    }

    /// Outgoing messages per second (summed over servers).
    pub fn delivery_series(&self) -> Vec<(u64, u64)> {
        self.0
            .lock()
            .deliveries
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect()
    }

    /// Active players per second.
    pub fn player_series(&self) -> Vec<(u64, usize)> {
        self.0
            .lock()
            .players
            .iter()
            .map(|(&s, &n)| (s, n))
            .collect()
    }

    /// Total subscriptions lost to buffer overflows.
    pub fn lost_subscriptions(&self) -> u64 {
        self.0.lock().lost_subscriptions
    }

    /// Total publications delivered to applications.
    pub fn delivered_total(&self) -> u64 {
        self.0.lock().delivered_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_samples_aggregate_per_second() {
        let trace = TraceHandle::new();
        trace.record_response(SimTime::from_millis(100), SimDuration::from_millis(50));
        trace.record_response(SimTime::from_millis(900), SimDuration::from_millis(150));
        trace.record_response(SimTime::from_millis(1_500), SimDuration::from_millis(80));
        let series = trace.response_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0], (0, 100.0));
        assert_eq!(series[1], (1, 80.0));
        assert_eq!(trace.mean_response_ms(), Some((50.0 + 150.0 + 80.0) / 3.0));
        assert_eq!(trace.delivered_total(), 3);
    }

    #[test]
    fn windowed_mean_response() {
        let trace = TraceHandle::new();
        trace.record_response(SimTime::from_secs(1), SimDuration::from_millis(10));
        trace.record_response(SimTime::from_secs(5), SimDuration::from_millis(100));
        assert_eq!(trace.mean_response_ms_between(0, 2), Some(10.0));
        assert_eq!(trace.mean_response_ms_between(4, 6), Some(100.0));
        assert_eq!(trace.mean_response_ms_between(8, 9), None);
    }

    #[test]
    fn series_are_sorted_by_second() {
        let trace = TraceHandle::new();
        trace.record_server_count(SimTime::from_secs(5), 3);
        trace.record_server_count(SimTime::from_secs(2), 1);
        assert_eq!(trace.server_series(), vec![(2, 1), (5, 3)]);
        trace.add_deliveries(4, 10);
        trace.add_deliveries(4, 5);
        assert_eq!(trace.delivery_series(), vec![(4, 15)]);
    }

    #[test]
    fn clones_share_state() {
        let trace = TraceHandle::new();
        let clone = trace.clone();
        clone.record_lost_subscription();
        assert_eq!(trace.lost_subscriptions(), 1);
        assert_eq!(trace.mean_response_ms(), None);
    }

    #[test]
    fn rebalance_marks_are_kept_in_order() {
        let trace = TraceHandle::new();
        trace.record_rebalance(SimTime::from_secs(10), RebalanceKind::HighLoad);
        trace.record_rebalance(SimTime::from_secs(20), RebalanceKind::LowLoad);
        let marks = trace.rebalance_series();
        assert_eq!(marks.len(), 2);
        assert_eq!(marks[0].1, RebalanceKind::HighLoad);
    }
}
