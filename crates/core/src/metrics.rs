//! Load metrics: what the Local Load Analyzers record each time unit and
//! how the load balancer aggregates it (§III-A).
//!
//! The implementation lives in `dynamoth-pubsub` (`balance::metrics`) so
//! the live TCP control plane and the simulator share one copy; this
//! module re-exports it under the historical `dynamoth_core` paths.

pub use dynamoth_pubsub::balance::metrics::{
    ChannelAggregate, ChannelTick, LlaReport, MetricsStore,
};
