//! Micro-benchmark actors for Experiment 1 (§V-C): a single hot channel
//! exercised by many publishers and/or subscribers, with replication
//! configured manually, as in the paper.

use dynamoth_core::{ChannelId, ClientEvent, DynamothClient, Msg, TraceHandle};
use dynamoth_sim::{Actor, ActorContext, NodeId, SimDuration};

/// Timer tag: start the actor's activity.
pub const TAG_START: u64 = 1;
/// Timer tag: publish the next message.
pub const TAG_PUBLISH: u64 = 2;
/// Timer tag: stop publishing (used by tests that need quiescence).
pub const TAG_STOP: u64 = 3;
/// Timer tag: periodic client liveness maintenance (pings / failover).
pub const TAG_LIVENESS: u64 = 4;

fn send_all(ctx: &mut dyn ActorContext<Msg>, out: Vec<(NodeId, Msg)>) {
    for (to, msg) in out {
        let _ = ctx.send(to, msg);
    }
}

/// A client publishing on one channel at a fixed rate.
#[derive(Debug)]
pub struct Publisher {
    client: DynamothClient,
    channel: ChannelId,
    rate_hz: f64,
    payload: u32,
    running: bool,
}

impl Publisher {
    /// Creates a publisher of `payload`-byte messages at `rate_hz` on
    /// `channel`. Arm a [`TAG_START`] timer to start it.
    pub fn new(client: DynamothClient, channel: ChannelId, rate_hz: f64, payload: u32) -> Self {
        Publisher {
            client,
            channel,
            rate_hz,
            payload,
            running: false,
        }
    }

    /// The underlying client library (inspection).
    pub fn client(&self) -> &DynamothClient {
        &self.client
    }

    fn interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.rate_hz)
    }
}

impl Actor<Msg> for Publisher {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let (_, out) = {
            let mut rng = ctx.rng().fork();
            self.client.on_message(now, &mut rng, from, msg)
        };
        send_all(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        match (tag, self.running) {
            (TAG_START, false) => {
                self.running = true;
                ctx.set_timer(self.interval(), TAG_PUBLISH);
                ctx.set_timer(self.client.config().client_ping_interval, TAG_LIVENESS);
            }
            (TAG_LIVENESS, _) => {
                let now = ctx.now();
                let out = {
                    let mut rng = ctx.rng().fork();
                    self.client.liveness_actions(now, &mut rng)
                };
                send_all(ctx, out);
                ctx.set_timer(self.client.config().client_ping_interval, TAG_LIVENESS);
            }
            (TAG_STOP, _) => self.running = false,
            (TAG_PUBLISH, true) => {
                let now = ctx.now();
                let (_, out) = {
                    let mut rng = ctx.rng().fork();
                    self.client
                        .publish(now, &mut rng, self.channel, self.payload)
                };
                send_all(ctx, out);
                ctx.set_timer(self.interval(), TAG_PUBLISH);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A client subscribed to one channel, recording the delivery latency of
/// every (non-duplicate) message into the trace.
#[derive(Debug)]
pub struct Subscriber {
    client: DynamothClient,
    channel: ChannelId,
    trace: TraceHandle,
    received: u64,
}

impl Subscriber {
    /// Creates a subscriber of `channel`. Arm a [`TAG_START`] timer to
    /// make it subscribe.
    pub fn new(client: DynamothClient, channel: ChannelId, trace: TraceHandle) -> Self {
        Subscriber {
            client,
            channel,
            trace,
            received: 0,
        }
    }

    /// Messages received so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// The underlying client library (inspection).
    pub fn client(&self) -> &DynamothClient {
        &self.client
    }
}

impl Actor<Msg> for Subscriber {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let (events, out) = {
            let mut rng = ctx.rng().fork();
            self.client.on_message(now, &mut rng, from, msg)
        };
        send_all(ctx, out);
        for event in events {
            match event {
                ClientEvent::Delivery(p) => {
                    self.received += 1;
                    self.trace
                        .record_response(now, now.saturating_since(p.sent_at));
                }
                ClientEvent::SubscriptionsLost { .. } => {
                    self.trace.record_lost_subscription();
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        let now = ctx.now();
        match tag {
            TAG_START => {
                let out = {
                    let mut rng = ctx.rng().fork();
                    self.client.subscribe(now, &mut rng, self.channel)
                };
                send_all(ctx, out);
                ctx.set_timer(self.client.config().client_ping_interval, TAG_LIVENESS);
            }
            TAG_LIVENESS => {
                let out = {
                    let mut rng = ctx.rng().fork();
                    self.client.liveness_actions(now, &mut rng)
                };
                send_all(ctx, out);
                ctx.set_timer(self.client.config().client_ping_interval, TAG_LIVENESS);
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::Arc;

    use dynamoth_core::{DynamothConfig, Ring, ServerId};

    fn client() -> DynamothClient {
        let ring = Arc::new(Ring::new(&[ServerId(NodeId::from_index(0))], 8));
        DynamothClient::new(
            NodeId::from_index(10),
            ring,
            Arc::new(DynamothConfig::default()),
        )
    }

    #[test]
    fn publisher_interval_matches_rate() {
        let p = Publisher::new(client(), ChannelId(1), 10.0, 100);
        assert_eq!(p.interval(), SimDuration::from_millis(100));
    }

    #[test]
    fn subscriber_starts_with_zero_received() {
        let trace = TraceHandle::new();
        let s = Subscriber::new(client(), ChannelId(1), trace);
        assert_eq!(s.received(), 0);
    }
}
