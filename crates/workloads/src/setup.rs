//! Glue between workloads and the cluster harness: spawning scheduled
//! players and micro-benchmark clients into a [`Cluster`].

use std::sync::Arc;

use dynamoth_core::{ChannelId, Cluster};
use dynamoth_sim::{NodeId, SimDuration, SimTime};

use dynamoth_sim::Zipf;

use crate::chat::{ChatConfig, ChatUser};
use crate::micro::{Publisher, Subscriber, TAG_START};
use crate::rgame::{Player, PlayerCounter, RGameConfig, TAG_JOIN, TAG_LEAVE};
use crate::schedule::Schedule;

/// Spawns one [`Player`] per schedule entry and arms its join/leave
/// timers. Returns the player node ids and the shared live-player
/// counter.
pub fn spawn_players(
    cluster: &mut Cluster,
    game: &Arc<RGameConfig>,
    schedule: &Schedule,
) -> (Vec<NodeId>, PlayerCounter) {
    let counter = PlayerCounter::new();
    let mut nodes = Vec::with_capacity(schedule.len());
    for ps in &schedule.0 {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let player = Player::new(
            client,
            Arc::clone(game),
            cluster.trace.clone(),
            counter.clone(),
        );
        let actual = cluster.add_client(Box::new(player));
        debug_assert_eq!(actual, node);
        cluster.world.schedule_timer(node, ps.join, TAG_JOIN);
        if let Some(leave) = ps.leave {
            cluster.world.schedule_timer(node, leave, TAG_LEAVE);
        }
        nodes.push(node);
    }
    (nodes, counter)
}

/// Spawns the Experiment-1 micro workload: `n_publishers` publishers at
/// `rate_hz` each and `n_subscribers` subscribers, all on `channel`.
/// Subscribers subscribe at `start`; publishers begin one second later
/// (staggered by a few milliseconds each so they do not fire in
/// lock-step). Returns `(publisher_nodes, subscriber_nodes)`.
pub fn spawn_hot_channel(
    cluster: &mut Cluster,
    channel: ChannelId,
    n_publishers: usize,
    rate_hz: f64,
    payload: u32,
    n_subscribers: usize,
    start: SimTime,
) -> (Vec<NodeId>, Vec<NodeId>) {
    let mut subscribers = Vec::with_capacity(n_subscribers);
    for _ in 0..n_subscribers {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let actor = Subscriber::new(client, channel, cluster.trace.clone());
        cluster.add_client(Box::new(actor));
        cluster.world.schedule_timer(node, start, TAG_START);
        subscribers.push(node);
    }
    let mut publishers = Vec::with_capacity(n_publishers);
    let pub_start = start + SimDuration::from_secs(1);
    for i in 0..n_publishers {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let actor = Publisher::new(client, channel, rate_hz, payload);
        cluster.add_client(Box::new(actor));
        let stagger = SimDuration::from_millis((i as u64 * 7) % 1_000);
        cluster
            .world
            .schedule_timer(node, pub_start + stagger, TAG_START);
        publishers.push(node);
    }
    (publishers, subscribers)
}

/// Spawns `n_users` chat users whose joins are spread uniformly over
/// `[start, start + spread]`, giving the load balancer time to react as
/// the service fills up. Returns the user node ids.
pub fn spawn_chat_users(
    cluster: &mut Cluster,
    cfg: &Arc<ChatConfig>,
    n_users: usize,
    start: SimTime,
    spread: SimDuration,
) -> Vec<NodeId> {
    let zipf = Arc::new(Zipf::new(cfg.rooms, cfg.zipf_exponent));
    let mut nodes = Vec::with_capacity(n_users);
    for i in 0..n_users {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let user = ChatUser::new(
            client,
            Arc::clone(cfg),
            Arc::clone(&zipf),
            cluster.trace.clone(),
        );
        cluster.add_client(Box::new(user));
        let stagger =
            SimDuration::from_micros(spread.as_micros() * i as u64 / n_users.max(1) as u64);
        cluster
            .world
            .schedule_timer(node, start + stagger, crate::chat::TAG_JOIN);
        nodes.push(node);
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamoth_core::ClusterConfig;
    use dynamoth_net::CloudTransportConfig;

    #[test]
    fn spawn_players_registers_schedule() {
        let mut cluster = Cluster::build(ClusterConfig {
            transport: CloudTransportConfig::fast_lan(),
            ..Default::default()
        });
        let game = Arc::new(RGameConfig::default());
        let schedule = Schedule::ramp(2, 5, SimTime::from_secs(1), SimTime::from_secs(10));
        let (nodes, counter) = spawn_players(&mut cluster, &game, &schedule);
        assert_eq!(nodes.len(), 5);
        assert_eq!(counter.count(), 0);
        cluster.run_for(SimDuration::from_secs(2));
        assert_eq!(counter.count(), 2); // the initial burst joined
        cluster.run_for(SimDuration::from_secs(10));
        assert_eq!(counter.count(), 5);
    }

    #[test]
    fn spawn_chat_users_go_online_and_chat() {
        let mut cluster = Cluster::build(ClusterConfig {
            transport: CloudTransportConfig::fast_lan(),
            pool_size: 4,
            initial_active: 4,
            ..Default::default()
        });
        let cfg = Arc::new(ChatConfig {
            rooms: 20,
            message_hz: 2.0,
            ..Default::default()
        });
        let users = spawn_chat_users(
            &mut cluster,
            &cfg,
            10,
            SimTime::from_secs(1),
            SimDuration::from_secs(2),
        );
        cluster.run_for(SimDuration::from_secs(20));
        let mut total_sent = 0;
        for &u in &users {
            let user: &ChatUser = cluster.world.actor(u).unwrap();
            assert_eq!(user.rooms().len(), cfg.rooms_per_user);
            total_sent += user.sent();
        }
        assert!(total_sent > 100, "users barely chatted: {total_sent}");
        assert!(cluster.trace.delivered_total() > 0);
    }

    #[test]
    fn spawn_hot_channel_counts() {
        let mut cluster = Cluster::build(ClusterConfig {
            transport: CloudTransportConfig::fast_lan(),
            ..Default::default()
        });
        let (pubs, subs) = spawn_hot_channel(
            &mut cluster,
            ChannelId(7),
            3,
            10.0,
            100,
            2,
            SimTime::from_secs(1),
        );
        assert_eq!(pubs.len(), 3);
        assert_eq!(subs.len(), 2);
        cluster.run_for(SimDuration::from_secs(5));
        // Each subscriber received messages from all three publishers.
        assert!(cluster.trace.delivered_total() > 0);
    }
}
