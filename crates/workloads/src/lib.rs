//! # dynamoth-workloads
//!
//! Workload generators driving the Dynamoth reproduction experiments:
//!
//! * [`rgame`] — the multiplayer-game workload (tile world, AI players)
//!   used by the paper's Experiments 2 and 3;
//! * [`chat`] — a chat/instant-messaging workload with Zipf room
//!   popularity (multi-channel clients, heavy skew);
//! * [`micro`] — the single-hot-channel micro-benchmarks of
//!   Experiment 1;
//! * [`schedule`] — player arrival/departure schedules (ramps, steps);
//! * [`setup`] — glue spawning workload actors into a
//!   [`Cluster`](dynamoth_core::Cluster);
//! * [`live`] — the same generators re-expressed as pure step
//!   functions the live scale harness (`dynamoth-cli bench-scale`) can
//!   multiplex over pooled real connections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chat;
pub mod live;
pub mod micro;
pub mod rgame;
pub mod schedule;
pub mod setup;

pub use chat::{ChatConfig, ChatUser};
pub use live::{LiveChat, LiveFlash, LivePublish, LiveRGame, LiveWorkload};
pub use micro::{Publisher, Subscriber};
pub use rgame::{Player, PlayerCounter, RGameConfig};
pub use schedule::{PlayerSchedule, Schedule};
pub use setup::{spawn_chat_users, spawn_hot_channel, spawn_players};
