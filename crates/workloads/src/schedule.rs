//! Client arrival/departure schedules for the scalability and elasticity
//! experiments.
//!
//! A [`Schedule`] is a list of per-player join (and optional leave)
//! times. Helpers build the two shapes used in the paper: a slow ramp
//! (Experiment 2: 120 → 1200 players) and a step pattern (Experiment 3:
//! up to 800, down to 200, back up to ~600).

use dynamoth_sim::SimTime;

/// One player's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlayerSchedule {
    /// When the player joins the game.
    pub join: SimTime,
    /// When the player leaves, if ever.
    pub leave: Option<SimTime>,
}

/// A full experiment schedule: one entry per player.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule(pub Vec<PlayerSchedule>);

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of players in the schedule.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` if no players are scheduled.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Experiment 2 shape: `initial` players join at `start`, then the
    /// remaining `total - initial` join at a uniform rate until `end`.
    ///
    /// # Panics
    ///
    /// Panics if `total < initial` or `end <= start`.
    pub fn ramp(initial: usize, total: usize, start: SimTime, end: SimTime) -> Self {
        assert!(total >= initial, "total must include the initial players");
        assert!(end > start, "ramp must have positive duration");
        let mut players = Vec::with_capacity(total);
        for _ in 0..initial {
            players.push(PlayerSchedule {
                join: start,
                leave: None,
            });
        }
        let joining = total - initial;
        let span = end.saturating_since(start).as_micros();
        for i in 0..joining {
            let offset = span * (i as u64 + 1) / joining.max(1) as u64;
            players.push(PlayerSchedule {
                join: SimTime::from_micros(start.as_micros() + offset),
                leave: None,
            });
        }
        Schedule(players)
    }

    /// Experiment 3 shape: ramp `up1` players in over `[t0, t1]`; at
    /// `t2` remove all but `keep`; ramp `up2` extra players in over
    /// `[t3, t4]`.
    ///
    /// # Panics
    ///
    /// Panics if the phases are not ordered or `keep > up1`.
    #[allow(clippy::too_many_arguments)]
    pub fn steps(
        up1: usize,
        keep: usize,
        up2: usize,
        t0: SimTime,
        t1: SimTime,
        t2: SimTime,
        t3: SimTime,
        t4: SimTime,
    ) -> Self {
        assert!(keep <= up1, "cannot keep more players than joined");
        assert!(
            t0 < t1 && t1 <= t2 && t2 <= t3 && t3 < t4,
            "phases must be ordered"
        );
        let mut players = Vec::with_capacity(up1 + up2);
        // Phase 1: ramp up1 players in between t0 and t1; the first
        // `keep` stay forever, the rest leave at t2 (staggered slightly
        // so departures do not all land in one instant).
        let span1 = t1.saturating_since(t0).as_micros();
        for i in 0..up1 {
            let join = SimTime::from_micros(t0.as_micros() + span1 * i as u64 / up1.max(1) as u64);
            let leave = if i < keep {
                None
            } else {
                Some(SimTime::from_micros(
                    t2.as_micros() + (i as u64 % 32) * 250_000,
                ))
            };
            players.push(PlayerSchedule { join, leave });
        }
        // Phase 2: ramp up2 fresh players in between t3 and t4.
        let span2 = t4.saturating_since(t3).as_micros();
        for i in 0..up2 {
            let join = SimTime::from_micros(t3.as_micros() + span2 * i as u64 / up2.max(1) as u64);
            players.push(PlayerSchedule { join, leave: None });
        }
        Schedule(players)
    }

    /// The maximum number of simultaneously active players, evaluated at
    /// every join/leave boundary.
    pub fn peak(&self) -> usize {
        let mut events: Vec<(u64, isize)> = Vec::new();
        for p in &self.0 {
            events.push((p.join.as_micros(), 1));
            if let Some(leave) = p.leave {
                events.push((leave.as_micros(), -1));
            }
        }
        events.sort();
        let (mut current, mut peak) = (0isize, 0isize);
        for (_, delta) in events {
            current += delta;
            peak = peak.max(current);
        }
        peak as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_has_initial_burst_then_uniform_joins() {
        let s = Schedule::ramp(120, 1_200, SimTime::ZERO, SimTime::from_secs(300));
        assert_eq!(s.len(), 1_200);
        assert_eq!(s.0.iter().filter(|p| p.join == SimTime::ZERO).count(), 120);
        assert!(s.0.iter().all(|p| p.leave.is_none()));
        assert!(s.0.iter().all(|p| p.join <= SimTime::from_secs(300)));
        assert_eq!(s.peak(), 1_200);
    }

    #[test]
    fn steps_shape_matches_experiment_3() {
        let s = Schedule::steps(
            800,
            200,
            380,
            SimTime::ZERO,
            SimTime::from_secs(100),
            SimTime::from_secs(150),
            SimTime::from_secs(200),
            SimTime::from_secs(280),
        );
        assert_eq!(s.len(), 800 + 380);
        // 600 players leave around t2.
        assert_eq!(s.0.iter().filter(|p| p.leave.is_some()).count(), 600);
        assert_eq!(s.peak(), 800);
    }

    #[test]
    fn ramp_join_times_are_monotone_after_initial() {
        let s = Schedule::ramp(0, 10, SimTime::ZERO, SimTime::from_secs(10));
        let joins: Vec<u64> = s.0.iter().map(|p| p.join.as_micros()).collect();
        let mut sorted = joins.clone();
        sorted.sort();
        assert_eq!(joins, sorted);
    }

    #[test]
    #[should_panic(expected = "total must include")]
    fn ramp_validates_counts() {
        let _ = Schedule::ramp(10, 5, SimTime::ZERO, SimTime::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "phases must be ordered")]
    fn steps_validates_ordering() {
        let _ = Schedule::steps(
            10,
            5,
            5,
            SimTime::from_secs(10),
            SimTime::from_secs(5),
            SimTime::from_secs(20),
            SimTime::from_secs(30),
            SimTime::from_secs(40),
        );
    }
}
