//! A chat / instant-messaging workload — one of the application domains
//! the paper's introduction motivates (chat systems, Twitter-style
//! feeds).
//!
//! Users are members of a few rooms drawn from a Zipf popularity
//! distribution (a handful of huge rooms, a long tail of small ones),
//! chat at a modest rate in a random joined room, and occasionally churn
//! their membership. Compared to RGame this exercises *multi-channel
//! clients* (several concurrent subscriptions per client) and a heavier
//! popularity skew.

use std::sync::Arc;

use dynamoth_core::{ChannelId, ClientEvent, DynamothClient, Msg, TraceHandle};
use dynamoth_sim::{Actor, ActorContext, NodeId, SimDuration, SimRng, Zipf};

/// Timer tag: the user comes online.
pub const TAG_JOIN: u64 = 1;
/// Timer tag: the user sends a chat message.
pub const TAG_CHAT: u64 = 2;
/// Timer tag: the user changes one room membership.
pub const TAG_CHURN: u64 = 3;

/// Channel-id namespace offset for chat rooms, so chat channels never
/// collide with other workloads sharing a cluster.
pub const ROOM_BASE: u64 = 1_000_000;

/// Parameters of the chat workload.
#[derive(Debug, Clone)]
pub struct ChatConfig {
    /// Total number of rooms.
    pub rooms: usize,
    /// Zipf exponent of room popularity (≈1 for chat-like skew).
    pub zipf_exponent: f64,
    /// Rooms each user is a member of.
    pub rooms_per_user: usize,
    /// Chat messages per second per user.
    pub message_hz: f64,
    /// Payload bytes per message.
    pub payload: u32,
    /// Mean time between membership changes per user.
    pub churn_interval: SimDuration,
}

impl Default for ChatConfig {
    fn default() -> Self {
        ChatConfig {
            rooms: 200,
            zipf_exponent: 1.0,
            rooms_per_user: 3,
            message_hz: 0.5,
            payload: 256,
            churn_interval: SimDuration::from_secs(45),
        }
    }
}

impl ChatConfig {
    /// The channel of room `rank`.
    pub fn room_channel(&self, rank: usize) -> ChannelId {
        ChannelId(ROOM_BASE + rank as u64)
    }
}

/// A chat user actor.
#[derive(Debug)]
pub struct ChatUser {
    client: DynamothClient,
    cfg: Arc<ChatConfig>,
    zipf: Arc<Zipf>,
    trace: TraceHandle,
    rooms: Vec<usize>,
    online: bool,
    sent: u64,
    received: u64,
}

impl ChatUser {
    /// Creates an offline user; arm a [`TAG_JOIN`] timer to bring it
    /// online.
    pub fn new(
        client: DynamothClient,
        cfg: Arc<ChatConfig>,
        zipf: Arc<Zipf>,
        trace: TraceHandle,
    ) -> Self {
        ChatUser {
            client,
            cfg,
            zipf,
            trace,
            rooms: Vec::new(),
            online: false,
            sent: 0,
            received: 0,
        }
    }

    /// Messages this user sent.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Messages this user received (all rooms, without own echoes
    /// removed).
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Rooms the user is currently a member of (by rank).
    pub fn rooms(&self) -> &[usize] {
        &self.rooms
    }

    /// The underlying client library (inspection).
    pub fn client(&self) -> &DynamothClient {
        &self.client
    }

    fn pick_new_room(&self, rng: &mut SimRng) -> usize {
        // Re-draw until we find a room we are not already in (bounded
        // attempts keep this deterministic-ish and cheap).
        for _ in 0..16 {
            let room = self.zipf.sample(rng);
            if !self.rooms.contains(&room) {
                return room;
            }
        }
        (self.rooms.last().copied().unwrap_or(0) + 1) % self.cfg.rooms
    }

    fn join(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if self.online {
            return;
        }
        self.online = true;
        let now = ctx.now();
        while self.rooms.len() < self.cfg.rooms_per_user.min(self.cfg.rooms) {
            let room = {
                let mut rng = ctx.rng().fork();
                self.pick_new_room(&mut rng)
            };
            self.rooms.push(room);
            let channel = self.cfg.room_channel(room);
            let out = {
                let mut rng = ctx.rng().fork();
                self.client.subscribe(now, &mut rng, channel)
            };
            send_all(ctx, out);
        }
        let chat_interval = SimDuration::from_secs_f64(1.0 / self.cfg.message_hz);
        ctx.set_timer(chat_interval, TAG_CHAT);
        ctx.set_timer(self.cfg.churn_interval, TAG_CHURN);
    }

    fn chat(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if !self.online {
            return;
        }
        let now = ctx.now();
        let deferred = self.client.poll_deferred(now);
        send_all(ctx, deferred);
        if let Some(&room) = {
            let mut rng = ctx.rng().fork();
            rng.choose(&self.rooms)
        } {
            let channel = self.cfg.room_channel(room);
            let (_, out) = {
                let mut rng = ctx.rng().fork();
                self.client
                    .publish(now, &mut rng, channel, self.cfg.payload)
            };
            send_all(ctx, out);
            self.sent += 1;
        }
        let chat_interval = SimDuration::from_secs_f64(1.0 / self.cfg.message_hz);
        ctx.set_timer(chat_interval, TAG_CHAT);
    }

    fn churn(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if !self.online {
            return;
        }
        let now = ctx.now();
        if !self.rooms.is_empty() {
            let (leave_idx, join_room) = {
                let mut rng = ctx.rng().fork();
                (
                    rng.next_below(self.rooms.len() as u64) as usize,
                    self.pick_new_room(&mut rng),
                )
            };
            let leave_room = self.rooms.swap_remove(leave_idx);
            let out = self
                .client
                .unsubscribe(now, self.cfg.room_channel(leave_room));
            send_all(ctx, out);
            self.rooms.push(join_room);
            let out = {
                let mut rng = ctx.rng().fork();
                self.client
                    .subscribe(now, &mut rng, self.cfg.room_channel(join_room))
            };
            send_all(ctx, out);
        }
        self.client.expire_plan_entries(now);
        let out = {
            let mut rng = ctx.rng().fork();
            self.client.liveness_actions(now, &mut rng)
        };
        send_all(ctx, out);
        ctx.set_timer(self.cfg.churn_interval, TAG_CHURN);
    }
}

fn send_all(ctx: &mut dyn ActorContext<Msg>, out: Vec<(NodeId, Msg)>) {
    for (to, msg) in out {
        let _ = ctx.send(to, msg);
    }
}

impl Actor<Msg> for ChatUser {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let (events, out) = {
            let mut rng = ctx.rng().fork();
            self.client.on_message(now, &mut rng, from, msg)
        };
        send_all(ctx, out);
        for event in events {
            match event {
                ClientEvent::Delivery(p) => {
                    self.received += 1;
                    if p.publisher == self.client.node() {
                        self.trace
                            .record_response(now, now.saturating_since(p.sent_at));
                    }
                }
                ClientEvent::SubscriptionsLost { channels, .. } => {
                    for ch in channels {
                        self.trace.record_lost_subscription();
                        // Still a member: rejoin the room.
                        let rank = ch.0.wrapping_sub(ROOM_BASE) as usize;
                        if self.online && self.rooms.contains(&rank) {
                            let out = {
                                let mut rng = ctx.rng().fork();
                                self.client.subscribe(now, &mut rng, ch)
                            };
                            send_all(ctx, out);
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        match tag {
            TAG_JOIN => self.join(ctx),
            TAG_CHAT => self.chat(ctx),
            TAG_CHURN => self.churn(ctx),
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn room_channels_are_namespaced() {
        let cfg = ChatConfig::default();
        assert_eq!(cfg.room_channel(0), ChannelId(ROOM_BASE));
        assert_eq!(cfg.room_channel(7), ChannelId(ROOM_BASE + 7));
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = ChatConfig::default();
        assert!(cfg.rooms_per_user <= cfg.rooms);
        assert!(cfg.message_hz > 0.0);
    }
}
