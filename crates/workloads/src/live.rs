//! Live-tier ports of the workload generators: the same movement /
//! room-membership / flash-schedule logic that drives the simulator
//! actors, re-expressed as pure step functions a *live* harness can
//! pull from.
//!
//! A [`LiveWorkload`] is deliberately free of any networking type: it
//! answers "which string channels does virtual client `v` want at step
//! `s`?" and "which publications happen during step `s`?". The
//! `dynamoth-bench` scale harness multiplexes those answers over a
//! bounded pool of real [`RoutedClient`] connections, so a single
//! process can drive 10^5–10^6 logical clients against live brokers —
//! the MigratoryData-style benchmarking shape — without 10^5 sockets.
//!
//! Determinism: every implementation derives all randomness from the
//! seed it was built with, so a run is reproducible from `(workload
//! config, seed)` alone.
//!
//! [`RoutedClient`]: dynamoth_pubsub::RoutedClient

use dynamoth_sim::{SimRng, Zipf};

use crate::chat::ChatConfig;
use crate::rgame::RGameConfig;

/// One publication emitted by a workload step: virtual publisher
/// `vpub` sends `payload` filler bytes on `channel`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivePublish {
    /// Virtual publisher identity — its own wire-id namespace in the
    /// harness accounting.
    pub vpub: usize,
    /// Live-tier channel name.
    pub channel: String,
    /// Application payload size in bytes (the harness adds its own
    /// accounting header).
    pub payload: usize,
}

/// A workload the live scale harness can drive, advanced in discrete
/// steps (the harness maps one step to one publish tick).
///
/// Contract: the harness calls [`LiveWorkload::step`] exactly once per
/// step, in order, and may then query [`LiveWorkload::subscriptions`]
/// for any virtual client; `subscriptions` reflects the state *after*
/// the last `step` call (players have moved, waves have arrived).
pub trait LiveWorkload {
    /// Short scenario name, used in benchmark output.
    fn name(&self) -> &'static str;
    /// Total virtual-client population.
    fn clients(&self) -> usize;
    /// Virtual clients active at `step` — always a prefix `0..active`
    /// of the population, so churn is expressed by the count moving.
    fn active(&self, step: usize) -> usize;
    /// Channels virtual client `vid` wants to be subscribed to now.
    fn subscriptions(&self, vid: usize) -> Vec<String>;
    /// Whether `step` can change the subscriptions of already-active
    /// clients (player movement). When `false`, the harness skips the
    /// per-step reconcile sweep over the whole population.
    fn subscriptions_change_on_step(&self) -> bool {
        false
    }
    /// Advances the workload one step and returns the publications
    /// emitted during it.
    fn step(&mut self, step: usize) -> Vec<LivePublish>;
}

/// The live channel name of an RGame tile.
pub fn tile_channel_name(grid: usize, x: f64, y: f64) -> String {
    let gx = (x.floor() as usize).min(grid - 1);
    let gy = (y.floor() as usize).min(grid - 1);
    format!("tile.{gx}.{gy}")
}

/// The live channel name of a chat room rank.
pub fn room_channel_name(rank: usize) -> String {
    format!("room.{rank}")
}

struct LivePlayer {
    x: f64,
    y: f64,
    wx: f64,
    wy: f64,
    pause_steps: u32,
    rng: SimRng,
}

/// RGame on the live tier: `players` AI players walk a `grid × grid`
/// tile world with POI-biased waypoints (the same movement rules as the
/// simulator's [`Player`](crate::rgame::Player) actor), each subscribed
/// to the tile it stands on and publishing its state update there every
/// step.
pub struct LiveRGame {
    cfg: RGameConfig,
    /// Steps per second the harness runs, used to scale per-step
    /// movement to the configured tiles-per-second speed.
    step_hz: f64,
    players: Vec<LivePlayer>,
}

impl LiveRGame {
    /// Builds the world with every player at a deterministic position.
    pub fn new(cfg: RGameConfig, players: usize, step_hz: f64, seed: u64) -> LiveRGame {
        let mut root = SimRng::new(seed);
        let players = (0..players)
            .map(|_| {
                let mut rng = root.fork();
                let g = cfg.grid as f64;
                let (x, y) = (rng.range_f64(0.0, g), rng.range_f64(0.0, g));
                let (wx, wy) = waypoint(&cfg, &mut rng);
                LivePlayer {
                    x,
                    y,
                    wx,
                    wy,
                    pause_steps: 0,
                    rng,
                }
            })
            .collect();
        LiveRGame {
            cfg,
            step_hz,
            players,
        }
    }

    /// The world configuration.
    pub fn config(&self) -> &RGameConfig {
        &self.cfg
    }
}

/// Picks a waypoint: POI-biased with probability `poi_bias`, uniform
/// otherwise — identical skew rules to the simulator player.
fn waypoint(cfg: &RGameConfig, rng: &mut SimRng) -> (f64, f64) {
    let g = cfg.grid as f64;
    if cfg.poi_count > 0 && rng.chance(cfg.poi_bias) {
        let (px, py) = cfg.poi(rng.next_below(cfg.poi_count as u64) as usize);
        let x = (px + rng.range_f64(-cfg.poi_jitter, cfg.poi_jitter)).clamp(0.0, g - 1e-9);
        let y = (py + rng.range_f64(-cfg.poi_jitter, cfg.poi_jitter)).clamp(0.0, g - 1e-9);
        (x, y)
    } else {
        (rng.range_f64(0.0, g), rng.range_f64(0.0, g))
    }
}

impl LiveWorkload for LiveRGame {
    fn name(&self) -> &'static str {
        "rgame"
    }

    fn clients(&self) -> usize {
        self.players.len()
    }

    fn active(&self, _step: usize) -> usize {
        self.players.len()
    }

    fn subscriptions(&self, vid: usize) -> Vec<String> {
        let p = &self.players[vid];
        vec![tile_channel_name(self.cfg.grid, p.x, p.y)]
    }

    fn subscriptions_change_on_step(&self) -> bool {
        true
    }

    fn step(&mut self, _step: usize) -> Vec<LivePublish> {
        let per_step = self.cfg.speed / self.step_hz;
        let pause_steps = (self.cfg.pause.as_micros() as f64 / 1e6 * self.step_hz) as u32;
        let payload = self.cfg.payload as usize;
        let grid = self.cfg.grid;
        let mut out = Vec::with_capacity(self.players.len());
        for (vid, p) in self.players.iter_mut().enumerate() {
            if p.pause_steps > 0 {
                p.pause_steps -= 1;
            } else {
                let (dx, dy) = (p.wx - p.x, p.wy - p.y);
                let dist = (dx * dx + dy * dy).sqrt();
                if dist <= per_step {
                    p.x = p.wx;
                    p.y = p.wy;
                    p.pause_steps = pause_steps;
                    let (wx, wy) = waypoint(&self.cfg, &mut p.rng);
                    p.wx = wx;
                    p.wy = wy;
                } else {
                    p.x += dx / dist * per_step;
                    p.y += dy / dist * per_step;
                }
            }
            out.push(LivePublish {
                vpub: vid,
                channel: tile_channel_name(grid, p.x, p.y),
                payload,
            });
        }
        out
    }
}

/// Chat on the live tier: each user is a member of a few Zipf-popular
/// rooms (static membership — the harness exercises churn via flash
/// crowds instead) and sends a message into one of them with
/// probability `message_hz / step_hz` per step.
pub struct LiveChat {
    cfg: ChatConfig,
    step_hz: f64,
    memberships: Vec<Vec<usize>>,
    rng: SimRng,
}

impl LiveChat {
    /// Builds the room memberships deterministically from `seed`.
    pub fn new(cfg: ChatConfig, users: usize, step_hz: f64, seed: u64) -> LiveChat {
        let zipf = Zipf::new(cfg.rooms, cfg.zipf_exponent);
        let mut rng = SimRng::new(seed);
        let memberships = (0..users)
            .map(|_| {
                let mut rooms: Vec<usize> = Vec::with_capacity(cfg.rooms_per_user);
                while rooms.len() < cfg.rooms_per_user.min(cfg.rooms) {
                    let rank = zipf.sample(&mut rng);
                    if !rooms.contains(&rank) {
                        rooms.push(rank);
                    }
                }
                rooms
            })
            .collect();
        LiveChat {
            cfg,
            step_hz,
            memberships,
            rng,
        }
    }
}

impl LiveWorkload for LiveChat {
    fn name(&self) -> &'static str {
        "chat"
    }

    fn clients(&self) -> usize {
        self.memberships.len()
    }

    fn active(&self, _step: usize) -> usize {
        self.memberships.len()
    }

    fn subscriptions(&self, vid: usize) -> Vec<String> {
        self.memberships[vid]
            .iter()
            .map(|&r| room_channel_name(r))
            .collect()
    }

    fn step(&mut self, _step: usize) -> Vec<LivePublish> {
        let p = (self.cfg.message_hz / self.step_hz).min(1.0);
        let payload = self.cfg.payload as usize;
        let mut out = Vec::new();
        for (vid, rooms) in self.memberships.iter().enumerate() {
            if self.rng.chance(p) {
                if let Some(&room) = self.rng.choose(rooms) {
                    out.push(LivePublish {
                        vpub: vid,
                        channel: room_channel_name(room),
                        payload,
                    });
                }
            }
        }
        out
    }
}

/// A flash crowd on the live tier (the Experiment-4 shape): a base
/// population follows an event channel; at `flash_at` a wave of extra
/// subscribers floods in, and at `flash_end` it drains away. A small
/// set of broadcasters publishes every step throughout.
pub struct LiveFlash {
    /// Steady-state subscribers.
    pub base: usize,
    /// Extra subscribers at the flash peak.
    pub wave: usize,
    /// Step at which the wave starts arriving.
    pub flash_at: usize,
    /// Steps the wave takes to fully arrive (linear ramp).
    pub ramp_steps: usize,
    /// Step at which the wave starts leaving (same ramp down).
    pub flash_end: usize,
    /// Broadcasting virtual publishers.
    pub broadcasters: usize,
    /// Payload bytes per broadcast.
    pub payload: usize,
}

/// The single hot channel every flash-crowd subscriber follows.
pub const FLASH_CHANNEL: &str = "flash.event";

/// Side channels the flash wave also joins, so churn is visible at the
/// wire (the hot channel alone is kept subscribed by the base cohort on
/// every pooled connection, making wave joins refcount-only).
pub const FLASH_WAVE_CHANNELS: usize = 61;

impl LiveWorkload for LiveFlash {
    fn name(&self) -> &'static str {
        "flash"
    }

    fn clients(&self) -> usize {
        self.base + self.wave
    }

    fn active(&self, step: usize) -> usize {
        let ramp = self.ramp_steps.max(1);
        let arrived = if step < self.flash_at {
            0
        } else {
            (self.wave * (step - self.flash_at + 1) / ramp).min(self.wave)
        };
        let left = if step < self.flash_end {
            0
        } else {
            (self.wave * (step - self.flash_end + 1) / ramp).min(self.wave)
        };
        self.base + arrived - left.min(arrived)
    }

    fn subscriptions(&self, vid: usize) -> Vec<String> {
        if vid < self.base {
            vec![FLASH_CHANNEL.to_owned()]
        } else {
            vec![
                FLASH_CHANNEL.to_owned(),
                format!("flash.wave.{}", vid % FLASH_WAVE_CHANNELS),
            ]
        }
    }

    fn step(&mut self, _step: usize) -> Vec<LivePublish> {
        (0..self.broadcasters)
            .map(|b| LivePublish {
                vpub: b,
                channel: FLASH_CHANNEL.to_owned(),
                payload: self.payload,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rgame_is_deterministic_and_stays_in_the_world() {
        let cfg = RGameConfig::default();
        let mut a = LiveRGame::new(cfg.clone(), 20, 3.0, 42);
        let mut b = LiveRGame::new(cfg.clone(), 20, 3.0, 42);
        for step in 0..50 {
            let pa = a.step(step);
            let pb = b.step(step);
            assert_eq!(pa, pb, "same seed must produce the same schedule");
            assert_eq!(pa.len(), 20, "every player publishes every step");
            for p in &pa {
                let (gx, gy) = {
                    let rest = p.channel.strip_prefix("tile.").expect("tile channel");
                    let (x, y) = rest.split_once('.').expect("x.y");
                    (
                        x.parse::<usize>().expect("x"),
                        y.parse::<usize>().expect("y"),
                    )
                };
                assert!(gx < cfg.grid && gy < cfg.grid, "outside the world");
            }
        }
        // Subscriptions track positions: each player subscribes to the
        // tile it last published on.
        for vid in 0..20 {
            assert_eq!(a.subscriptions(vid).len(), 1);
        }
    }

    #[test]
    fn rgame_movement_visits_multiple_tiles() {
        let mut w = LiveRGame::new(
            RGameConfig {
                pause: dynamoth_sim::SimDuration::from_secs(0),
                ..RGameConfig::default()
            },
            5,
            3.0,
            7,
        );
        let mut tiles: std::collections::HashSet<String> = std::collections::HashSet::new();
        for step in 0..600 {
            for p in w.step(step) {
                tiles.insert(p.channel);
            }
        }
        assert!(tiles.len() > 3, "players never moved: {tiles:?}");
    }

    #[test]
    fn chat_memberships_are_skewed_and_messages_land_in_joined_rooms() {
        let cfg = ChatConfig::default();
        let mut w = LiveChat::new(cfg.clone(), 200, 2.0, 11);
        let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for vid in 0..200 {
            let rooms = w.subscriptions(vid);
            assert_eq!(rooms.len(), cfg.rooms_per_user);
            for r in rooms {
                *counts.entry(r).or_insert(0) += 1;
            }
        }
        // Zipf skew: rank 0 is the most popular room by a wide margin.
        let top = counts.get("room.0").copied().unwrap_or(0);
        let median_rank = counts
            .get(&room_channel_name(cfg.rooms / 2))
            .copied()
            .unwrap_or(0);
        assert!(
            top > median_rank,
            "no popularity skew: {top} vs {median_rank}"
        );
        for step in 0..50 {
            for p in w.step(step) {
                assert!(
                    w.subscriptions(p.vpub).contains(&p.channel),
                    "user {} sent into a room it is not a member of",
                    p.vpub
                );
            }
        }
    }

    #[test]
    fn flash_wave_arrives_and_leaves() {
        let w = LiveFlash {
            base: 100,
            wave: 400,
            flash_at: 10,
            ramp_steps: 5,
            flash_end: 30,
            broadcasters: 2,
            payload: 64,
        };
        assert_eq!(w.active(0), 100);
        assert_eq!(w.active(9), 100);
        assert_eq!(w.active(20), 500);
        assert!(w.active(12) > 100 && w.active(12) < 500, "ramping in");
        assert_eq!(w.active(60), 100, "wave fully left");
        assert_eq!(w.clients(), 500);
        assert_eq!(w.subscriptions(0), vec![FLASH_CHANNEL.to_owned()]);
        assert_eq!(
            w.subscriptions(100).len(),
            2,
            "wave members carry a churn-visible side channel"
        );
    }
}
