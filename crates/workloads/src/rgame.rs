//! RGame: the multiplayer-game workload of the paper's Experiments 2
//! and 3 (§V-A).
//!
//! The world is a square grid of tiles. Each player is driven by a
//! simple AI that repeatedly picks a random waypoint, walks towards it
//! and pauses briefly. A player subscribes to the channel of the tile it
//! stands on and publishes its position updates on that same channel, so
//! everyone in a tile sees everyone else. Movement between tiles
//! produces a steady stream of subscriptions/unsubscriptions, and
//! waypoint selection is biased towards a handful of points of interest,
//! producing the skewed, time-varying channel popularity that separates
//! Dynamoth from consistent hashing.
//!
//! Response time is measured exactly as in the paper: the time between a
//! player publishing a state update and receiving its own copy back from
//! the pub/sub layer (players are subscribed to their own tile).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use dynamoth_core::{ChannelId, ClientEvent, DynamothClient, Msg, TraceHandle};
use dynamoth_sim::{Actor, ActorContext, NodeId, SimDuration, SimRng, SimTime};

/// Timer tag: the player joins the game.
pub const TAG_JOIN: u64 = 1;
/// Timer tag: periodic movement + state-update publication.
pub const TAG_UPDATE: u64 = 2;
/// Timer tag: the player leaves the game.
pub const TAG_LEAVE: u64 = 3;
/// Timer tag: periodic local-plan maintenance.
pub const TAG_MAINT: u64 = 4;

/// Parameters of the RGame world.
#[derive(Debug, Clone)]
pub struct RGameConfig {
    /// The world is `grid × grid` tiles.
    pub grid: usize,
    /// Movement speed in tiles per second.
    pub speed: f64,
    /// State updates published per second (3 in the paper).
    pub update_hz: f64,
    /// Application payload of one state update, bytes.
    pub payload: u32,
    /// Pause after reaching a waypoint.
    pub pause: SimDuration,
    /// Number of points of interest.
    pub poi_count: usize,
    /// Probability that a new waypoint is near a point of interest
    /// (hotspot skew).
    pub poi_bias: f64,
    /// Waypoint scatter around a point of interest, in tiles. Small
    /// values keep hotspot visitors inside the POI tile, producing the
    /// skewed channel popularity that separates Dynamoth from
    /// consistent hashing.
    pub poi_jitter: f64,
}

impl Default for RGameConfig {
    fn default() -> Self {
        RGameConfig {
            grid: 5,
            speed: 1.0,
            update_hz: 3.0,
            payload: 600, // 664 bytes on the wire with the header
            pause: SimDuration::from_secs(30),
            poi_count: 5,
            poi_bias: 0.25,
            poi_jitter: 0.35,
        }
    }
}

impl RGameConfig {
    /// The tile channel for world position `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the position is outside the world.
    pub fn tile_channel(&self, x: f64, y: f64) -> ChannelId {
        let gx = (x.floor() as usize).min(self.grid - 1);
        let gy = (y.floor() as usize).min(self.grid - 1);
        ChannelId((gy * self.grid + gx) as u64)
    }

    /// Center position of the `k`-th point of interest (deterministic).
    pub fn poi(&self, k: usize) -> (f64, f64) {
        let g = self.grid as f64;
        let x = ((k * 7 + 3) % self.grid) as f64 + 0.5;
        let y = ((k * 3 + 5) % self.grid) as f64 + 0.5;
        (x.min(g - 0.5), y.min(g - 0.5))
    }

    /// Seconds between two update steps.
    pub fn update_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.update_hz)
    }
}

/// Shared, thread-safe live-player counter, used to plot the paper's
/// player series.
#[derive(Debug, Clone, Default)]
pub struct PlayerCounter(Arc<AtomicUsize>);

impl PlayerCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of active players.
    pub fn count(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }

    fn add(&self, delta: isize) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (current as isize + delta).max(0) as usize;
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Motion {
    Walking { target: (f64, f64) },
    Paused { until: SimTime },
}

/// A simulated player: AI movement plus the Dynamoth client library.
#[derive(Debug)]
pub struct Player {
    client: DynamothClient,
    cfg: Arc<RGameConfig>,
    trace: TraceHandle,
    counter: PlayerCounter,
    pos: (f64, f64),
    motion: Motion,
    tile: Option<ChannelId>,
    active: bool,
}

impl Player {
    /// Creates an (inactive) player. Arm a [`TAG_JOIN`] timer to bring
    /// it into the game.
    pub fn new(
        client: DynamothClient,
        cfg: Arc<RGameConfig>,
        trace: TraceHandle,
        counter: PlayerCounter,
    ) -> Self {
        Player {
            client,
            cfg,
            trace,
            counter,
            pos: (0.0, 0.0),
            motion: Motion::Paused {
                until: SimTime::ZERO,
            },
            tile: None,
            active: false,
        }
    }

    /// `true` while the player is in the game.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// The player's client library (inspection).
    pub fn client(&self) -> &DynamothClient {
        &self.client
    }

    fn random_position(cfg: &RGameConfig, rng: &mut SimRng) -> (f64, f64) {
        let g = cfg.grid as f64;
        (rng.range_f64(0.0, g), rng.range_f64(0.0, g))
    }

    fn pick_waypoint(&self, rng: &mut SimRng) -> (f64, f64) {
        let g = self.cfg.grid as f64;
        if self.cfg.poi_count > 0 && rng.chance(self.cfg.poi_bias) {
            let (px, py) = self
                .cfg
                .poi(rng.next_below(self.cfg.poi_count as u64) as usize);
            let j = self.cfg.poi_jitter;
            (
                (px + rng.range_f64(-j, j)).clamp(0.0, g - 1e-9),
                (py + rng.range_f64(-j, j)).clamp(0.0, g - 1e-9),
            )
        } else {
            Self::random_position(&self.cfg, rng)
        }
    }

    fn join(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if self.active {
            return;
        }
        self.active = true;
        self.counter.add(1);
        self.trace.record_players(ctx.now(), self.counter.count());
        self.pos = Self::random_position(&self.cfg, ctx.rng());
        let target = self.pick_waypoint(ctx.rng());
        self.motion = Motion::Walking { target };
        self.enter_tile(ctx);
        ctx.set_timer(self.cfg.update_interval(), TAG_UPDATE);
        ctx.set_timer(SimDuration::from_secs(10), TAG_MAINT);
    }

    fn leave(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if !self.active {
            return;
        }
        self.active = false;
        self.counter.add(-1);
        self.trace.record_players(ctx.now(), self.counter.count());
        if let Some(tile) = self.tile.take() {
            let out = self.client.unsubscribe(ctx.now(), tile);
            send_all(ctx, out);
        }
    }

    fn enter_tile(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        let tile = self.cfg.tile_channel(self.pos.0, self.pos.1);
        if self.tile == Some(tile) {
            return;
        }
        let now = ctx.now();
        if let Some(old) = self.tile.take() {
            let out = self.client.unsubscribe(now, old);
            send_all(ctx, out);
        }
        let out = {
            let rng = ctx.rng();
            // Split borrows: rng comes from ctx, messages go out after.
            let mut tmp_rng = rng.fork();
            self.client.subscribe(now, &mut tmp_rng, tile)
        };
        send_all(ctx, out);
        self.tile = Some(tile);
    }

    fn step(&mut self, ctx: &mut dyn ActorContext<Msg>) {
        if !self.active {
            return;
        }
        let now = ctx.now();
        let deferred = self.client.poll_deferred(now);
        send_all(ctx, deferred);
        let dt = 1.0 / self.cfg.update_hz;
        match self.motion {
            Motion::Paused { until } => {
                if now >= until {
                    let target = self.pick_waypoint(ctx.rng());
                    self.motion = Motion::Walking { target };
                }
            }
            Motion::Walking { target } => {
                let (dx, dy) = (target.0 - self.pos.0, target.1 - self.pos.1);
                let dist = (dx * dx + dy * dy).sqrt();
                let step = self.cfg.speed * dt;
                if dist <= step {
                    self.pos = target;
                    self.motion = Motion::Paused {
                        until: now + self.cfg.pause,
                    };
                } else {
                    self.pos.0 += dx / dist * step;
                    self.pos.1 += dy / dist * step;
                }
                self.enter_tile(ctx);
            }
        }
        // Publish a state update on the current tile regardless of
        // motion state (the paper's players publish continuously while
        // in the game).
        if let Some(tile) = self.tile {
            let (_, out) = {
                let mut tmp_rng = ctx.rng().fork();
                self.client
                    .publish(now, &mut tmp_rng, tile, self.cfg.payload)
            };
            send_all(ctx, out);
        }
        ctx.set_timer(self.cfg.update_interval(), TAG_UPDATE);
    }
}

fn send_all(ctx: &mut dyn ActorContext<Msg>, out: Vec<(NodeId, Msg)>) {
    for (to, msg) in out {
        let _ = ctx.send(to, msg);
    }
}

impl Actor<Msg> for Player {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Msg>, from: NodeId, msg: Msg) {
        let now = ctx.now();
        let (events, out) = {
            let mut tmp_rng = ctx.rng().fork();
            self.client.on_message(now, &mut tmp_rng, from, msg)
        };
        send_all(ctx, out);
        for event in events {
            match event {
                ClientEvent::Delivery(p) => {
                    if p.publisher == self.client.node() {
                        // Echo of our own state update: the paper's
                        // response-time metric.
                        self.trace
                            .record_response(now, now.saturating_since(p.sent_at));
                    }
                }
                ClientEvent::SubscriptionsLost { channels, .. } => {
                    for ch in channels {
                        self.trace.record_lost_subscription();
                        // The player is still in the game: re-subscribe
                        // to its current tile.
                        if self.active && self.tile == Some(ch) {
                            let out = {
                                let mut tmp_rng = ctx.rng().fork();
                                self.client.subscribe(now, &mut tmp_rng, ch)
                            };
                            send_all(ctx, out);
                        }
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Msg>, tag: u64) {
        match tag {
            TAG_JOIN => self.join(ctx),
            TAG_UPDATE => self.step(ctx),
            TAG_LEAVE => self.leave(ctx),
            TAG_MAINT => {
                let now = ctx.now();
                self.client.expire_plan_entries(now);
                let out = {
                    let mut rng = ctx.rng().fork();
                    self.client.liveness_actions(now, &mut rng)
                };
                send_all(ctx, out);
                if self.active {
                    ctx.set_timer(SimDuration::from_secs(10), TAG_MAINT);
                }
            }
            _ => {}
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_channels_partition_the_world() {
        let cfg = RGameConfig {
            grid: 10,
            ..Default::default()
        };
        assert_eq!(cfg.tile_channel(0.0, 0.0), ChannelId(0));
        assert_eq!(cfg.tile_channel(9.9, 0.0), ChannelId(9));
        assert_eq!(cfg.tile_channel(0.0, 1.0), ChannelId(10));
        assert_eq!(cfg.tile_channel(9.9, 9.9), ChannelId(99));
        // Out-of-range positions clamp to the border tile.
        assert_eq!(cfg.tile_channel(10.3, 10.3), ChannelId(99));
        // The default world is 5×5.
        let d = RGameConfig::default();
        assert_eq!(d.tile_channel(4.9, 4.9), ChannelId(24));
    }

    #[test]
    fn pois_are_inside_the_world() {
        let cfg = RGameConfig::default();
        for k in 0..cfg.poi_count {
            let (x, y) = cfg.poi(k);
            assert!(x >= 0.0 && x < cfg.grid as f64);
            assert!(y >= 0.0 && y < cfg.grid as f64);
        }
    }

    #[test]
    fn player_counter_tracks_adds_and_removes() {
        let c = PlayerCounter::new();
        let c2 = c.clone();
        c.add(1);
        c.add(1);
        c2.add(-1);
        assert_eq!(c.count(), 1);
        c.add(-5);
        assert_eq!(c.count(), 0); // saturates at zero
    }

    #[test]
    fn update_interval_matches_rate() {
        let cfg = RGameConfig {
            update_hz: 4.0,
            ..Default::default()
        };
        assert_eq!(cfg.update_interval(), SimDuration::from_millis(250));
    }
}
