//! Latency models for the simulated network.
//!
//! The Dynamoth paper emulates a cloud deployment by delaying messages
//! with samples from the King dataset (measured RTTs between arbitrary
//! Internet hosts, filtered to North America). The dataset itself is not
//! redistributable, so [`EmpiricalLatency::king_north_america`] builds a
//! synthetic table from a log-normal distribution fitted to the published
//! King statistics: a one-way median around 35 ms with a long right tail.
//! Experiments only consume the distribution, so any table with the same
//! median/tail shape reproduces the paper's response-time floor.

use dynamoth_sim::{SimDuration, SimRng};

/// A one-way network delay distribution.
///
/// # Examples
///
/// ```
/// use dynamoth_net::LatencyModel;
/// use dynamoth_sim::{SimDuration, SimRng};
///
/// let model = LatencyModel::Constant(SimDuration::from_millis(5));
/// let mut rng = SimRng::new(1);
/// assert_eq!(model.sample(&mut rng), SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone)]
pub enum LatencyModel {
    /// Always the same delay (LAN links, unit tests).
    Constant(SimDuration),
    /// Uniformly distributed delay in `[lo, hi)`.
    Uniform(SimDuration, SimDuration),
    /// Sampled from an empirical table of delays.
    Empirical(EmpiricalLatency),
}

impl LatencyModel {
    /// Draws one delay sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform(lo, hi) => {
                if hi <= lo {
                    *lo
                } else {
                    SimDuration::from_micros(rng.range_u64(lo.as_micros(), hi.as_micros()))
                }
            }
            LatencyModel::Empirical(table) => table.sample(rng),
        }
    }
}

/// An empirical latency table: a fixed collection of one-way delays that
/// is sampled uniformly, mimicking how the paper replays the King
/// dataset.
#[derive(Debug, Clone)]
pub struct EmpiricalLatency {
    samples_us: Vec<u64>,
}

impl EmpiricalLatency {
    /// Builds a table from explicit one-way delays in microseconds.
    ///
    /// # Panics
    ///
    /// Panics if `samples_us` is empty.
    pub fn from_micros(samples_us: Vec<u64>) -> Self {
        assert!(!samples_us.is_empty(), "latency table must not be empty");
        EmpiricalLatency { samples_us }
    }

    /// Synthetic stand-in for the King dataset filtered to North
    /// America: `n` one-way delays drawn from a log-normal distribution
    /// with median ≈ 35 ms and σ = 0.5, clamped to `[5 ms, 400 ms]`.
    ///
    /// The construction is deterministic in `seed`.
    pub fn king_north_america(n: usize, seed: u64) -> Self {
        assert!(n > 0, "latency table must not be empty");
        let mut rng = SimRng::new(seed);
        let mu = (35_000.0_f64).ln(); // microseconds
        let sigma = 0.5;
        let samples_us = (0..n)
            .map(|_| (rng.log_normal(mu, sigma) as u64).clamp(5_000, 400_000))
            .collect();
        EmpiricalLatency { samples_us }
    }

    /// Draws one delay uniformly from the table.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let idx = rng.next_below(self.samples_us.len() as u64) as usize;
        SimDuration::from_micros(self.samples_us[idx])
    }

    /// Number of entries in the table.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// `true` if the table has no entries (never true for constructed
    /// tables).
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// The median of the table, useful for calibrating experiments.
    pub fn median(&self) -> SimDuration {
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        SimDuration::from_micros(sorted[sorted.len() / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_model_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(7));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), SimDuration::from_millis(7));
        }
    }

    #[test]
    fn uniform_model_stays_in_range() {
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        let m = LatencyModel::Uniform(lo, hi);
        let mut rng = SimRng::new(2);
        for _ in 0..1_000 {
            let d = m.sample(&mut rng);
            assert!(d >= lo && d < hi, "{d:?}");
        }
    }

    #[test]
    fn uniform_model_with_empty_range_returns_lo() {
        let lo = SimDuration::from_millis(10);
        let m = LatencyModel::Uniform(lo, lo);
        assert_eq!(m.sample(&mut SimRng::new(3)), lo);
    }

    #[test]
    fn king_table_median_is_about_35ms() {
        let table = EmpiricalLatency::king_north_america(5_000, 42);
        let median = table.median().as_millis_f64();
        assert!((25.0..45.0).contains(&median), "median {median} ms");
    }

    #[test]
    fn king_table_is_clamped() {
        let table = EmpiricalLatency::king_north_america(5_000, 42);
        let mut rng = SimRng::new(4);
        for _ in 0..5_000 {
            let d = table.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(5));
            assert!(d <= SimDuration::from_millis(400));
        }
    }

    #[test]
    fn king_table_is_deterministic() {
        let a = EmpiricalLatency::king_north_america(100, 9);
        let b = EmpiricalLatency::king_north_america(100, 9);
        assert_eq!(a.samples_us, b.samples_us);
        let c = EmpiricalLatency::king_north_america(100, 10);
        assert_ne!(a.samples_us, c.samples_us);
    }

    #[test]
    fn empirical_sampling_covers_table() {
        let table = EmpiricalLatency::from_micros(vec![1_000, 2_000, 3_000]);
        let mut rng = SimRng::new(5);
        let mut seen = [false; 3];
        for _ in 0..300 {
            let d = table.sample(&mut rng).as_micros();
            seen[(d / 1_000 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_table_panics() {
        let _ = EmpiricalLatency::from_micros(vec![]);
    }
}
