//! # dynamoth-net
//!
//! Simulated network substrate for the Dynamoth reproduction: WAN/LAN
//! latency models (including a synthetic stand-in for the King dataset
//! used by the paper) and bandwidth-constrained egress queues whose
//! saturation behaviour drives every experiment in the evaluation.
//!
//! The crate provides [`CloudTransport`], a
//! [`Transport`](dynamoth_sim::Transport) implementation plugged into a
//! [`World`](dynamoth_sim::World):
//!
//! ```
//! use dynamoth_net::{CloudTransport, CloudTransportConfig};
//! use dynamoth_sim::{Message, NodeClass, World};
//!
//! #[derive(Debug)]
//! struct Payload(u32);
//! impl Message for Payload {
//!     fn wire_size(&self) -> u32 { self.0 }
//! }
//!
//! let transport = CloudTransport::new(CloudTransportConfig::default());
//! let world: World<Payload> = World::new(7, Box::new(transport));
//! assert_eq!(world.node_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bandwidth;
mod latency;
mod network;

pub use bandwidth::RateQueue;
pub use latency::{EmpiricalLatency, LatencyModel};
pub use network::{CloudTransport, CloudTransportConfig};
