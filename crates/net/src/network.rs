//! The cloud network model: a [`Transport`] combining per-node NIC
//! queues, per-connection server→client pipes with bounded output
//! buffers, LAN latency between infrastructure nodes and WAN latency
//! between clients and the cloud.
//!
//! Latency rules follow the paper's experimental setup (§V-B): a message
//! between an infrastructure node and a client (either direction) takes
//! one WAN sample; infrastructure↔infrastructure traffic stays on the
//! cloud LAN; and a client→client exchange necessarily crosses the cloud
//! twice, accumulating two WAN samples — which in our architecture
//! happens naturally because every publication is relayed by a pub/sub
//! server.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;

use dynamoth_sim::{
    NodeClass, NodeId, RouteOutcome, RouteRequest, SimDuration, SimRng, SimTime, Transport,
};

use crate::bandwidth::RateQueue;
use crate::latency::{EmpiricalLatency, LatencyModel};

/// Configuration of the [`CloudTransport`].
///
/// The defaults are calibrated so that the substrate reproduces the
/// failure modes reported in the paper (see `DESIGN.md`): an
/// infrastructure NIC carries at most 10 MB/s, a single server→client
/// connection at most 4 MB/s with an 8 MB output buffer (the Redis
/// `client-output-buffer-limit` analogue).
#[derive(Debug, Clone)]
pub struct CloudTransportConfig {
    /// One-way latency between infrastructure nodes (cloud LAN).
    pub lan_latency: SimDuration,
    /// One-way latency model between clients and the cloud (WAN).
    pub wan_latency: LatencyModel,
    /// NIC line rate of an infrastructure node, bytes/second.
    pub infra_nic_rate: f64,
    /// NIC (uplink) rate of a client node, bytes/second.
    pub client_nic_rate: f64,
    /// Per server→client connection drain rate, bytes/second.
    pub connection_rate: f64,
    /// Output-buffer limit per server→client connection, bytes. When the
    /// backlog would exceed this, the message is dropped and the sender
    /// is notified (Redis kills such client connections).
    pub connection_buffer_limit: u64,
}

impl Default for CloudTransportConfig {
    fn default() -> Self {
        CloudTransportConfig {
            lan_latency: SimDuration::from_micros(500),
            wan_latency: LatencyModel::Empirical(EmpiricalLatency::king_north_america(
                4_096, 0xD15C0,
            )),
            infra_nic_rate: 10.0e6,
            client_nic_rate: 2.5e6,
            connection_rate: 4.0e6,
            connection_buffer_limit: 8 * 1024 * 1024,
        }
    }
}

impl CloudTransportConfig {
    /// A configuration with negligible latency and generous bandwidth,
    /// useful for functional tests that should not be affected by the
    /// network model.
    pub fn fast_lan() -> Self {
        CloudTransportConfig {
            lan_latency: SimDuration::from_micros(100),
            wan_latency: LatencyModel::Constant(SimDuration::from_micros(200)),
            infra_nic_rate: 1.0e9,
            client_nic_rate: 1.0e9,
            connection_rate: 1.0e9,
            connection_buffer_limit: u64::MAX,
        }
    }
}

#[derive(Default)]
struct Books {
    nics: HashMap<NodeId, RateQueue>,
    connections: HashMap<(NodeId, NodeId), RateQueue>,
}

/// The standard network model for Dynamoth experiments. See the module
/// docs for the exact pipeline a message goes through.
pub struct CloudTransport {
    cfg: CloudTransportConfig,
    books: RefCell<Books>,
}

impl CloudTransport {
    /// Creates a transport with the given configuration.
    pub fn new(cfg: CloudTransportConfig) -> Self {
        CloudTransport {
            cfg,
            books: RefCell::new(Books::default()),
        }
    }

    /// The configuration this transport was built with.
    pub fn config(&self) -> &CloudTransportConfig {
        &self.cfg
    }

    fn nic_rate(&self, class: NodeClass) -> f64 {
        match class {
            NodeClass::Infra => self.cfg.infra_nic_rate,
            NodeClass::Client => self.cfg.client_nic_rate,
        }
    }
}

impl std::fmt::Debug for CloudTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudTransport")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl Transport for CloudTransport {
    fn route(&mut self, req: RouteRequest, rng: &mut SimRng) -> RouteOutcome {
        let earliest = req.earliest_departure.max(req.now);
        if req.from == req.to {
            // Collocated components; loopback delivery.
            return RouteOutcome::Arrive(earliest + SimDuration::from_micros(1));
        }

        // Zero-size messages model out-of-band control signals (e.g. a
        // TCP reset after an output-buffer kill): they bypass the
        // bandwidth queues and only experience propagation delay.
        if req.size == 0 {
            let latency = match (req.from_class, req.to_class) {
                (NodeClass::Infra, NodeClass::Infra) => self.cfg.lan_latency,
                _ => self.cfg.wan_latency.sample(rng),
            };
            return RouteOutcome::Arrive(earliest + latency);
        }

        let nic_rate = self.nic_rate(req.from_class);
        let books = self.books.get_mut();

        // Output-buffer admission check for server→client connections
        // (performed before any queue state is mutated so a dropped
        // message leaves no trace).
        if req.to_class == NodeClass::Client {
            let conn = books
                .connections
                .entry((req.from, req.to))
                .or_insert_with(|| RateQueue::new(self.cfg.connection_rate));
            if conn.backlog_bytes(req.now) + req.size as u64 > self.cfg.connection_buffer_limit {
                return RouteOutcome::Dropped;
            }
        }

        // Stage 1: the sender's NIC.
        let nic = books
            .nics
            .entry(req.from)
            .or_insert_with(|| RateQueue::new(nic_rate));
        let nic_done = nic.enqueue(earliest, req.size);

        // Stage 2: the per-connection pipe (server→client only).
        let pipe_done = if req.to_class == NodeClass::Client {
            let conn = books
                .connections
                .get_mut(&(req.from, req.to))
                .expect("created above");
            conn.enqueue(nic_done, req.size)
        } else {
            nic_done
        };

        // Stage 3: propagation delay.
        let latency = match (req.from_class, req.to_class) {
            (NodeClass::Infra, NodeClass::Infra) => self.cfg.lan_latency,
            (NodeClass::Client, NodeClass::Client) => {
                // Never used by Dynamoth itself (all traffic is relayed
                // through servers) but modelled per the paper: two WAN
                // samples.
                self.cfg.wan_latency.sample(rng) + self.cfg.wan_latency.sample(rng)
            }
            _ => self.cfg.wan_latency.sample(rng),
        };

        RouteOutcome::Arrive(pipe_done + latency)
    }

    fn egress_bytes(&self, node: NodeId, now: SimTime) -> u64 {
        let mut books = self.books.borrow_mut();
        books
            .nics
            .get_mut(&node)
            .map_or(0, |nic| nic.completed_bytes(now))
    }

    fn connection_backlog(&self, from: NodeId, to: NodeId, now: SimTime) -> u64 {
        let mut books = self.books.borrow_mut();
        books
            .connections
            .get_mut(&(from, to))
            .map_or(0, |c| c.backlog_bytes(now))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(
        from: u32,
        from_class: NodeClass,
        to: u32,
        to_class: NodeClass,
        size: u32,
        now_ms: u64,
    ) -> RouteRequest {
        RouteRequest {
            from: NodeId::from_index(from as usize),
            from_class,
            to: NodeId::from_index(to as usize),
            to_class,
            size,
            now: SimTime::from_millis(now_ms),
            earliest_departure: SimTime::from_millis(now_ms),
        }
    }

    fn lan_only() -> CloudTransport {
        CloudTransport::new(CloudTransportConfig {
            lan_latency: SimDuration::from_millis(1),
            wan_latency: LatencyModel::Constant(SimDuration::from_millis(40)),
            infra_nic_rate: 1_000_000.0,
            client_nic_rate: 1_000_000.0,
            connection_rate: 100_000.0,
            connection_buffer_limit: 1_000,
        })
    }

    #[test]
    fn infra_to_infra_uses_lan_latency() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let out = t.route(
            req(0, NodeClass::Infra, 1, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        // 1 ms transmission at 1 MB/s + 1 ms LAN.
        assert_eq!(out, RouteOutcome::Arrive(SimTime::from_millis(2)));
    }

    #[test]
    fn client_paths_use_wan_latency() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let out = t.route(
            req(0, NodeClass::Client, 1, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        assert_eq!(out, RouteOutcome::Arrive(SimTime::from_millis(41)));
    }

    #[test]
    fn client_to_client_takes_two_wan_samples() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        // 1 ms NIC transmission + 10 ms connection pipe (1000 B at
        // 100 kB/s) + two 40 ms WAN samples.
        let out = t.route(
            req(0, NodeClass::Client, 1, NodeClass::Client, 1_000, 0),
            &mut rng,
        );
        assert_eq!(out, RouteOutcome::Arrive(SimTime::from_millis(91)));
    }

    #[test]
    fn loopback_is_immediate() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let out = t.route(
            req(3, NodeClass::Infra, 3, NodeClass::Infra, 50_000, 7),
            &mut rng,
        );
        assert_eq!(
            out,
            RouteOutcome::Arrive(SimTime::from_millis(7) + SimDuration::from_micros(1))
        );
    }

    #[test]
    fn nic_saturation_delays_messages() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        // Two 1000-byte messages back to back on a 1 MB/s NIC: the second
        // waits for the first.
        let a = t.route(
            req(0, NodeClass::Infra, 1, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        let b = t.route(
            req(0, NodeClass::Infra, 2, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        assert_eq!(a, RouteOutcome::Arrive(SimTime::from_millis(2)));
        assert_eq!(b, RouteOutcome::Arrive(SimTime::from_millis(3)));
    }

    #[test]
    fn connection_buffer_overflow_drops() {
        let mut t = lan_only(); // buffer limit 1000 bytes
        let mut rng = SimRng::new(1);
        // Connection drains at 100 kB/s, so an 800-byte message lingers.
        let a = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 800, 0),
            &mut rng,
        );
        assert!(matches!(a, RouteOutcome::Arrive(_)));
        // 800 backlog + 800 > 1000 → dropped.
        let b = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 800, 0),
            &mut rng,
        );
        assert_eq!(b, RouteOutcome::Dropped);
        // A different client connection is unaffected.
        let c = t.route(
            req(0, NodeClass::Infra, 10, NodeClass::Client, 800, 0),
            &mut rng,
        );
        assert!(matches!(c, RouteOutcome::Arrive(_)));
    }

    #[test]
    fn buffer_drains_over_time() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let _ = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 800, 0),
            &mut rng,
        );
        // After the connection drains (800 B at 100 kB/s = 8 ms) a new
        // message is accepted again.
        let b = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 800, 20),
            &mut rng,
        );
        assert!(matches!(b, RouteOutcome::Arrive(_)));
    }

    #[test]
    fn egress_accounting_tracks_carried_bytes() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let from = NodeId::from_index(0);
        let _ = t.route(
            req(0, NodeClass::Infra, 1, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        let _ = t.route(
            req(0, NodeClass::Infra, 2, NodeClass::Infra, 1_000, 0),
            &mut rng,
        );
        assert_eq!(t.egress_bytes(from, SimTime::from_millis(0)), 0);
        assert_eq!(t.egress_bytes(from, SimTime::from_millis(1)), 1_000);
        assert_eq!(t.egress_bytes(from, SimTime::from_secs(1)), 2_000);
        // Unknown nodes have no egress.
        assert_eq!(
            t.egress_bytes(NodeId::from_index(99), SimTime::from_secs(1)),
            0
        );
    }

    #[test]
    fn dropped_message_leaves_no_nic_trace() {
        let mut t = lan_only();
        let mut rng = SimRng::new(1);
        let from = NodeId::from_index(0);
        let _ = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 900, 0),
            &mut rng,
        );
        let dropped = t.route(
            req(0, NodeClass::Infra, 9, NodeClass::Client, 900, 0),
            &mut rng,
        );
        assert_eq!(dropped, RouteOutcome::Dropped);
        // Only the first message's bytes ever cross the NIC.
        assert_eq!(t.egress_bytes(from, SimTime::from_secs(10)), 900);
    }

    #[test]
    fn default_config_is_sane() {
        let cfg = CloudTransportConfig::default();
        assert!(cfg.infra_nic_rate > cfg.connection_rate);
        assert!(cfg.connection_buffer_limit > 0);
    }
}
