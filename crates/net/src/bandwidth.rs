//! Bandwidth modelling primitives.
//!
//! A [`RateQueue`] models a FIFO pipe that drains at a fixed byte rate:
//! the sending NIC of each node, and each server→client connection
//! (Redis' per-client output buffer). Messages entering the pipe finish
//! transmitting `size / rate` after the pipe becomes free, which yields
//! the queueing delays that dominate response time as a pub/sub server
//! approaches saturation — the central effect in the paper's
//! experiments.

use std::collections::VecDeque;

use dynamoth_sim::{SimDuration, SimTime};

/// A FIFO pipe draining at a fixed rate, with completion-time accounting
/// for backlog and carried-byte queries.
///
/// # Examples
///
/// ```
/// use dynamoth_net::RateQueue;
/// use dynamoth_sim::SimTime;
///
/// // 1 MB/s pipe: two back-to-back 500 KB messages take 0.5 s each.
/// let mut q = RateQueue::new(1_000_000.0);
/// let first = q.enqueue(SimTime::ZERO, 500_000);
/// let second = q.enqueue(SimTime::ZERO, 500_000);
/// assert_eq!(first.as_millis(), 500);
/// assert_eq!(second.as_millis(), 1_000);
/// ```
#[derive(Debug, Clone)]
pub struct RateQueue {
    rate_bytes_per_sec: f64,
    next_free: SimTime,
    inflight: VecDeque<(SimTime, u32)>,
    completed_bytes: u64,
}

impl RateQueue {
    /// Creates a pipe draining at `rate_bytes_per_sec`.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not strictly positive and finite.
    pub fn new(rate_bytes_per_sec: f64) -> Self {
        assert!(
            rate_bytes_per_sec.is_finite() && rate_bytes_per_sec > 0.0,
            "rate must be positive"
        );
        RateQueue {
            rate_bytes_per_sec,
            next_free: SimTime::ZERO,
            inflight: VecDeque::new(),
            completed_bytes: 0,
        }
    }

    /// Enqueues `size` bytes that may start transmitting no earlier than
    /// `earliest_start`; returns the instant the last byte leaves the
    /// pipe.
    pub fn enqueue(&mut self, earliest_start: SimTime, size: u32) -> SimTime {
        let start = earliest_start.max(self.next_free);
        let tx = SimDuration::from_secs_f64(size as f64 / self.rate_bytes_per_sec);
        let done = start + tx;
        self.next_free = done;
        self.inflight.push_back((done, size));
        done
    }

    /// Bytes that have fully left the pipe by `now`.
    pub fn completed_bytes(&mut self, now: SimTime) -> u64 {
        self.prune(now);
        self.completed_bytes
    }

    /// Bytes accepted but not yet fully transmitted at `now` (the
    /// output-buffer occupancy).
    pub fn backlog_bytes(&mut self, now: SimTime) -> u64 {
        self.prune(now);
        self.inflight.iter().map(|&(_, s)| s as u64).sum()
    }

    /// The instant the pipe next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// The configured drain rate in bytes per second.
    pub fn rate(&self) -> f64 {
        self.rate_bytes_per_sec
    }

    fn prune(&mut self, now: SimTime) {
        while let Some(&(done, size)) = self.inflight.front() {
            if done > now {
                break;
            }
            self.completed_bytes += size as u64;
            self.inflight.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pipe_transmits_immediately() {
        let mut q = RateQueue::new(1_000.0); // 1000 B/s
        let done = q.enqueue(SimTime::from_secs(5), 100);
        assert_eq!(done, SimTime::from_secs(5) + SimDuration::from_millis(100));
    }

    #[test]
    fn busy_pipe_queues_fifo() {
        let mut q = RateQueue::new(1_000.0);
        let a = q.enqueue(SimTime::ZERO, 1_000); // done at 1 s
        let b = q.enqueue(SimTime::ZERO, 1_000); // done at 2 s
        assert_eq!(a, SimTime::from_secs(1));
        assert_eq!(b, SimTime::from_secs(2));
        // A later arrival after the queue drains starts fresh.
        let c = q.enqueue(SimTime::from_secs(10), 500);
        assert_eq!(c, SimTime::from_secs(10) + SimDuration::from_millis(500));
    }

    #[test]
    fn backlog_tracks_unfinished_bytes() {
        let mut q = RateQueue::new(1_000.0);
        q.enqueue(SimTime::ZERO, 1_000);
        q.enqueue(SimTime::ZERO, 1_000);
        assert_eq!(q.backlog_bytes(SimTime::ZERO), 2_000);
        assert_eq!(q.backlog_bytes(SimTime::from_millis(1_500)), 1_000);
        assert_eq!(q.backlog_bytes(SimTime::from_secs(3)), 0);
    }

    #[test]
    fn completed_bytes_accumulate() {
        let mut q = RateQueue::new(2_000.0);
        q.enqueue(SimTime::ZERO, 1_000); // done 0.5 s
        q.enqueue(SimTime::ZERO, 1_000); // done 1.0 s
        assert_eq!(q.completed_bytes(SimTime::from_millis(400)), 0);
        assert_eq!(q.completed_bytes(SimTime::from_millis(600)), 1_000);
        assert_eq!(q.completed_bytes(SimTime::from_secs(2)), 2_000);
    }

    #[test]
    fn conservation_of_bytes() {
        let mut q = RateQueue::new(5_000.0);
        let mut total = 0u64;
        for i in 0..100 {
            let size = 100 + (i % 7) * 13;
            q.enqueue(SimTime::from_millis(i as u64), size);
            total += size as u64;
        }
        let far = SimTime::from_secs(1_000);
        assert_eq!(q.completed_bytes(far) + q.backlog_bytes(far), total);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = RateQueue::new(0.0);
    }
}
