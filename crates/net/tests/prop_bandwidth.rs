//! Property tests for the bandwidth model: conservation, FIFO order and
//! rate limits of [`RateQueue`], plus transport-level sanity.

use dynamoth_net::{CloudTransport, CloudTransportConfig, LatencyModel, RateQueue};
use dynamoth_sim::{
    NodeClass, NodeId, RouteOutcome, RouteRequest, SimDuration, SimRng, SimTime, Transport,
};
use proptest::prelude::*;

proptest! {
    /// Bytes in = bytes completed + bytes backlogged, at every instant.
    #[test]
    fn rate_queue_conserves_bytes(
        rate in 100.0f64..1e6,
        msgs in prop::collection::vec((0u64..10_000, 1u32..10_000), 1..100),
        probe_ms in 0u64..60_000,
    ) {
        let mut q = RateQueue::new(rate);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut total = 0u64;
        for (t_ms, size) in sorted {
            q.enqueue(SimTime::from_millis(t_ms), size);
            total += size as u64;
        }
        let probe = SimTime::from_millis(probe_ms);
        prop_assert_eq!(q.completed_bytes(probe) + q.backlog_bytes(probe), total);
        // Far in the future everything has drained.
        let far = SimTime::from_secs(10_000_000);
        prop_assert_eq!(q.completed_bytes(far), total);
        prop_assert_eq!(q.backlog_bytes(far), 0);
    }

    /// Completion times are FIFO: monotonically non-decreasing in
    /// enqueue order, and never earlier than physically possible.
    #[test]
    fn rate_queue_is_fifo_and_rate_limited(
        rate in 100.0f64..1e6,
        msgs in prop::collection::vec((0u64..10_000, 1u32..10_000), 1..100),
    ) {
        let mut q = RateQueue::new(rate);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(t, _)| t);
        let mut last_done = SimTime::ZERO;
        for (t_ms, size) in sorted {
            let start = SimTime::from_millis(t_ms);
            let done = q.enqueue(start, size);
            prop_assert!(done >= last_done, "FIFO violated");
            let min_tx = SimDuration::from_secs_f64(size as f64 / rate);
            // Allow a microsecond of rounding slack.
            prop_assert!(done + SimDuration::from_micros(1) >= start + min_tx,
                "transmitted faster than the line rate");
            last_done = done;
        }
    }

    /// The transport never delivers into the past and always accounts
    /// carried bytes on the sender's NIC.
    #[test]
    fn transport_arrivals_are_causal(
        msgs in prop::collection::vec((0u64..5_000, 64u32..5_000, 0usize..3, 0usize..3), 1..60),
        seed in 0u64..500,
    ) {
        let mut t = CloudTransport::new(CloudTransportConfig {
            lan_latency: SimDuration::from_millis(1),
            wan_latency: LatencyModel::Uniform(
                SimDuration::from_millis(10),
                SimDuration::from_millis(100),
            ),
            infra_nic_rate: 1e6,
            client_nic_rate: 1e6,
            connection_rate: 5e5,
            connection_buffer_limit: 1 << 20,
        });
        let mut rng = SimRng::new(seed);
        let mut sorted = msgs.clone();
        sorted.sort_by_key(|&(t, _, _, _)| t);
        let mut sent_bytes = 0u64;
        for (t_ms, size, from, to) in sorted {
            let now = SimTime::from_millis(t_ms);
            let req = RouteRequest {
                from: NodeId::from_index(from),
                from_class: NodeClass::Infra,
                to: NodeId::from_index(10 + to),
                to_class: if to == 0 { NodeClass::Infra } else { NodeClass::Client },
                size,
                now,
                earliest_departure: now,
            };
            match t.route(req, &mut rng) {
                RouteOutcome::Arrive(at) => {
                    prop_assert!(at > now, "delivery into the past");
                    sent_bytes += size as u64;
                }
                RouteOutcome::Dropped => {}
            }
        }
        let far = SimTime::from_secs(1_000_000);
        let carried: u64 = (0..3)
            .map(|i| t.egress_bytes(NodeId::from_index(i), far))
            .sum();
        prop_assert_eq!(carried, sent_bytes);
    }

    /// Latency models stay within their declared support.
    #[test]
    fn latency_models_respect_bounds(seed in 0u64..10_000, lo_ms in 1u64..50, width in 1u64..200) {
        let lo = SimDuration::from_millis(lo_ms);
        let hi = SimDuration::from_millis(lo_ms + width);
        let model = LatencyModel::Uniform(lo, hi);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            let d = model.sample(&mut rng);
            prop_assert!(d >= lo && d < hi);
        }
    }
}
