//! # dynamoth-rt
//!
//! A real-time engine for the Dynamoth actors: the same
//! [`Actor`]/[`ActorContext`] contract as the discrete-event
//! [`World`](dynamoth_sim::World), but backed by OS threads, crossbeam
//! channels and the wall clock. Every middleware component (server
//! nodes, load balancer, clients) runs unchanged in either engine —
//! the simulation exists to reproduce the paper's testbed exactly;
//! this engine demonstrates that the middleware is a real, runnable
//! system and not a simulation artifact.
//!
//! Each node gets its own thread with a message channel and a local
//! timer heap. Time is the wall clock, reported as
//! `SimTime` microseconds since
//! [`RtEngineBuilder::start`]. Per-node egress bytes are accounted at
//! send time so the Local Load Analyzers keep working.
//!
//! ## Example
//!
//! ```
//! use dynamoth_rt::RtEngineBuilder;
//! use dynamoth_sim::{Actor, ActorContext, Message, NodeId};
//!
//! #[derive(Debug)]
//! struct Ping(u32);
//! impl Message for Ping {
//!     fn wire_size(&self) -> u32 { 8 }
//! }
//!
//! struct Echo { seen: u32 }
//! impl Actor<Ping> for Echo {
//!     fn on_message(&mut self, ctx: &mut dyn ActorContext<Ping>, from: NodeId, msg: Ping) {
//!         self.seen += 1;
//!         if msg.0 > 0 {
//!             ctx.send(from, Ping(msg.0 - 1));
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut builder = RtEngineBuilder::new(7);
//! let a = builder.add_node(Box::new(Echo { seen: 0 }));
//! let b = builder.add_node(Box::new(Echo { seen: 0 }));
//! let engine = builder.start();
//! engine.post(a, b, Ping(5));
//! std::thread::sleep(std::time::Duration::from_millis(100));
//! let actors = engine.stop();
//! let total: u32 = actors
//!     .iter()
//!     .map(|a| a.as_any().downcast_ref::<Echo>().unwrap().seen)
//!     .sum();
//! assert_eq!(total, 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use dynamoth_sim::{
    Actor, ActorContext, Message, NodeId, SendOutcome, SimDuration, SimRng, SimTime, TimerId,
};

enum Envelope<M> {
    Msg { from: NodeId, msg: M },
    ArmTimer { at: SimTime, tag: u64 },
    Stop,
}

enum Pending<M> {
    Timer { id: TimerId, tag: u64 },
    DeferredSend { to: NodeId, msg: M },
}

struct TimerEntry<M> {
    at: SimTime,
    seq: u64,
    pending: Pending<M>,
}

impl<M> PartialEq for TimerEntry<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl<M> Eq for TimerEntry<M> {}
impl<M> PartialOrd for TimerEntry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for TimerEntry<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Shared<M> {
    senders: Vec<Sender<Envelope<M>>>,
    egress: Vec<AtomicU64>,
    epoch: Instant,
}

impl<M: Message> Shared<M> {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn send(&self, from: NodeId, to: NodeId, msg: M) -> SendOutcome {
        let size = msg.wire_size() as u64;
        match self.senders.get(to.index()) {
            Some(tx) if tx.send(Envelope::Msg { from, msg }).is_ok() => {
                self.egress[from.index()].fetch_add(size, Ordering::Relaxed);
                SendOutcome::Sent
            }
            _ => SendOutcome::Dropped,
        }
    }
}

/// The per-thread [`ActorContext`] implementation.
struct RtContext<'a, M: Message> {
    shared: &'a Shared<M>,
    node: NodeId,
    rng: &'a mut SimRng,
    timers: &'a mut BinaryHeap<Reverse<TimerEntry<M>>>,
    cancelled: &'a mut HashSet<u64>,
    next_timer: &'a mut u64,
    timer_seq: &'a mut u64,
    flush_requested: &'a mut bool,
}

impl<'a, M: Message> RtContext<'a, M> {
    fn push(&mut self, at: SimTime, pending: Pending<M>) {
        let seq = *self.timer_seq;
        *self.timer_seq += 1;
        self.timers.push(Reverse(TimerEntry { at, seq, pending }));
    }
}

impl<'a, M: Message> ActorContext<M> for RtContext<'a, M> {
    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn node(&self) -> NodeId {
        self.node
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) -> SendOutcome {
        if delay.is_zero() {
            self.shared.send(self.node, to, msg)
        } else {
            let at = self.shared.now() + delay;
            self.push(at, Pending::DeferredSend { to, msg });
            SendOutcome::Sent
        }
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        self.set_timer_at(self.shared.now() + delay, tag)
    }

    fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerId {
        let id = TimerId::from_raw(*self.next_timer);
        *self.next_timer += 1;
        self.push(at, Pending::Timer { id, tag });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.cancelled.insert(id.into_raw());
    }

    fn egress_bytes(&self, node: NodeId) -> u64 {
        self.shared
            .egress
            .get(node.index())
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    fn request_flush(&mut self) {
        *self.flush_requested = true;
    }
}

/// Builder collecting the actors before the engine starts.
pub struct RtEngineBuilder<M: Message> {
    actors: Vec<Box<dyn Actor<M> + Send>>,
    seed: u64,
}

impl<M: Message + Send> RtEngineBuilder<M> {
    /// Creates a builder; `seed` derives each node's RNG stream.
    pub fn new(seed: u64) -> Self {
        RtEngineBuilder {
            actors: Vec::new(),
            seed,
        }
    }

    /// Registers a node; ids are dense from zero in registration order,
    /// compatible with the simulation's
    /// [`World::add_node`](dynamoth_sim::World::add_node) numbering.
    pub fn add_node(&mut self, actor: Box<dyn Actor<M> + Send>) -> NodeId {
        let id = NodeId::from_index(self.actors.len());
        self.actors.push(actor);
        id
    }

    /// Number of registered nodes so far.
    pub fn node_count(&self) -> usize {
        self.actors.len()
    }

    /// Spawns one thread per node and starts the clock.
    pub fn start(self) -> RtEngine<M> {
        let n = self.actors.len();
        let mut senders = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            egress: (0..n).map(|_| AtomicU64::new(0)).collect(),
            epoch: Instant::now(),
        });
        let mut seed_rng = SimRng::new(self.seed);
        let handles = self
            .actors
            .into_iter()
            .zip(receivers)
            .enumerate()
            .map(|(i, (actor, rx))| {
                let shared = Arc::clone(&shared);
                let rng = seed_rng.fork();
                std::thread::spawn(move || node_loop(NodeId::from_index(i), actor, rx, shared, rng))
            })
            .collect();
        RtEngine { shared, handles }
    }
}

impl<M: Message> std::fmt::Debug for RtEngineBuilder<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtEngineBuilder")
            .field("nodes", &self.actors.len())
            .finish_non_exhaustive()
    }
}

fn node_loop<M: Message + Send>(
    node: NodeId,
    mut actor: Box<dyn Actor<M> + Send>,
    rx: Receiver<Envelope<M>>,
    shared: Arc<Shared<M>>,
    mut rng: SimRng,
) -> Box<dyn Actor<M> + Send> {
    let mut timers: BinaryHeap<Reverse<TimerEntry<M>>> = BinaryHeap::new();
    let mut cancelled: HashSet<u64> = HashSet::new();
    let mut next_timer = 0u64;
    let mut timer_seq = 0u64;
    let mut flush_requested = false;
    loop {
        // Fire every due timer first.
        let now = shared.now();
        while timers.peek().is_some_and(|Reverse(t)| t.at <= now) {
            let Reverse(entry) = timers.pop().expect("peeked");
            match entry.pending {
                Pending::Timer { id, tag } => {
                    if cancelled.remove(&id.into_raw()) {
                        continue;
                    }
                    let mut ctx = RtContext {
                        shared: &shared,
                        node,
                        rng: &mut rng,
                        timers: &mut timers,
                        cancelled: &mut cancelled,
                        next_timer: &mut next_timer,
                        timer_seq: &mut timer_seq,
                        flush_requested: &mut flush_requested,
                    };
                    actor.on_timer(&mut ctx, tag);
                }
                Pending::DeferredSend { to, msg } => {
                    let _ = shared.send(node, to, msg);
                }
            }
        }
        // A pending flush marks the end of a batching window: it runs
        // as soon as the message queue is empty, so a burst of queued
        // messages coalesces but a lone message flushes immediately.
        let next = if flush_requested {
            match rx.try_recv() {
                Ok(env) => Some(env),
                Err(TryRecvError::Empty) => {
                    flush_requested = false;
                    let mut ctx = RtContext {
                        shared: &shared,
                        node,
                        rng: &mut rng,
                        timers: &mut timers,
                        cancelled: &mut cancelled,
                        next_timer: &mut next_timer,
                        timer_seq: &mut timer_seq,
                        flush_requested: &mut flush_requested,
                    };
                    actor.on_flush(&mut ctx);
                    continue;
                }
                Err(TryRecvError::Disconnected) => return actor,
            }
        } else {
            // Wait for the next message or the next timer deadline.
            let timeout = timers
                .peek()
                .map(|Reverse(t)| {
                    Duration::from_micros(t.at.as_micros().saturating_sub(shared.now().as_micros()))
                })
                .unwrap_or(Duration::from_millis(50));
            match rx.recv_timeout(timeout) {
                Ok(env) => Some(env),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return actor,
            }
        };
        match next {
            Some(Envelope::Msg { from, msg }) => {
                let mut ctx = RtContext {
                    shared: &shared,
                    node,
                    rng: &mut rng,
                    timers: &mut timers,
                    cancelled: &mut cancelled,
                    next_timer: &mut next_timer,
                    timer_seq: &mut timer_seq,
                    flush_requested: &mut flush_requested,
                };
                actor.on_message(&mut ctx, from, msg);
            }
            Some(Envelope::ArmTimer { at, tag }) => {
                let seq = timer_seq;
                timer_seq += 1;
                let id = TimerId::from_raw(next_timer);
                next_timer += 1;
                timers.push(Reverse(TimerEntry {
                    at,
                    seq,
                    pending: Pending::Timer { id, tag },
                }));
            }
            Some(Envelope::Stop) => return actor,
            None => {}
        }
    }
}

/// A running real-time engine.
pub struct RtEngine<M: Message> {
    shared: Arc<Shared<M>>,
    handles: Vec<JoinHandle<Box<dyn Actor<M> + Send>>>,
}

impl<M: Message + Send> RtEngine<M> {
    /// Wall-clock time since the engine started.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Injects a message as if `from` had sent it.
    pub fn post(&self, from: NodeId, to: NodeId, msg: M) -> SendOutcome {
        self.shared.send(from, to, msg)
    }

    /// Arms a timer on `node` at absolute engine time `at`.
    pub fn schedule_timer(&self, node: NodeId, at: SimTime, tag: u64) {
        if let Some(tx) = self.shared.senders.get(node.index()) {
            let _ = tx.send(Envelope::ArmTimer { at, tag });
        }
    }

    /// Cumulative bytes sent by `node`.
    pub fn egress_bytes(&self, node: NodeId) -> u64 {
        self.shared
            .egress
            .get(node.index())
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Stops every node thread and returns the actors for inspection,
    /// in registration order.
    ///
    /// # Panics
    ///
    /// Panics if a node thread panicked.
    pub fn stop(self) -> Vec<Box<dyn Actor<M> + Send>> {
        for tx in &self.shared.senders {
            let _ = tx.send(Envelope::Stop);
        }
        self.handles
            .into_iter()
            .map(|h| h.join().expect("node thread panicked"))
            .collect()
    }
}

impl<M: Message> std::fmt::Debug for RtEngine<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtEngine")
            .field("nodes", &self.handles.len())
            .field("now", &self.shared.now())
            .finish()
    }
}
