//! The complete Dynamoth middleware running in *real time*: pub/sub
//! server nodes (broker + dispatcher + LLA), the load balancer and
//! clients, each on its own OS thread, exchanging real messages over
//! channels — including a live plan migration with the full
//! wrong-server / switch machinery. The exact same actor types run in
//! the discrete-event simulation.

use std::sync::Arc;
use std::thread::sleep;
use std::time::Duration;

use dynamoth_core::balancer::TAG_EVAL;
use dynamoth_core::{
    BalancerStrategy, ChannelId, ChannelMapping, DynamothConfig, LoadBalancer, Msg, Plan, Ring,
    ServerId, ServerNode, TraceHandle, TAG_TICK,
};
use dynamoth_rt::RtEngineBuilder;
use dynamoth_sim::{NodeId, SimDuration, SimTime};
use dynamoth_workloads::micro::{Publisher, Subscriber, TAG_START};
use dynamoth_workloads::Subscriber as SubscriberActor;

const CHANNEL: ChannelId = ChannelId(3);

struct Stack {
    builder: RtEngineBuilder<Msg>,
    servers: Vec<ServerId>,
    lb: NodeId,
    ring: Arc<Ring>,
    cfg: Arc<DynamothConfig>,
    trace: TraceHandle,
}

/// Assembles servers + LB exactly like the simulation harness does, but
/// into the real-time engine.
fn stack(n_servers: usize, strategy: BalancerStrategy) -> Stack {
    let cfg = Arc::new(DynamothConfig {
        tick: SimDuration::from_millis(200),
        t_wait: SimDuration::from_millis(500),
        provisioning_delay: SimDuration::from_millis(100),
        unsubscribe_grace: SimDuration::from_millis(200),
        replication_mirror_window: SimDuration::from_millis(300),
        ..Default::default()
    });
    let mut builder = RtEngineBuilder::new(11);
    let servers: Vec<ServerId> = (0..n_servers)
        .map(|i| ServerId(NodeId::from_index(i)))
        .collect();
    let ring = Arc::new(Ring::new(&servers, 32));
    let lb = NodeId::from_index(n_servers);
    for &sid in &servers {
        builder.add_node(Box::new(ServerNode::new(
            sid,
            lb,
            Arc::clone(&ring),
            Arc::clone(&cfg),
        )));
    }
    let trace = TraceHandle::new();
    let lb_actor = LoadBalancer::new(
        Arc::clone(&cfg),
        strategy,
        Arc::clone(&ring),
        servers.clone(),
        n_servers,
        trace.clone(),
    );
    let actual = builder.add_node(Box::new(lb_actor));
    assert_eq!(actual, lb);
    Stack {
        builder,
        servers,
        lb,
        ring,
        cfg,
        trace,
    }
}

fn client(stack: &Stack, node: NodeId) -> dynamoth_core::DynamothClient {
    dynamoth_core::DynamothClient::new(node, Arc::clone(&stack.ring), Arc::clone(&stack.cfg))
}

#[test]
fn pubsub_round_trip_over_real_threads() {
    let mut stack = stack(2, BalancerStrategy::Manual);
    let pub_node = NodeId::from_index(stack.builder.node_count());
    let publisher = Publisher::new(client(&stack, pub_node), CHANNEL, 100.0, 128);
    stack.builder.add_node(Box::new(publisher));
    let sub_node = NodeId::from_index(stack.builder.node_count());
    let subscriber = Subscriber::new(client(&stack, sub_node), CHANNEL, stack.trace.clone());
    stack.builder.add_node(Box::new(subscriber));

    let engine = stack.builder.start();
    for &s in &stack.servers {
        engine.schedule_timer(s.0, SimTime::from_millis(200), TAG_TICK);
    }
    engine.schedule_timer(stack.lb, SimTime::from_millis(250), TAG_EVAL);
    engine.schedule_timer(sub_node, SimTime::from_millis(10), TAG_START);
    engine.schedule_timer(pub_node, SimTime::from_millis(100), TAG_START);

    sleep(Duration::from_millis(1_200));
    let actors = engine.stop();
    let publisher = actors[pub_node.index()]
        .as_any()
        .downcast_ref::<Publisher>()
        .unwrap();
    let subscriber = actors[sub_node.index()]
        .as_any()
        .downcast_ref::<SubscriberActor>()
        .unwrap();
    let published = publisher.client().stats().publishes;
    assert!(published > 50, "publisher too slow: {published}");
    // In-flight messages at shutdown may be lost; everything else must
    // have arrived exactly once.
    assert!(
        subscriber.received() + 10 >= published,
        "received {} of {published}",
        subscriber.received()
    );
    assert_eq!(subscriber.client().stats().duplicates_suppressed, 0);
}

#[test]
fn live_migration_over_real_threads() {
    let mut stack = stack(3, BalancerStrategy::Manual);
    let pub_node = NodeId::from_index(stack.builder.node_count());
    stack.builder.add_node(Box::new(Publisher::new(
        client(&stack, pub_node),
        CHANNEL,
        50.0,
        128,
    )));
    let sub_node = NodeId::from_index(stack.builder.node_count());
    stack.builder.add_node(Box::new(Subscriber::new(
        client(&stack, sub_node),
        CHANNEL,
        stack.trace.clone(),
    )));

    let engine = stack.builder.start();
    for &s in &stack.servers {
        engine.schedule_timer(s.0, SimTime::from_millis(200), TAG_TICK);
    }
    engine.schedule_timer(sub_node, SimTime::from_millis(10), TAG_START);
    engine.schedule_timer(pub_node, SimTime::from_millis(100), TAG_START);

    // Let traffic settle on the hash home, then push a plan that moves
    // the channel to a different server, live.
    sleep(Duration::from_millis(400));
    let home = stack.ring.server_for(CHANNEL);
    let target = *stack.servers.iter().find(|&&s| s != home).unwrap();
    let mut plan = Plan::bootstrap();
    plan.set(CHANNEL, ChannelMapping::Single(target));
    plan.set_id(dynamoth_core::PlanId(1));
    let shared = Arc::new(plan);
    for &s in &stack.servers {
        engine.post(stack.lb, s.0, Msg::PlanPush(Arc::clone(&shared)));
    }
    sleep(Duration::from_millis(800));

    let actors = engine.stop();
    let publisher = actors[pub_node.index()]
        .as_any()
        .downcast_ref::<Publisher>()
        .unwrap();
    let subscriber = actors[sub_node.index()]
        .as_any()
        .downcast_ref::<SubscriberActor>()
        .unwrap();
    // The publisher was redirected and the subscriber switched.
    assert!(publisher.client().stats().wrong_server_notices >= 1);
    assert_eq!(
        subscriber.client().subscription_servers(CHANNEL),
        vec![target],
        "subscription did not move to the new server"
    );
    // No message lost up to the shutdown race.
    let published = publisher.client().stats().publishes;
    assert!(
        subscriber.received() + 10 >= published,
        "received {} of {published}",
        subscriber.received()
    );
    // The old server emitted a switch; its node is inspectable too.
    let old = actors[home.0.index()]
        .as_any()
        .downcast_ref::<ServerNode>()
        .unwrap();
    assert!(old.dispatcher().stats().switches_emitted >= 1);
}

#[test]
fn lla_reports_flow_in_real_time() {
    let mut stack = stack(2, BalancerStrategy::Dynamoth);
    let pub_node = NodeId::from_index(stack.builder.node_count());
    stack.builder.add_node(Box::new(Publisher::new(
        client(&stack, pub_node),
        CHANNEL,
        50.0,
        256,
    )));
    let sub_node = NodeId::from_index(stack.builder.node_count());
    stack.builder.add_node(Box::new(Subscriber::new(
        client(&stack, sub_node),
        CHANNEL,
        stack.trace.clone(),
    )));

    let engine = stack.builder.start();
    for &s in &stack.servers {
        engine.schedule_timer(s.0, SimTime::from_millis(200), TAG_TICK);
    }
    engine.schedule_timer(stack.lb, SimTime::from_millis(250), TAG_EVAL);
    engine.schedule_timer(sub_node, SimTime::from_millis(10), TAG_START);
    engine.schedule_timer(pub_node, SimTime::from_millis(100), TAG_START);
    sleep(Duration::from_millis(1_200));
    engine.stop();

    // The balancer ticked and recorded real load figures from the LLAs
    // (the series is keyed per wall-clock second, so a 1.2 s run yields
    // two entries).
    assert!(
        stack.trace.server_series().len() >= 2,
        "balancer barely ticked: {:?}",
        stack.trace.server_series()
    );
    let deliveries: u64 = stack.trace.delivery_series().iter().map(|&(_, n)| n).sum();
    assert!(
        deliveries > 20,
        "LLA deliveries never reached the LB: {deliveries}"
    );
}
