//! Command-line experiment driver.
//!
//! ```text
//! dynamoth-cli fig4a [--replicated] [--subscribers N] [--seed S]
//! dynamoth-cli fig4b [--replicated] [--publishers N] [--seed S]
//! dynamoth-cli fig5  [--strategy dynamoth|ch] [--players N] [--seed S] [--out FILE]
//! dynamoth-cli fig7  [--seed S] [--out FILE]
//! dynamoth-cli chat  [--users N] [--rooms N] [--seed S]
//! dynamoth-cli bench-broker [--pubs 1,4,16] [--subs 1,100,1000] [--conns 0,10000]
//!                           [--duration-ms N] [--payload BYTES] [--out FILE]
//!                           [--assert-coalescing RATIO]
//! dynamoth-cli bench-router [--brokers 1,3] [--subs 1,4] [--duration-ms N]
//!                           [--payload BYTES] [--seed S] [--out FILE]
//! dynamoth-cli bench-rebalance [--offered 1000,4000,16000] [--duration-ms N]
//!                              [--payload BYTES] [--seed S] [--out FILE]
//!                              [--skewed] [--skew-offered 2000,2500,3000]
//! dynamoth-cli bench-resume [--outages 64,512,4096] [--retentions 128,1024]
//!                           [--payload BYTES] [--seed S] [--out FILE]
//! dynamoth-cli bench-failover [--suspects 2,3] [--intervals-ms 100,200]
//!                             [--seed S] [--out FILE]
//! dynamoth-cli bench-scale [--scenario celebrity|rgame|chat|flash|conflate]
//!                          [--vclients N] [--pool N] [--brokers N]
//!                          [--publishes K] [--steps N] [--payload BYTES]
//!                          [--seed S] [--assert-ratio R] [--out FILE]
//! dynamoth-cli bench-scale --figs DIR [--sim-players N] [--quick] [--seed S]
//! ```
//!
//! Series are printed as CSV (or written to `--out`). Durations scale
//! with `DYNAMOTH_TIME_SCALE`.

use std::io::Write;

use dynamoth_bench::{fig4a, fig4b, fig5, fig7, sustained_players, GameSeries};
use dynamoth_core::BalancerStrategy;

struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    fn parse(raw: &[String]) -> Args {
        let mut flags = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            let arg = &raw[i];
            if let Some(name) = arg.strip_prefix("--") {
                let value = raw.get(i + 1).filter(|v| !v.starts_with("--")).cloned();
                if value.is_some() {
                    i += 1;
                }
                flags.push((name.to_string(), value));
            }
            i += 1;
        }
        Args { flags }
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn out_writer(args: &Args) -> Box<dyn Write> {
    match args.get("out") {
        Some(path) => Box::new(std::fs::File::create(path).expect("create --out file")),
        None => Box::new(std::io::stdout()),
    }
}

fn write_game_series(mut w: impl Write, series: &GameSeries) {
    writeln!(
        w,
        "second,players,servers,messages_per_s,response_ms,avg_lr,max_lr"
    )
    .unwrap();
    let at = |v: &[(u64, usize)], sec: u64| {
        v.iter()
            .take_while(|&&(s, _)| s <= sec)
            .last()
            .map(|&(_, n)| n)
            .unwrap_or(0)
    };
    for &(sec, resp) in &series.response {
        let players = at(&series.players, sec);
        let servers = at(&series.servers, sec);
        let msgs = series
            .messages
            .iter()
            .find(|&&(s, _)| s == sec)
            .map(|&(_, m)| m)
            .unwrap_or(0);
        let (avg, max) = series
            .load
            .iter()
            .find(|&&(s, _, _)| s == sec)
            .map(|&(_, a, m)| (a, m))
            .unwrap_or((0.0, 0.0));
        writeln!(
            w,
            "{sec},{players},{servers},{msgs},{resp:.1},{avg:.3},{max:.3}"
        )
        .unwrap();
    }
    writeln!(w, "# reconfigurations").unwrap();
    for (t, kind) in &series.rebalances {
        writeln!(w, "# {t:.0},{kind:?}").unwrap();
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = raw.first().cloned() else {
        eprintln!(
            "usage: dynamoth-cli <fig4a|fig4b|fig5|fig7|chat> [flags]  (see the source header)"
        );
        std::process::exit(2);
    };
    let args = Args::parse(&raw[1..]);
    let seed = args.num("seed", 1u64);

    match command.as_str() {
        "fig4a" => {
            let subs = args.num("subscribers", 500usize);
            let row = fig4a(subs, args.has("replicated"), seed);
            println!("subscribers,response_ms,delivery_ratio,lost_subscriptions");
            println!(
                "{subs},{},{:.3},{}",
                row.response_ms
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_default(),
                row.delivery_ratio,
                row.lost_subscriptions
            );
        }
        "fig4b" => {
            let pubs = args.num("publishers", 300usize);
            let row = fig4b(pubs, args.has("replicated"), seed);
            println!("publishers,response_ms,delivery_ratio,lost_subscriptions");
            println!(
                "{pubs},{},{:.3},{}",
                row.response_ms
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_default(),
                row.delivery_ratio,
                row.lost_subscriptions
            );
        }
        "fig5" => {
            let strategy = match args.get("strategy").unwrap_or("dynamoth") {
                "ch" | "consistent-hash" => BalancerStrategy::ConsistentHash,
                _ => BalancerStrategy::Dynamoth,
            };
            let players = args.num("players", 1_200usize);
            let series = fig5(strategy, players, seed);
            eprintln!(
                "sustained below 150 ms: {}",
                sustained_players(&series, 150.0)
            );
            write_game_series(out_writer(&args), &series);
        }
        "fig7" => {
            let series = fig7(seed);
            write_game_series(out_writer(&args), &series);
        }
        "chat" => {
            use dynamoth_core::{Cluster, ClusterConfig};
            use dynamoth_sim::{SimDuration, SimTime};
            use dynamoth_workloads::setup::spawn_chat_users;
            use dynamoth_workloads::ChatConfig;
            use std::sync::Arc;

            let users = args.num("users", 800usize);
            let rooms = args.num("rooms", 400usize);
            let mut cluster = Cluster::build(ClusterConfig {
                seed,
                pool_size: 6,
                initial_active: 1,
                ..Default::default()
            });
            let cfg = Arc::new(ChatConfig {
                rooms,
                ..Default::default()
            });
            spawn_chat_users(
                &mut cluster,
                &cfg,
                users,
                SimTime::from_secs(1),
                SimDuration::from_secs(45),
            );
            cluster.run_for(SimDuration::from_secs(120));
            println!(
                "users,{users}\nrooms,{rooms}\nmean_response_ms,{:.1}\np99_response_ms,{:.1}\nservers,{}\nserver_seconds,{}\ndelivered,{}",
                cluster.trace.mean_response_ms().unwrap_or(f64::NAN),
                cluster.trace.response_quantile_ms(0.99).unwrap_or(f64::NAN),
                cluster.active_server_count(),
                cluster.trace.server_seconds(),
                cluster.trace.delivered_total()
            );
        }
        "bench-broker" => {
            use dynamoth_bench::broker_bench::{assert_coalescing, broker_grid, write_broker_json};
            use std::time::Duration;

            let parse_list = |flag: &str, default: &[usize]| -> Vec<usize> {
                args.get(flag)
                    .map(|v| {
                        v.split(',')
                            .filter_map(|n| n.trim().parse().ok())
                            .collect::<Vec<usize>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| default.to_vec())
            };
            let pubs = parse_list("pubs", &[1, 4, 16]);
            let subs = parse_list("subs", &[1, 100, 1_000]);
            let conns = parse_list("conns", &[0]);
            let duration = Duration::from_millis(args.num("duration-ms", 1_000u64));
            let payload = args.num("payload", 64usize);
            let rows = broker_grid(&pubs, &subs, &conns, duration, payload);
            write_broker_json(out_writer(&args), &rows).expect("write json");
            // CI gate: on high-fan-out cells the reactor must batch
            // outbox frames into far fewer writev syscalls than the
            // one-write-per-frame floor.
            if args.has("assert-coalescing") {
                let ratio: f64 = args.num("assert-coalescing", 0.5);
                let gated: Vec<_> = rows.iter().filter(|r| r.subscribers >= 1_000).collect();
                assert!(
                    !gated.is_empty(),
                    "--assert-coalescing needs a cell with >= 1000 subscribers"
                );
                for row in gated {
                    assert_coalescing(row, ratio);
                    eprintln!(
                        "coalescing ok at {}x{} (+{} idle): {} writes / {} frames",
                        row.publishers,
                        row.subscribers,
                        row.connections,
                        row.flush_writes,
                        row.flush_frames
                    );
                }
            }
        }
        "bench-router" => {
            use dynamoth_bench::router_bench::{router_grid, write_router_json};
            use std::time::Duration;

            let parse_list = |flag: &str, default: &[usize]| -> Vec<usize> {
                args.get(flag)
                    .map(|v| {
                        v.split(',')
                            .filter_map(|n| n.trim().parse().ok())
                            .collect::<Vec<usize>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| default.to_vec())
            };
            let brokers = parse_list("brokers", &[1, 3]);
            let subs = parse_list("subs", &[1, 4]);
            let duration = Duration::from_millis(args.num("duration-ms", 1_000u64));
            let payload = args.num("payload", 64usize);
            let rows = router_grid(&brokers, &subs, duration, payload, seed);
            write_router_json(out_writer(&args), &rows).expect("write json");
        }
        "bench-rebalance" => {
            use dynamoth_bench::rebalance_bench::{
                rebalance_grid, rebalance_skewed_grid, write_rebalance_json,
            };
            use std::time::Duration;

            let offered: Vec<u64> = args
                .get("offered")
                .map(|v| {
                    v.split(',')
                        .filter_map(|n| n.trim().parse().ok())
                        .collect::<Vec<u64>>()
                })
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| vec![1_000, 4_000, 16_000]);
            let duration = Duration::from_millis(args.num("duration-ms", 2_000u64));
            let payload = args.num("payload", 512usize);
            let mut rows = rebalance_grid(&offered, duration, payload, seed);
            if args.has("skewed") {
                // Zipf-named channels, placement pass off vs on. Own
                // rung list: the contrast lives in the moderate-overload
                // regime (see rebalance_skewed_grid).
                let skew_offered: Vec<u64> = args
                    .get("skew-offered")
                    .map(|v| {
                        v.split(',')
                            .filter_map(|n| n.trim().parse().ok())
                            .collect::<Vec<u64>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| vec![2_000, 2_500, 3_000]);
                rows.extend(rebalance_skewed_grid(
                    &skew_offered,
                    duration,
                    payload,
                    seed,
                ));
            }
            write_rebalance_json(out_writer(&args), &rows).expect("write json");
        }
        "bench-resume" => {
            use dynamoth_bench::resume_bench::{resume_grid, write_resume_json};

            let parse_list = |flag: &str, default: &[usize]| -> Vec<usize> {
                args.get(flag)
                    .map(|v| {
                        v.split(',')
                            .filter_map(|n| n.trim().parse().ok())
                            .collect::<Vec<usize>>()
                    })
                    .filter(|v| !v.is_empty())
                    .unwrap_or_else(|| default.to_vec())
            };
            let outages = parse_list("outages", &[64, 512, 4_096]);
            let retentions = parse_list("retentions", &[128, 1_024]);
            let payload = args.num("payload", 64usize);
            let rows = resume_grid(&outages, &retentions, payload, seed);
            write_resume_json(out_writer(&args), &rows).expect("write json");
        }
        "bench-failover" => {
            use dynamoth_bench::failover_bench::{failover_grid, write_failover_json};

            let suspects: Vec<u32> = args
                .get("suspects")
                .map(|v| {
                    v.split(',')
                        .filter_map(|n| n.trim().parse().ok())
                        .collect::<Vec<u32>>()
                })
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| vec![2, 3]);
            let intervals: Vec<u64> = args
                .get("intervals-ms")
                .map(|v| {
                    v.split(',')
                        .filter_map(|n| n.trim().parse().ok())
                        .collect::<Vec<u64>>()
                })
                .filter(|v| !v.is_empty())
                .unwrap_or_else(|| vec![100, 200]);
            let rows = failover_grid(&suspects, &intervals, seed);
            write_failover_json(out_writer(&args), &rows).expect("write json");
        }
        "bench-scale" => {
            use dynamoth_bench::scale::{
                celebrity_scale, chat_scale, conflate_scale, emit_figs, flash_scale, rgame_scale,
                write_conflate_json, write_scale_json, ScaleConfig,
            };

            if let Some(dir) = args.get("figs") {
                let dir = std::path::Path::new(dir);
                std::fs::create_dir_all(dir).expect("create --figs dir");
                emit_figs(
                    dir,
                    seed,
                    args.num("sim-players", 900usize),
                    args.has("quick"),
                );
                eprintln!(
                    "wrote BENCH_fig4.json..BENCH_fig7.json to {}",
                    dir.display()
                );
                return;
            }

            let cfg = ScaleConfig {
                brokers: args.num("brokers", 2usize),
                pool: args.num("pool", 64usize),
                vclients: args.num("vclients", 100_000usize),
                publishes: args.num("publishes", 200usize),
                steps: args.num("steps", 20usize),
                payload: args.num("payload", 256usize),
                seed,
            };
            let scenario = args.get("scenario").unwrap_or("celebrity");
            if scenario == "conflate" {
                let row = conflate_scale(seed, args.num("publishes", 2_000u64), cfg.payload);
                write_conflate_json(out_writer(&args), &row).expect("write json");
                assert!(row.accounted, "conflation drop accounting did not close");
                assert!(row.seq_monotone, "conflated stream regressed a sequence");
                return;
            }
            let run = match scenario {
                "celebrity" => celebrity_scale(&cfg),
                "rgame" => rgame_scale(&cfg),
                "chat" => chat_scale(&cfg),
                "flash" => flash_scale(&cfg),
                other => {
                    eprintln!(
                        "unknown scenario {other:?}; expected \
                         celebrity|rgame|chat|flash|conflate"
                    );
                    std::process::exit(2);
                }
            };
            eprintln!(
                "{}: {} virtual clients over {} real connections, delivery ratio {:.4}",
                run.row.scenario,
                run.row.vclients,
                run.row.real_connections,
                run.row.delivery_ratio
            );
            write_scale_json(out_writer(&args), std::slice::from_ref(&run.row))
                .expect("write json");
            if let Some(min) = args.get("assert-ratio").and_then(|v| v.parse::<f64>().ok()) {
                assert!(
                    run.row.delivery_ratio >= min,
                    "delivery ratio {:.4} below the {min} gate",
                    run.row.delivery_ratio
                );
                assert_eq!(run.row.duplicates, 0, "duplicate virtual deliveries");
            }
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected \
                 fig4a|fig4b|fig5|fig7|chat|bench-broker|bench-router|bench-rebalance|\
                 bench-resume|bench-failover|bench-scale"
            );
            std::process::exit(2);
        }
    }
}
