//! Million-client scale harness for the live TCP tier.
//!
//! A real deployment of the paper's workloads has 10^5–10^6 clients;
//! opening that many sockets from one bench host is neither possible
//! nor interesting. This harness instead multiplexes *virtual clients*
//! over a small pool of real [`RoutedClient`] connections:
//!
//! * every virtual client `vid` is pinned to pooled connection
//!   `vid % pool`; the pooled connection holds the *union* of its
//!   virtual clients' subscriptions (refcounted — the channel is
//!   subscribed on the wire while at least one virtual client wants
//!   it);
//! * on receive, the channel name demuxes a pooled frame back to the
//!   virtual clients wanting it: one pooled delivery credits every
//!   virtual subscriber mapped to that connection, which is exactly
//!   the fan-out a broker-side per-client connection would have
//!   produced;
//! * every publication carries a `VC1;<vpub>;<seq>;<t_us>;` header —
//!   a per-*virtual*-publisher wire-id namespace — so the receive side
//!   can assert exactly-once per (connection, virtual publisher,
//!   sequence) and measure end-to-end latency, independent of the
//!   transport-level `DMID1` ids.
//!
//! Workloads come from [`dynamoth_workloads::live`]: the same
//! generators that drive the simulator, re-expressed as step
//! functions. [`run_live`] drives any [`LiveWorkload`] through the
//! pool; the scenario wrappers ([`celebrity_scale`], [`rgame_scale`],
//! [`chat_scale`], [`flash_scale`]) pick populations and accounting
//! cohorts, and [`conflate_scale`] exercises
//! [`OverflowPolicy::ConflateByChannel`] against a stalled feed
//! consumer. [`emit_figs`] writes the `BENCH_fig4.json` …
//! `BENCH_fig7.json` artifacts with the simulated and live series side
//! by side.
//!
//! Accounting caveat: for workloads whose subscriptions move with the
//! simulation (rgame tile crossings), a publication can race a
//! subscription change in flight, so the reported delivery ratio is
//! *approximate* (typically within a few percent of 1.0). Static
//! workloads — celebrity, chat, and the flash core cohort — have exact
//! expectations and must hit 1.0.

use std::collections::{HashMap, HashSet};
use std::io::Write as IoWrite;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    BrokerConfig, ChannelMapping, ChaosProxy, ClientConfig, Direction, OverflowPolicy, PlanId,
    RoutedClient, RouterConfig, ServerId, TcpBroker, TcpPubSubClient,
};
use dynamoth_workloads::live::{LivePublish, FLASH_CHANNEL};
use dynamoth_workloads::{ChatConfig, LiveChat, LiveFlash, LiveRGame, LiveWorkload, RGameConfig};

/// Bytes of the `VC1;<vpub:08x>;<seq:08x>;<t_us:016x>;` payload header.
pub const VC_HEADER_LEN: usize = 4 + 9 + 9 + 17;

/// Encodes the virtual-client accounting header plus filler up to
/// `payload` bytes.
pub fn encode_vc(vpub: u32, seq: u32, t_us: u64, payload: usize) -> Vec<u8> {
    let mut body = format!("VC1;{vpub:08x};{seq:08x};{t_us:016x};").into_bytes();
    debug_assert_eq!(body.len(), VC_HEADER_LEN);
    body.resize(payload.max(VC_HEADER_LEN), b'x');
    body
}

/// Parses a `VC1` header back into `(vpub, seq, t_us)`.
pub fn parse_vc(body: &[u8]) -> Option<(u32, u32, u64)> {
    let s = std::str::from_utf8(body.get(..VC_HEADER_LEN)?).ok()?;
    let mut parts = s.split(';');
    if parts.next()? != "VC1" {
        return None;
    }
    let vpub = u32::from_str_radix(parts.next()?, 16).ok()?;
    let seq = u32::from_str_radix(parts.next()?, 16).ok()?;
    let t_us = u64::from_str_radix(parts.next()?, 16).ok()?;
    Some((vpub, seq, t_us))
}

struct PoolEntry {
    client: RoutedClient,
    /// channel → virtual clients on this connection wanting it.
    want: HashMap<String, HashSet<usize>>,
    /// `(vpub << 32) | seq` keys already credited on this connection —
    /// the exactly-once ledger of the virtual-publisher namespace.
    seen: HashSet<u64>,
}

/// The bounded pool of real connections a virtual-client population is
/// multiplexed over.
pub struct VirtualPool {
    entries: Vec<PoolEntry>,
    epoch: Instant,
    /// Duplicate `(vpub, seq)` deliveries observed on one connection.
    pub duplicates: u64,
    /// Raw frames drained from the pooled connections.
    pub pooled_frames: u64,
    /// End-to-end latency samples, µs (publish stamp → drain).
    pub latencies_us: Vec<u64>,
}

impl VirtualPool {
    /// Connects `pool` routed clients to the broker directory.
    pub fn connect(directory: &[SocketAddr], pool: usize, seed: u64) -> VirtualPool {
        let entries = (0..pool.max(1))
            .map(|i| PoolEntry {
                client: RoutedClient::connect(
                    directory.to_vec(),
                    router_cfg(seed ^ ((i as u64 + 1) << 8)),
                ),
                want: HashMap::new(),
                seen: HashSet::new(),
            })
            .collect();
        VirtualPool {
            entries,
            epoch: Instant::now(),
            duplicates: 0,
            pooled_frames: 0,
            latencies_us: Vec::new(),
        }
    }

    /// Pooled connections.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Always false — the pool holds at least one connection.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Microseconds since the pool's epoch (the publish timestamp
    /// domain of the `VC1` header).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Installs a local plan mapping on every pooled connection.
    pub fn install_mapping(&self, channel: &str, mapping: &ChannelMapping, plan: PlanId) {
        for e in &self.entries {
            e.client
                .install_local_mapping(channel, mapping.clone(), plan);
        }
    }

    /// Subscribes virtual client `vid` to `channel`; hits the wire only
    /// on the connection's 0→1 refcount transition.
    pub fn subscribe(&mut self, vid: usize, channel: &str) {
        let idx = vid % self.entries.len().max(1);
        let entry = &mut self.entries[idx];
        let set = entry.want.entry(channel.to_owned()).or_default();
        if set.insert(vid) && set.len() == 1 {
            entry.client.subscribe(channel);
        }
    }

    /// Unsubscribes virtual client `vid`; hits the wire on 1→0.
    pub fn unsubscribe(&mut self, vid: usize, channel: &str) {
        let idx = vid % self.entries.len().max(1);
        let entry = &mut self.entries[idx];
        if let Some(set) = entry.want.get_mut(channel) {
            set.remove(&vid);
            if set.is_empty() {
                entry.want.remove(channel);
                entry.client.unsubscribe(channel);
            }
        }
    }

    /// Virtual clients wanting `channel` across the whole pool.
    pub fn want_count(&self, channel: &str) -> usize {
        self.entries
            .iter()
            .filter_map(|e| e.want.get(channel).map(|s| s.len()))
            .sum()
    }

    /// `(channel, pooled connections subscribed)` pairs — the wire-level
    /// subscription footprint the brokers should report once settled.
    pub fn subscription_footprint(&self) -> Vec<(String, usize)> {
        let mut m: HashMap<&str, usize> = HashMap::new();
        for e in &self.entries {
            for (ch, set) in &e.want {
                if !set.is_empty() {
                    *m.entry(ch).or_insert(0) += 1;
                }
            }
        }
        m.into_iter().map(|(ch, n)| (ch.to_owned(), n)).collect()
    }

    /// Drains every pooled connection, demuxing each frame to the
    /// virtual clients wanting its channel: `credit` is called once per
    /// frame with that set. Frames with a duplicate `(vpub, seq)` on
    /// the same connection are counted, not credited.
    pub fn drain(&mut self, credit: &mut dyn FnMut(&str, &HashSet<usize>)) {
        let empty = HashSet::new();
        let Self {
            entries,
            epoch,
            duplicates,
            pooled_frames,
            latencies_us,
        } = self;
        for entry in entries.iter_mut() {
            while let Some(msg) = entry.client.try_message() {
                *pooled_frames += 1;
                if let Some((vpub, seq, t_us)) = parse_vc(&msg.payload) {
                    let key = ((vpub as u64) << 32) | seq as u64;
                    if !entry.seen.insert(key) {
                        *duplicates += 1;
                        continue;
                    }
                    let now = epoch.elapsed().as_micros() as u64;
                    latencies_us.push(now.saturating_sub(t_us));
                }
                let vids = entry.want.get(msg.channel.as_str()).unwrap_or(&empty);
                credit(&msg.channel, vids);
            }
            while entry.client.try_event().is_some() {}
        }
    }

    /// Tears down every pooled connection.
    pub fn shutdown(mut self) {
        for e in self.entries.drain(..) {
            e.client.shutdown();
        }
    }
}

fn router_cfg(seed: u64) -> RouterConfig {
    RouterConfig {
        client: ClientConfig {
            tick: Duration::from_millis(1),
            ..ClientConfig::default()
        },
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..RouterConfig::default()
    }
}

/// Knobs shared by every scale scenario.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Brokers in the directory.
    pub brokers: usize,
    /// Pooled subscriber connections (real connections =
    /// `(pool + 1 publisher) × brokers`).
    pub pool: usize,
    /// Virtual-client population.
    pub vclients: usize,
    /// Publications for the celebrity scenario (one per step).
    pub publishes: usize,
    /// Steps for the stepped workloads (rgame / chat / flash).
    pub steps: usize,
    /// Publication payload bytes (headers included).
    pub payload: usize,
    /// Root seed for brokers, routers and workload PRNGs.
    pub seed: u64,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            brokers: 2,
            pool: 64,
            vclients: 100_000,
            publishes: 200,
            steps: 20,
            payload: 256,
            seed: 0x0D15_EA5E,
        }
    }
}

/// Measured results of one scale scenario.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Scenario name (`celebrity`, `rgame`, `chat`, `flash`).
    pub scenario: String,
    /// Virtual-client population.
    pub vclients: usize,
    /// Pooled subscriber connections.
    pub pool: usize,
    /// Real TCP connections opened (pool + publisher, × brokers).
    pub real_connections: usize,
    /// Brokers in the directory.
    pub brokers: usize,
    /// Publications issued.
    pub published: u64,
    /// Virtual deliveries owed to the accounted cohort.
    pub expected: u64,
    /// Virtual deliveries credited to the accounted cohort.
    pub delivered: u64,
    /// `delivered / expected` (1.0 when nothing was owed).
    pub delivery_ratio: f64,
    /// Duplicate `(vpub, seq)` frames on one connection (must be 0).
    pub duplicates: u64,
    /// Raw frames drained from the pooled connections.
    pub pooled_frames: u64,
    /// Mean publish→drain latency, ms.
    pub mean_latency_ms: f64,
    /// 99th-percentile publish→drain latency, ms.
    pub p99_latency_ms: f64,
    /// Wall-clock run time, seconds.
    pub secs: f64,
}

/// A finished live run: the row plus the per-broker wire-level
/// subscription counts (the fig-6 load-share proxy).
pub struct LiveRun {
    /// The measured scenario row.
    pub row: ScaleRow,
    /// Pooled subscriptions registered per broker at the end of the
    /// run.
    pub broker_subscriptions: Vec<usize>,
}

/// Execution options for [`run_live`].
pub struct LiveRunOptions {
    /// Wait for the initial subscription footprint to register on the
    /// brokers before publishing (required for exact accounting).
    pub settle: bool,
    /// Accounted cohort bound: only virtual clients with `vid < core`
    /// count towards `expected` / `delivered`. `usize::MAX` = everyone.
    pub core: usize,
    /// Channels to replicate `AllPublishers` across every broker (the
    /// paper's fan-out spreading for one-hot-channel scenarios).
    pub replicate: Vec<String>,
    /// Pause between workload steps.
    pub step_pause: Duration,
    /// Publications between intra-step micro-pauses (pacing, so client
    /// publish queues shed only under genuine overload).
    pub pace_every: usize,
}

impl Default for LiveRunOptions {
    fn default() -> Self {
        LiveRunOptions {
            settle: true,
            core: usize::MAX,
            replicate: Vec::new(),
            step_pause: Duration::from_millis(2),
            pace_every: 64,
        }
    }
}

fn quantile_us(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)] as f64 / 1_000.0
}

/// Waits until every `(channel, connections)` pair of the pool's
/// footprint is registered broker-side.
fn settle_subscriptions(brokers: &[TcpBroker], footprint: &[(String, usize)]) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let settled = footprint.iter().all(|(ch, n)| {
            brokers
                .iter()
                .map(|b| b.channel_subscribers(ch))
                .sum::<usize>()
                >= *n
        });
        if settled {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "subscriptions never settled ({} channels)",
            footprint.len()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drains the pool until no new pooled frame arrives for `quiet` (or
/// `deadline` elapses).
fn drain_until_quiet(
    pool: &mut VirtualPool,
    credit: &mut dyn FnMut(&str, &HashSet<usize>),
    quiet: Duration,
    deadline: Duration,
) {
    let hard = Instant::now() + deadline;
    let mut last_progress = Instant::now();
    let mut seen = pool.pooled_frames;
    loop {
        pool.drain(credit);
        if pool.pooled_frames != seen {
            seen = pool.pooled_frames;
            last_progress = Instant::now();
        }
        if last_progress.elapsed() > quiet || Instant::now() > hard {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Drives a [`LiveWorkload`] through a virtual-client pool against a
/// fresh live broker cluster and returns the measured run.
pub fn run_live(w: &mut dyn LiveWorkload, cfg: &ScaleConfig, opts: &LiveRunOptions) -> LiveRun {
    let brokers: Vec<TcpBroker> = (0..cfg.brokers.max(1))
        .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
        .collect();
    let directory: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
    let members: Vec<ServerId> = (0..brokers.len()).map(ServerId::from_index).collect();

    let mut pool = VirtualPool::connect(&directory, cfg.pool, cfg.seed);
    let publisher = RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 0xA0A0));
    if members.len() > 1 {
        for ch in &opts.replicate {
            let mapping = ChannelMapping::AllPublishers(members.clone());
            pool.install_mapping(ch, &mapping, PlanId(1));
            publisher.install_local_mapping(ch, mapping, PlanId(1));
        }
    }

    let core = opts.core;
    // Wire-level cohort expectations: how many *accounted* virtual
    // clients want each channel right now.
    let mut core_want: HashMap<String, u64> = HashMap::new();
    let mut desired: HashMap<usize, Vec<String>> = HashMap::new();
    let mut active = 0usize;
    let mut published = 0u64;
    let mut expected = 0u64;
    let mut delivered = 0u64;
    let mut seqs: HashMap<u32, u32> = HashMap::new();

    fn join(
        pool: &mut VirtualPool,
        core_want: &mut HashMap<String, u64>,
        core: usize,
        vid: usize,
        subs: &[String],
    ) {
        for ch in subs {
            pool.subscribe(vid, ch);
            if vid < core {
                *core_want.entry(ch.clone()).or_insert(0) += 1;
            }
        }
    }
    fn leave(
        pool: &mut VirtualPool,
        core_want: &mut HashMap<String, u64>,
        core: usize,
        vid: usize,
        subs: &[String],
    ) {
        for ch in subs {
            pool.unsubscribe(vid, ch);
            if vid < core {
                if let Some(n) = core_want.get_mut(ch.as_str()) {
                    *n = n.saturating_sub(1);
                }
            }
        }
    }

    let started = Instant::now();
    for step in 0..cfg.steps.max(1) {
        // Population churn: the active set is a prefix, so the deltas
        // are contiguous vid ranges.
        let now_active = w.active(step).min(w.clients());
        for vid in active..now_active {
            let subs = w.subscriptions(vid);
            join(&mut pool, &mut core_want, core, vid, &subs);
            desired.insert(vid, subs);
        }
        for vid in now_active..active {
            if let Some(subs) = desired.remove(&vid) {
                leave(&mut pool, &mut core_want, core, vid, &subs);
            }
        }
        active = now_active;
        if step == 0 && opts.settle {
            settle_subscriptions(&brokers, &pool.subscription_footprint());
        }

        let pubs: Vec<LivePublish> = w.step(step);
        // Movement reconcile: re-derive subscriptions for clients whose
        // interests track the step (tile crossings).
        if w.subscriptions_change_on_step() {
            for vid in 0..active {
                let subs = w.subscriptions(vid);
                if desired.get(&vid).map(Vec::as_slice) == Some(subs.as_slice()) {
                    continue;
                }
                let old = desired.insert(vid, subs.clone()).unwrap_or_default();
                let gone: Vec<String> = old.iter().filter(|c| !subs.contains(c)).cloned().collect();
                let new: Vec<String> = subs.iter().filter(|c| !old.contains(c)).cloned().collect();
                leave(&mut pool, &mut core_want, core, vid, &gone);
                join(&mut pool, &mut core_want, core, vid, &new);
            }
        }

        let mut credit = |_ch: &str, vids: &HashSet<usize>| {
            delivered += vids.iter().filter(|&&v| v < core).count() as u64;
        };
        for (i, p) in pubs.iter().enumerate() {
            expected += core_want.get(p.channel.as_str()).copied().unwrap_or(0);
            let seq = seqs.entry(p.vpub as u32).or_insert(0);
            let body = encode_vc(p.vpub as u32, *seq, pool.now_us(), p.payload);
            *seq += 1;
            publisher.publish(&p.channel, &body);
            published += 1;
            if (i + 1) % opts.pace_every.max(1) == 0 {
                std::thread::sleep(Duration::from_micros(300));
                pool.drain(&mut credit);
            }
        }
        pool.drain(&mut credit);
        std::thread::sleep(opts.step_pause);
    }
    let mut credit = |_ch: &str, vids: &HashSet<usize>| {
        delivered += vids.iter().filter(|&&v| v < core).count() as u64;
    };
    drain_until_quiet(
        &mut pool,
        &mut credit,
        Duration::from_secs(1),
        Duration::from_secs(120),
    );
    let secs = started.elapsed().as_secs_f64();

    let footprint = pool.subscription_footprint();
    let broker_subscriptions: Vec<usize> = brokers
        .iter()
        .map(|b| {
            footprint
                .iter()
                .map(|(ch, _)| b.channel_subscribers(ch))
                .sum()
        })
        .collect();

    let mut lat = std::mem::take(&mut pool.latencies_us);
    lat.sort_unstable();
    let mean_latency_ms = if lat.is_empty() {
        0.0
    } else {
        lat.iter().sum::<u64>() as f64 / lat.len() as f64 / 1_000.0
    };
    let row = ScaleRow {
        scenario: w.name().to_owned(),
        vclients: w.clients(),
        pool: pool.len(),
        real_connections: (pool.len() + 1) * brokers.len(),
        brokers: brokers.len(),
        published,
        expected,
        delivered,
        delivery_ratio: if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        },
        duplicates: pool.duplicates,
        pooled_frames: pool.pooled_frames,
        mean_latency_ms,
        p99_latency_ms: quantile_us(&lat, 0.99),
        secs,
    };

    pool.shutdown();
    publisher.shutdown();
    for b in brokers {
        b.shutdown();
    }
    LiveRun {
        row,
        broker_subscriptions,
    }
}

/// The celebrity fan-out workload: `fans` virtual subscribers follow
/// one hot channel; one virtual publisher posts every step.
pub struct Celebrity {
    /// Virtual subscribers on the hot channel.
    pub fans: usize,
    /// Payload bytes per post.
    pub payload: usize,
}

/// The celebrity hot channel.
pub const CELEBRITY_CHANNEL: &str = "celebrity.feed";

impl LiveWorkload for Celebrity {
    fn name(&self) -> &'static str {
        "celebrity"
    }
    fn clients(&self) -> usize {
        self.fans
    }
    fn active(&self, _step: usize) -> usize {
        self.fans
    }
    fn subscriptions(&self, _vid: usize) -> Vec<String> {
        vec![CELEBRITY_CHANNEL.to_owned()]
    }
    fn step(&mut self, _step: usize) -> Vec<LivePublish> {
        vec![LivePublish {
            vpub: 0,
            channel: CELEBRITY_CHANNEL.to_owned(),
            payload: self.payload,
        }]
    }
}

/// Celebrity fan-out: 10^5+ virtual subscribers on one channel, exact
/// exactly-once accounting — the acceptance scenario, gated at
/// delivery ratio 1.0.
pub fn celebrity_scale(cfg: &ScaleConfig) -> LiveRun {
    let mut w = Celebrity {
        fans: cfg.vclients,
        payload: cfg.payload,
    };
    let mut cfg = cfg.clone();
    cfg.steps = cfg.publishes;
    run_live(
        &mut w,
        &cfg,
        &LiveRunOptions {
            replicate: vec![CELEBRITY_CHANNEL.to_owned()],
            step_pause: Duration::from_millis(1),
            ..LiveRunOptions::default()
        },
    )
}

/// RGame on the live tier: virtual players roam the tile grid, each
/// publishing its update on (and subscribed to) its current tile.
/// Accounting is approximate — movement races in-flight publishes.
pub fn rgame_scale(cfg: &ScaleConfig) -> LiveRun {
    let mut w = LiveRGame::new(RGameConfig::default(), cfg.vclients, 3.0, cfg.seed);
    run_live(
        &mut w,
        cfg,
        &LiveRunOptions {
            step_pause: Duration::from_millis(5),
            ..LiveRunOptions::default()
        },
    )
}

/// Chat on the live tier: Zipf-popular rooms, static memberships, exact
/// accounting; the per-broker subscription shares are the fig-6 load
/// proxy.
pub fn chat_scale(cfg: &ScaleConfig) -> LiveRun {
    let mut w = LiveChat::new(ChatConfig::default(), cfg.vclients, 5.0, cfg.seed);
    run_live(
        &mut w,
        cfg,
        &LiveRunOptions {
            step_pause: Duration::from_millis(5),
            ..LiveRunOptions::default()
        },
    )
}

/// Flash crowd with churn: the wave cohort joins and leaves mid-run;
/// the delivery gate applies to the always-subscribed core cohort.
pub fn flash_scale(cfg: &ScaleConfig) -> LiveRun {
    let base = (cfg.vclients / 2).max(1);
    let steps = cfg.steps.max(6);
    let mut w = LiveFlash {
        base,
        wave: cfg.vclients - base,
        flash_at: steps / 6,
        ramp_steps: (steps / 6).max(1),
        flash_end: steps * 2 / 3,
        broadcasters: 4,
        payload: cfg.payload,
    };
    run_live(
        &mut w,
        cfg,
        &LiveRunOptions {
            core: base,
            replicate: vec![FLASH_CHANNEL.to_owned()],
            step_pause: Duration::from_millis(20),
            ..LiveRunOptions::default()
        },
    )
}

/// Measured results of the market-data conflation scenario.
#[derive(Debug, Clone)]
pub struct ConflateRow {
    /// Feed frames published into the stall.
    pub published: u64,
    /// Feed frames that reached the stalled consumer.
    pub delivered: u64,
    /// Frames conflated away (broker `per_connection_drops`).
    pub conflated: u64,
    /// `delivered + conflated == published` — shed-accounting closure.
    pub accounted: bool,
    /// Sequences arrived strictly increasing (conflation advances, not
    /// gaps, the stream).
    pub seq_monotone: bool,
    /// Frames still in the retention ring (conflation must not touch
    /// it).
    pub retained: usize,
    /// Frames replayed to a post-stall `DMSEQ1` resumer.
    pub resume_replayed: usize,
    /// Wall-clock run time, seconds.
    pub secs: f64,
}

/// Market-data conflation on the live tier: a broker running
/// [`OverflowPolicy::ConflateByChannel`] sheds stale quotes for a
/// stalled consumer while retention keeps the full stream for
/// resumers.
pub fn conflate_scale(seed: u64, flood: u64, payload: usize) -> ConflateRow {
    const FEED: &str = "prices.feed";
    let started = Instant::now();
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            outbox_limit_bytes: 32 * 1024,
            overflow_policy: OverflowPolicy::ConflateByChannel,
            retention_frames: 8192,
            retention_bytes: 64 * 1024 * 1024,
            ..BrokerConfig::default()
        },
    )
    .expect("bind broker");
    let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("proxy");
    let client_cfg = || ClientConfig {
        tick: Duration::from_millis(2),
        ..ClientConfig::default()
    };
    let sub = TcpPubSubClient::connect_addr(proxy.local_addr(), client_cfg());
    sub.subscribe_from(FEED, 0);
    let deadline = Instant::now() + Duration::from_secs(20);
    while broker.channel_subscribers(FEED) < 1 {
        assert!(Instant::now() < deadline, "feed subscription never settled");
        std::thread::sleep(Duration::from_millis(5));
    }
    let publisher = TcpPubSubClient::connect_addr(broker.local_addr(), client_cfg());

    // Seed the stream with a few small frames the consumer sees live,
    // then stall its path and flood the feed.
    let warmup = 4u64;
    let mut seqs: Vec<u64> = Vec::new();
    for _ in 0..warmup {
        publisher.publish(FEED, b"tick");
    }
    let warm_deadline = Instant::now() + Duration::from_secs(20);
    while (seqs.len() as u64) < warmup {
        while let Some(m) = sub.try_message() {
            seqs.push(m.seq.expect("sequenced subscription"));
        }
        assert!(Instant::now() < warm_deadline, "warm-up never delivered");
        std::thread::sleep(Duration::from_millis(5));
    }
    let stall = Duration::from_secs(2);
    let stall_over = Instant::now() + stall;
    proxy.stall(Direction::ServerToClient, stall);
    let quote = vec![b'q'; payload];
    for _ in 0..flood {
        publisher.publish(FEED, &quote);
    }
    while Instant::now() < stall_over {
        while let Some(m) = sub.try_message() {
            seqs.push(m.seq.expect("sequenced subscription"));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut last_progress = Instant::now();
    let mut seen = seqs.len();
    loop {
        while let Some(m) = sub.try_message() {
            seqs.push(m.seq.expect("sequenced subscription"));
        }
        if seqs.len() != seen {
            seen = seqs.len();
            last_progress = Instant::now();
        }
        if last_progress.elapsed() > Duration::from_secs(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    let published = warmup + flood;
    let delivered = seqs.len() as u64;
    let conflated: u64 = broker.per_connection_drops().iter().map(|(_, d)| *d).sum();
    let seq_monotone = seqs.windows(2).all(|w| w[0] < w[1]);
    let (retained, _next) = broker.channel_retention(FEED);

    // A fresh consumer resumes a recent suffix: it must replay from
    // retention even though the stalled outbox conflated those frames.
    let resumer = TcpPubSubClient::connect_addr(broker.local_addr(), client_cfg());
    let resume_from = published.saturating_sub(2);
    resumer.subscribe_from(FEED, resume_from);
    let mut resume_replayed = 0usize;
    let resume_deadline = Instant::now() + Duration::from_secs(20);
    while resume_replayed < 2 && Instant::now() < resume_deadline {
        while resumer.try_message().is_some() {
            resume_replayed += 1;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let row = ConflateRow {
        published,
        delivered,
        conflated,
        accounted: delivered + conflated == published,
        seq_monotone,
        retained,
        resume_replayed,
        secs: started.elapsed().as_secs_f64(),
    };
    sub.shutdown();
    publisher.shutdown();
    resumer.shutdown();
    proxy.shutdown();
    broker.shutdown();
    row
}

fn scale_row_json(r: &ScaleRow) -> String {
    format!(
        "{{\"scenario\": \"{}\", \"vclients\": {}, \"pool\": {}, \
         \"real_connections\": {}, \"brokers\": {}, \"published\": {}, \
         \"expected\": {}, \"delivered\": {}, \"delivery_ratio\": {:.4}, \
         \"duplicates\": {}, \"pooled_frames\": {}, \"mean_latency_ms\": {:.2}, \
         \"p99_latency_ms\": {:.2}, \"secs\": {:.2}}}",
        r.scenario,
        r.vclients,
        r.pool,
        r.real_connections,
        r.brokers,
        r.published,
        r.expected,
        r.delivered,
        r.delivery_ratio,
        r.duplicates,
        r.pooled_frames,
        r.mean_latency_ms,
        r.p99_latency_ms,
        r.secs,
    )
}

fn conflate_row_json(r: &ConflateRow) -> String {
    format!(
        "{{\"published\": {}, \"delivered\": {}, \"conflated\": {}, \
         \"accounted\": {}, \"seq_monotone\": {}, \"retained\": {}, \
         \"resume_replayed\": {}, \"secs\": {:.2}}}",
        r.published,
        r.delivered,
        r.conflated,
        r.accounted,
        r.seq_monotone,
        r.retained,
        r.resume_replayed,
        r.secs,
    )
}

/// Writes one scenario's rows as a standalone JSON document (the
/// `bench-scale --scenario` output).
pub fn write_scale_json(mut w: impl IoWrite, rows: &[ScaleRow]) -> std::io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"scale\",")?;
    writeln!(w, "  \"host_cores\": {},", crate::host_cores())?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(w, "    {}{comma}", scale_row_json(r))?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Writes the conflation scenario as a standalone JSON document.
pub fn write_conflate_json(mut w: impl IoWrite, row: &ConflateRow) -> std::io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"scale_conflate\",")?;
    writeln!(w, "  \"host_cores\": {},", crate::host_cores())?;
    writeln!(w, "  \"row\": {}", conflate_row_json(row))?;
    writeln!(w, "}}")
}

fn micro_row_json(side: &str, replicated: bool, r: &crate::MicroRow) -> String {
    format!(
        "{{\"side\": \"{side}\", \"replicated\": {replicated}, \"clients\": {}, \
         \"response_ms\": {}, \"delivery_ratio\": {:.4}, \"lost_subscriptions\": {}}}",
        r.clients,
        r.response_ms
            .map(|v| format!("{v:.1}"))
            .unwrap_or_else(|| "null".to_owned()),
        r.delivery_ratio,
        r.lost_subscriptions,
    )
}

/// A compact summary of a simulated game-scale run, the "sim column" of
/// the fig-5/6/7 artifacts.
pub struct SimGameSummary {
    /// Strategy label.
    pub strategy: String,
    /// Target player population of the schedule.
    pub target_players: usize,
    /// Largest player count sustained below 150 ms.
    pub sustained_150ms: usize,
    /// Peak active pub/sub servers.
    pub peak_servers: usize,
    /// Reconfigurations performed.
    pub rebalances: usize,
    /// Subscriptions lost to overload.
    pub lost_subscriptions: u64,
    /// Mean of the per-second average load ratios.
    pub avg_lr_mean: f64,
    /// Worst per-second maximum load ratio.
    pub max_lr_peak: f64,
}

/// Summarises a [`GameSeries`](crate::GameSeries) into the sim column.
pub fn sim_game_summary(
    strategy: &str,
    target_players: usize,
    series: &crate::GameSeries,
) -> SimGameSummary {
    let loads = &series.load;
    SimGameSummary {
        strategy: strategy.to_owned(),
        target_players,
        sustained_150ms: crate::sustained_players(series, 150.0),
        peak_servers: series.servers.iter().map(|&(_, n)| n).max().unwrap_or(0),
        rebalances: series.rebalances.len(),
        lost_subscriptions: series.lost_subscriptions,
        avg_lr_mean: if loads.is_empty() {
            0.0
        } else {
            loads.iter().map(|&(_, a, _)| a).sum::<f64>() / loads.len() as f64
        },
        max_lr_peak: loads.iter().map(|&(_, _, m)| m).fold(0.0, f64::max),
    }
}

fn sim_game_json(s: &SimGameSummary) -> String {
    format!(
        "{{\"strategy\": \"{}\", \"target_players\": {}, \"sustained_150ms\": {}, \
         \"peak_servers\": {}, \"rebalances\": {}, \"lost_subscriptions\": {}, \
         \"avg_lr_mean\": {:.3}, \"max_lr_peak\": {:.3}}}",
        s.strategy,
        s.target_players,
        s.sustained_150ms,
        s.peak_servers,
        s.rebalances,
        s.lost_subscriptions,
        s.avg_lr_mean,
        s.max_lr_peak,
    )
}

fn json_list(items: &[String]) -> String {
    let mut out = String::from("[\n");
    for (i, it) in items.iter().enumerate() {
        let comma = if i + 1 < items.len() { "," } else { "" };
        out.push_str(&format!("    {it}{comma}\n"));
    }
    out.push_str("  ]");
    out
}

fn fig_header(mut w: impl IoWrite, fig: &str) -> std::io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"{fig}\",")?;
    writeln!(w, "  \"host_cores\": {},", crate::host_cores())?;
    writeln!(w, "  \"time_scale\": {:.3},", crate::time_scale())
}

/// Writes `BENCH_fig4.json`: the replication micro-benchmark (sim) next
/// to the live celebrity fan-out and market-data conflation runs.
pub fn write_fig4_json(
    mut w: impl IoWrite,
    sim: &[(&str, bool, crate::MicroRow)],
    celebrity: &[ScaleRow],
    conflate: &ConflateRow,
) -> std::io::Result<()> {
    fig_header(&mut w, "fig4")?;
    let sim_rows: Vec<String> = sim
        .iter()
        .map(|(side, rep, r)| micro_row_json(side, *rep, r))
        .collect();
    writeln!(w, "  \"sim\": {},", json_list(&sim_rows))?;
    let live: Vec<String> = celebrity.iter().map(scale_row_json).collect();
    writeln!(w, "  \"live_celebrity\": {},", json_list(&live))?;
    writeln!(w, "  \"live_conflation\": {}", conflate_row_json(conflate))?;
    writeln!(w, "}}")
}

/// Writes `BENCH_fig5.json`: the client-scalability comparison (sim)
/// next to live rgame runs at growing virtual-player counts.
pub fn write_fig5_json(
    mut w: impl IoWrite,
    sim: &[SimGameSummary],
    rgame: &[ScaleRow],
) -> std::io::Result<()> {
    fig_header(&mut w, "fig5")?;
    let sim_rows: Vec<String> = sim.iter().map(sim_game_json).collect();
    writeln!(w, "  \"sim\": {},", json_list(&sim_rows))?;
    let live: Vec<String> = rgame.iter().map(scale_row_json).collect();
    writeln!(w, "  \"live_rgame\": {}", json_list(&live))?;
    writeln!(w, "}}")
}

/// Writes `BENCH_fig6.json`: simulated per-server load ratios next to
/// the live chat run's per-broker subscription shares.
pub fn write_fig6_json(
    mut w: impl IoWrite,
    sim: &SimGameSummary,
    chat: &LiveRun,
) -> std::io::Result<()> {
    fig_header(&mut w, "fig6")?;
    writeln!(w, "  \"sim\": {},", sim_game_json(sim))?;
    let shares = &chat.broker_subscriptions;
    let mean = shares.iter().sum::<usize>() as f64 / shares.len().max(1) as f64;
    let max_over_avg = shares
        .iter()
        .map(|&s| s as f64 / mean.max(f64::EPSILON))
        .fold(0.0, f64::max);
    writeln!(w, "  \"live_chat\": {{")?;
    writeln!(w, "    \"row\": {},", scale_row_json(&chat.row))?;
    writeln!(
        w,
        "    \"broker_subscriptions\": [{}],",
        shares
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    )?;
    writeln!(w, "    \"max_over_avg\": {max_over_avg:.3}")?;
    writeln!(w, "  }}")?;
    writeln!(w, "}}")
}

/// Writes `BENCH_fig7.json`: simulated elasticity next to the live
/// flash-crowd churn run.
pub fn write_fig7_json(
    mut w: impl IoWrite,
    sim: &SimGameSummary,
    flash: &LiveRun,
    base: usize,
) -> std::io::Result<()> {
    fig_header(&mut w, "fig7")?;
    writeln!(w, "  \"sim\": {},", sim_game_json(sim))?;
    writeln!(w, "  \"live_flash\": {{")?;
    writeln!(w, "    \"row\": {},", scale_row_json(&flash.row))?;
    writeln!(w, "    \"core_cohort\": {base},")?;
    writeln!(w, "    \"peak_active\": {}", flash.row.vclients)?;
    writeln!(w, "  }}")?;
    writeln!(w, "}}")
}

/// Regenerates `BENCH_fig4.json` … `BENCH_fig7.json` in `dir`, each
/// carrying the simulated series and the live scale-harness series side
/// by side. `sim_players` sizes the fig-5/6 sim schedules; `quick`
/// shrinks the live populations for smoke runs.
pub fn emit_figs(dir: &std::path::Path, seed: u64, sim_players: usize, quick: bool) {
    use dynamoth_core::BalancerStrategy;

    let file = |name: &str| {
        std::fs::File::create(dir.join(name)).unwrap_or_else(|e| panic!("create {name}: {e}"))
    };
    let base = ScaleConfig {
        seed,
        ..ScaleConfig::default()
    };

    // fig 4: replication micro (sim) vs celebrity fan-out + conflation.
    let sim4 = vec![
        ("subscribers", false, crate::fig4a(300, false, seed)),
        ("subscribers", true, crate::fig4a(300, true, seed)),
        ("publishers", false, crate::fig4b(300, false, seed)),
        ("publishers", true, crate::fig4b(300, true, seed)),
    ];
    let fans = if quick {
        vec![10_000]
    } else {
        vec![10_000, 100_000]
    };
    let celebrity: Vec<ScaleRow> = fans
        .into_iter()
        .map(|v| {
            let run = celebrity_scale(&ScaleConfig {
                vclients: v,
                ..base.clone()
            });
            eprintln!(
                "celebrity {v}: ratio {:.4} over {} real connections",
                run.row.delivery_ratio, run.row.real_connections
            );
            run.row
        })
        .collect();
    let conflate = conflate_scale(seed, if quick { 500 } else { 2_000 }, 4 * 1024);
    write_fig4_json(file("BENCH_fig4.json"), &sim4, &celebrity, &conflate).expect("fig4");

    // fig 5 (and fig 6's sim column): the scalability ramp.
    let dyn_series = crate::fig5(BalancerStrategy::Dynamoth, sim_players, seed);
    let ch_series = crate::fig5(BalancerStrategy::ConsistentHash, sim_players, seed);
    let sim5 = vec![
        sim_game_summary("dynamoth", sim_players, &dyn_series),
        sim_game_summary("consistent-hash", sim_players, &ch_series),
    ];
    let players = if quick {
        vec![500]
    } else {
        vec![500, 2_000, 8_000]
    };
    let rgame: Vec<ScaleRow> = players
        .into_iter()
        .map(|v| {
            let run = rgame_scale(&ScaleConfig {
                vclients: v,
                pool: 16,
                steps: 5,
                payload: 64,
                ..base.clone()
            });
            eprintln!("rgame {v}: ratio {:.4}", run.row.delivery_ratio);
            run.row
        })
        .collect();
    write_fig5_json(file("BENCH_fig5.json"), &sim5, &rgame).expect("fig5");

    // fig 6: load distribution — sim load ratios vs live chat skew.
    let chat = chat_scale(&ScaleConfig {
        vclients: if quick { 1_000 } else { 5_000 },
        steps: 6,
        ..base.clone()
    });
    eprintln!("chat: ratio {:.4}", chat.row.delivery_ratio);
    write_fig6_json(
        file("BENCH_fig6.json"),
        &sim_game_summary("dynamoth", sim_players, &dyn_series),
        &chat,
    )
    .expect("fig6");

    // fig 7: elasticity — sim step schedule vs live flash crowd.
    let sim7 = sim_game_summary("dynamoth", 650, &crate::fig7(seed));
    let flash_v = if quick { 10_000 } else { 60_000 };
    let flash = flash_scale(&ScaleConfig {
        vclients: flash_v,
        steps: 30,
        ..base
    });
    eprintln!("flash: core ratio {:.4}", flash.row.delivery_ratio);
    write_fig7_json(file("BENCH_fig7.json"), &sim7, &flash, flash_v / 2).expect("fig7");
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn vc_header_roundtrip() {
        let body = encode_vc(0xDEAD, 42, 123_456_789, 256);
        assert_eq!(body.len(), 256);
        assert_eq!(parse_vc(&body), Some((0xDEAD, 42, 123_456_789)));
        assert_eq!(parse_vc(b"not a header at all, far too short"), None);
        let short = encode_vc(1, 2, 3, 0);
        assert_eq!(short.len(), VC_HEADER_LEN);
        assert_eq!(parse_vc(&short), Some((1, 2, 3)));
    }

    #[test]
    fn tiny_celebrity_run_is_exact() {
        let (tx, rx) = mpsc::channel();
        let worker = std::thread::spawn(move || {
            let run = celebrity_scale(&ScaleConfig {
                brokers: 2,
                pool: 4,
                vclients: 50,
                publishes: 20,
                payload: 64,
                ..ScaleConfig::default()
            });
            assert_eq!(run.row.published, 20);
            assert_eq!(run.row.expected, 20 * 50);
            assert_eq!(run.row.delivered, run.row.expected, "{:?}", run.row);
            assert!((run.row.delivery_ratio - 1.0).abs() < 1e-9);
            assert_eq!(run.row.duplicates, 0);
            assert_eq!(run.row.real_connections, (4 + 1) * 2);
            let _ = tx.send(());
        });
        match rx.recv_timeout(Duration::from_secs(120)) {
            Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                if let Err(panic) = worker.join() {
                    std::panic::resume_unwind(panic);
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => panic!("celebrity smoke exceeded 120s"),
        }
    }
}
