//! Routed fan-out benchmark of the multi-broker TCP tier.
//!
//! Drives real [`RoutedClient`]s against a live broker *cluster*:
//! subscriber routers subscribe to every channel, publisher threads
//! round-robin publications across the channels, and the consistent-hash
//! ring spreads those channels over the directory — so the same offered
//! load can be measured on 1 broker vs N brokers. The per-cluster
//! delivery ceiling is the number the paper's rebalancing economics rent
//! servers against; comparing the `brokers = 1` row with the `brokers =
//! N` row shows what the plan-routed tier buys.
//!
//! [`bench_router`] runs one grid cell and returns a [`RouterBenchRow`];
//! [`write_router_json`] serialises a series as the `BENCH_router.json`
//! tracking artifact.

use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{ClientConfig, RoutedClient, RouterConfig, TcpBroker};

/// One cell of the routed fan-out grid.
#[derive(Debug, Clone)]
pub struct RouterBenchConfig {
    /// Brokers in the directory.
    pub brokers: usize,
    /// Channels, named so the ring spreads them across the directory.
    pub channels: usize,
    /// Subscriber routers; each subscribes to every channel.
    pub subscribers: usize,
    /// Publisher threads, each with its own router, round-robining over
    /// the channels.
    pub publishers: usize,
    /// Wall-clock publishing window.
    pub duration: Duration,
    /// Publication payload size in bytes.
    pub payload_bytes: usize,
    /// Seed for all router PRNGs (origins, member picks).
    pub seed: u64,
}

impl Default for RouterBenchConfig {
    fn default() -> Self {
        RouterBenchConfig {
            brokers: 3,
            channels: 12,
            subscribers: 2,
            publishers: 4,
            duration: Duration::from_millis(1_000),
            payload_bytes: 64,
            seed: 0xBEEF,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct RouterBenchRow {
    /// Brokers in the directory.
    pub brokers: usize,
    /// Channels spread over the ring.
    pub channels: usize,
    /// Subscriber routers.
    pub subscribers: usize,
    /// Publisher threads.
    pub publishers: usize,
    /// Publishing window actually used, seconds.
    pub publish_secs: f64,
    /// Publications issued by the publishers.
    pub published: u64,
    /// Message deliveries across all subscriber routers.
    pub delivered: u64,
    /// Deliveries owed: `published × subscribers`.
    pub expected: u64,
    /// Publish throughput, publications/s.
    pub publish_per_s: f64,
    /// Delivery throughput, deliveries/s (over publish window + drain).
    pub deliver_per_s: f64,
    /// `delivered / expected` (queue shedding under overload shows up
    /// here, not as a hang).
    pub delivery_ratio: f64,
    /// Cross-broker duplicates suppressed by the subscriber routers
    /// (should be 0 without reconfiguration traffic).
    pub duplicates_suppressed: u64,
}

fn quiet_client() -> ClientConfig {
    ClientConfig {
        tick: Duration::from_millis(1),
        ..ClientConfig::default()
    }
}

/// Runs one grid cell against a fresh broker cluster on loopback.
pub fn bench_router(cfg: &RouterBenchConfig) -> RouterBenchRow {
    let brokers: Vec<TcpBroker> = (0..cfg.brokers.max(1))
        .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
        .collect();
    let directory: Vec<std::net::SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
    let channel_names: Vec<String> = (0..cfg.channels.max(1))
        .map(|c| format!("grid-{c:03}"))
        .collect();
    let payload = vec![b'x'; cfg.payload_bytes];

    let router_cfg = |seed: u64| RouterConfig {
        client: quiet_client(),
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..RouterConfig::default()
    };

    // Subscribers: each router subscribes to every channel; a drain
    // thread per router counts deliveries.
    let delivered = Arc::new(AtomicU64::new(0));
    let duplicates = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut drain_threads = Vec::new();
    for s in 0..cfg.subscribers.max(1) {
        let sub =
            RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ ((s as u64) << 8)));
        for name in &channel_names {
            sub.subscribe(name);
        }
        let delivered = Arc::clone(&delivered);
        let duplicates = Arc::clone(&duplicates);
        let stop = Arc::clone(&stop);
        drain_threads.push(std::thread::spawn(move || {
            loop {
                let mut idle = true;
                while sub.try_message().is_some() {
                    delivered.fetch_add(1, Ordering::Relaxed);
                    idle = false;
                }
                while sub.try_event().is_some() {}
                if idle {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            duplicates.fetch_add(sub.stats().duplicates_suppressed, Ordering::Relaxed);
            sub.shutdown();
        }));
    }
    // Every channel must be registered on its ring home before traffic
    // starts; a subscriber router holds exactly one subscription per
    // channel, somewhere in the cluster.
    let want = cfg.subscribers.max(1) * cfg.channels.max(1);
    let reg_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let data_subs: usize = channel_names
            .iter()
            .map(|name| {
                brokers
                    .iter()
                    .map(|b| b.channel_subscribers(name))
                    .sum::<usize>()
            })
            .sum();
        if data_subs >= want {
            break;
        }
        assert!(
            Instant::now() < reg_deadline,
            "subscriptions never registered ({data_subs}/{want})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Publishers: paced batches so the client-side publish queues shed
    // only under genuine broker overload.
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut pub_threads = Vec::new();
    for p in 0..cfg.publishers.max(1) {
        let publisher =
            RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 0xA000 ^ p as u64));
        let names = channel_names.clone();
        let payload = payload.clone();
        pub_threads.push(std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut i = p; // offset so publishers interleave channels
            while Instant::now() < deadline {
                for _ in 0..32 {
                    publisher.publish(&names[i % names.len()], &payload);
                    i += 1;
                    sent += 1;
                }
                std::thread::sleep(Duration::from_micros(500));
            }
            // Let queued publications flush before the router drops its
            // connections.
            std::thread::sleep(Duration::from_millis(200));
            publisher.shutdown();
            sent
        }));
    }
    let published: u64 = pub_threads.into_iter().map(|t| t.join().unwrap()).sum();
    let publish_secs = started.elapsed().as_secs_f64();
    let expected = published * cfg.subscribers.max(1) as u64;

    // Drain until deliveries stop growing (or everything arrived).
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    let mut last = delivered.load(Ordering::Relaxed);
    while last < expected && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(50));
        let now = delivered.load(Ordering::Relaxed);
        if now == last {
            break;
        }
        last = now;
    }
    stop.store(true, Ordering::Relaxed);
    for t in drain_threads {
        t.join().unwrap();
    }
    let total_secs = started.elapsed().as_secs_f64();
    let delivered = delivered.load(Ordering::Relaxed);
    for broker in brokers {
        broker.shutdown();
    }

    RouterBenchRow {
        brokers: cfg.brokers.max(1),
        channels: cfg.channels.max(1),
        subscribers: cfg.subscribers.max(1),
        publishers: cfg.publishers.max(1),
        publish_secs,
        published,
        delivered,
        expected,
        publish_per_s: published as f64 / publish_secs.max(f64::EPSILON),
        deliver_per_s: delivered as f64 / total_secs.max(f64::EPSILON),
        delivery_ratio: if expected == 0 {
            1.0
        } else {
            delivered as f64 / expected as f64
        },
        duplicates_suppressed: duplicates.load(Ordering::Relaxed),
    }
}

/// Runs a `{brokers} × {subscribers}` grid at fixed channel count.
pub fn router_grid(
    brokers: &[usize],
    subscribers: &[usize],
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Vec<RouterBenchRow> {
    let mut rows = Vec::new();
    for &b in brokers {
        for &s in subscribers {
            rows.push(bench_router(&RouterBenchConfig {
                brokers: b,
                subscribers: s,
                duration,
                payload_bytes,
                seed,
                ..RouterBenchConfig::default()
            }));
        }
    }
    rows
}

/// Serialises a bench series as the `BENCH_router.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_router_json(mut w: impl IoWrite, rows: &[RouterBenchRow]) -> std::io::Result<()> {
    let cores = crate::host_cores();
    let io_loops = dynamoth_pubsub::BrokerConfig::default().resolved_io_loops();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"router_fanout\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"io_loops\": {io_loops},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"brokers\": {}, \"channels\": {}, \"subscribers\": {}, \
             \"publishers\": {}, \"publish_secs\": {:.3}, \"published\": {}, \
             \"delivered\": {}, \"expected\": {}, \"publish_per_s\": {:.0}, \
             \"deliver_per_s\": {:.0}, \"delivery_ratio\": {:.4}, \
             \"duplicates_suppressed\": {}}}{comma}",
            r.brokers,
            r.channels,
            r.subscribers,
            r.publishers,
            r.publish_secs,
            r.published,
            r.delivered,
            r.expected,
            r.publish_per_s,
            r.deliver_per_s,
            r.delivery_ratio,
            r.duplicates_suppressed,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV.
pub fn write_router_csv(mut w: impl IoWrite, rows: &[RouterBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "brokers,channels,subscribers,publishers,publish_secs,published,delivered,\
         expected,publish_per_s,deliver_per_s,delivery_ratio,duplicates_suppressed"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{:.3},{},{},{},{:.0},{:.0},{:.4},{}",
            r.brokers,
            r.channels,
            r.subscribers,
            r.publishers,
            r.publish_secs,
            r.published,
            r.delivered,
            r.expected,
            r.publish_per_s,
            r.deliver_per_s,
            r.delivery_ratio,
            r.duplicates_suppressed,
        )?;
    }
    Ok(())
}
