//! Resumable-subscription benchmark (DESIGN.md §10): how much outage a
//! subscriber can absorb with zero loss, as a function of the broker's
//! retention budget, and what the catch-up costs.
//!
//! Each cell runs a single broker with a [`ChaosProxy`] between it and
//! one subscriber. The subscriber's path is black-holed, a publisher on
//! a clean path pushes `outage_frames` publications into the channel's
//! retention ring, then the path heals and the cell measures what the
//! resume machinery recovers: frames replayed, frames declared missing
//! by the gap marker, and the wall-clock catch-up cost (heal → first
//! replayed frame, heal → fully caught up). `missed == 0` is the
//! zero-loss regime — an outage that fits retention costs only replay
//! latency; past the budget the loss is explicit, never silent.
//!
//! [`bench_resume`] runs one cell; [`write_resume_json`] serialises a
//! series as the `BENCH_resume.json` tracking artifact.

use std::io::Write as IoWrite;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    BrokerConfig, ChaosProxy, ClientConfig, ClientEvent, TcpBroker, TcpPubSubClient,
};

/// One cell of the resume grid.
#[derive(Debug, Clone)]
pub struct ResumeBenchConfig {
    /// Publications issued while the subscriber's path is dark.
    pub outage_frames: usize,
    /// Broker retention budget, in frames per channel.
    pub retention_frames: usize,
    /// Publication payload size in bytes.
    pub payload_bytes: usize,
    /// Seed for client and proxy PRNGs.
    pub seed: u64,
}

impl Default for ResumeBenchConfig {
    fn default() -> Self {
        ResumeBenchConfig {
            outage_frames: 512,
            retention_frames: 1024,
            payload_bytes: 64,
            seed: 0x5EED,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct ResumeBenchRow {
    /// Publications issued during the outage.
    pub outage_frames: usize,
    /// Broker retention budget, frames per channel.
    pub retention_frames: usize,
    /// Frames the broker replayed on resume.
    pub replayed: u64,
    /// Frames the gap marker declared evicted (0 in the zero-loss
    /// regime).
    pub missed: u64,
    /// Replayed frames actually delivered to the subscriber.
    pub delivered: u64,
    /// `missed / outage_frames`.
    pub loss_ratio: f64,
    /// Path-heal → first replayed frame, milliseconds (reconnect plus
    /// replay head latency).
    pub first_replay_ms: f64,
    /// Path-heal → last replayed frame, milliseconds (full catch-up).
    pub catch_up_ms: f64,
}

fn bench_client(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(5),
        reconnect_cap: Duration::from_millis(50),
        connect_timeout: Duration::from_millis(500),
        // A tight liveness deadline: connections half-opened into the
        // black hole die fast, so the measured catch-up time reflects
        // reconnect + replay rather than dead-connection detection.
        heartbeat_interval: Duration::from_millis(50),
        liveness_timeout: Duration::from_millis(300),
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

fn wait(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "bench stuck waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs one outage/retention cell against a fresh loopback broker.
pub fn bench_resume(cfg: &ResumeBenchConfig) -> ResumeBenchRow {
    const CHANNEL: &str = "bench-resume";
    let broker = TcpBroker::bind_with(
        "127.0.0.1:0",
        BrokerConfig {
            retention_frames: cfg.retention_frames,
            // Budget by frames only: give bytes generous headroom.
            retention_bytes: cfg.retention_frames * (cfg.payload_bytes + 64),
            ..BrokerConfig::default()
        },
    )
    .expect("bind broker");
    let proxy = ChaosProxy::spawn(broker.local_addr(), cfg.seed).expect("proxy");

    let sub = TcpPubSubClient::connect_with(proxy.local_addr(), bench_client(cfg.seed ^ 1))
        .expect("subscriber");
    sub.subscribe(CHANNEL);
    let publisher = TcpPubSubClient::connect_with(broker.local_addr(), bench_client(cfg.seed ^ 2))
        .expect("publisher");
    wait("subscription", Duration::from_secs(10), || {
        broker.channel_subscribers(CHANNEL) >= 1
    });

    // Establish the subscriber's high-water sequence, then cut the path.
    publisher.publish(CHANNEL, b"warmup");
    wait("warmup delivery", Duration::from_secs(10), || {
        sub.try_message().is_some()
    });
    proxy.set_black_hole(true);
    proxy.reset_all();
    wait("subscriber disconnect", Duration::from_secs(10), || {
        broker.channel_subscribers(CHANNEL) == 0
    });

    let body = vec![b'x'; cfg.payload_bytes];
    for _ in 0..cfg.outage_frames {
        publisher.publish(CHANNEL, &body);
    }
    wait("outage traffic sequenced", Duration::from_secs(30), || {
        broker.channel_retention(CHANNEL).1 > cfg.outage_frames as u64
    });

    // Heal and time the recovery.
    proxy.set_black_hole(false);
    let healed_at = Instant::now();
    let mut replayed = None;
    let mut missed = 0u64;
    let mut delivered = 0u64;
    let mut first_replay_ms = f64::NAN;
    let mut catch_up_ms = f64::NAN;
    let deadline = healed_at + Duration::from_secs(60);
    // Resume order on the wire is gap marker (if any), replayed frames,
    // resume marker — but the client surfaces events and messages on
    // separate queues, so poll both until the replay is fully accounted.
    loop {
        assert!(
            Instant::now() < deadline,
            "resume never completed (replayed {replayed:?}, delivered {delivered})"
        );
        while let Some(event) = sub.try_event() {
            match event {
                ClientEvent::Gap { missed: m, .. } => missed = m,
                ClientEvent::Resumed { replayed: r, .. } => replayed = Some(r),
                _ => {}
            }
        }
        while sub.try_message().is_some() {
            delivered += 1;
            let elapsed = healed_at.elapsed().as_secs_f64() * 1_000.0;
            if first_replay_ms.is_nan() {
                first_replay_ms = elapsed;
            }
            catch_up_ms = elapsed;
        }
        if let Some(r) = replayed {
            if delivered >= r {
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let replayed = replayed.unwrap_or(0);

    sub.shutdown();
    publisher.shutdown();
    proxy.shutdown();
    broker.shutdown();

    ResumeBenchRow {
        outage_frames: cfg.outage_frames,
        retention_frames: cfg.retention_frames,
        replayed,
        missed,
        delivered,
        loss_ratio: if cfg.outage_frames == 0 {
            0.0
        } else {
            missed as f64 / cfg.outage_frames as f64
        },
        first_replay_ms,
        catch_up_ms,
    }
}

/// Runs the outage × retention grid.
pub fn resume_grid(
    outages: &[usize],
    retentions: &[usize],
    payload_bytes: usize,
    seed: u64,
) -> Vec<ResumeBenchRow> {
    let mut rows = Vec::new();
    for &retention_frames in retentions {
        for &outage_frames in outages {
            rows.push(bench_resume(&ResumeBenchConfig {
                outage_frames,
                retention_frames,
                payload_bytes,
                seed,
            }));
        }
    }
    rows
}

/// Serialises a bench series as the `BENCH_resume.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_resume_json(mut w: impl IoWrite, rows: &[ResumeBenchRow]) -> std::io::Result<()> {
    let cores = crate::host_cores();
    let io_loops = dynamoth_pubsub::BrokerConfig::default().resolved_io_loops();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"resume\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"io_loops\": {io_loops},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"outage_frames\": {}, \"retention_frames\": {}, \"replayed\": {}, \
             \"missed\": {}, \"delivered\": {}, \"loss_ratio\": {:.4}, \
             \"first_replay_ms\": {:.2}, \"catch_up_ms\": {:.2}}}{comma}",
            r.outage_frames,
            r.retention_frames,
            r.replayed,
            r.missed,
            r.delivered,
            r.loss_ratio,
            r.first_replay_ms,
            r.catch_up_ms,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV.
pub fn write_resume_csv(mut w: impl IoWrite, rows: &[ResumeBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "outage_frames,retention_frames,replayed,missed,delivered,loss_ratio,\
         first_replay_ms,catch_up_ms"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{},{:.4},{:.2},{:.2}",
            r.outage_frames,
            r.retention_frames,
            r.replayed,
            r.missed,
            r.delivered,
            r.loss_ratio,
            r.first_replay_ms,
            r.catch_up_ms,
        )?;
    }
    Ok(())
}
