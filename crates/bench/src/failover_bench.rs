//! Whole-broker failover benchmark (DESIGN.md §12): the kill-to-dead
//! detection latency and post-failover delivery accounting as a
//! function of the detector's `{suspect_after, report_interval}` knobs.
//!
//! Each cell runs three brokers behind per-broker [`ChaosProxy`]s —
//! clients, sidecars, reporters and the balancer's confirmation probes
//! all reach a broker only through its proxy, so hard-killing one proxy
//! is indistinguishable from the broker's host dying. Under sustained
//! traffic the cell kills the ring home of the measured channels, times
//! suspect → probe → dead, waits for the emergency replan and the
//! router-side failover gap, re-publishes the unconfirmed tail (the
//! gap is the application's cue; duplicates are absorbed by
//! distinct-body accounting) and verifies zero loss on the survivors.
//!
//! [`bench_failover`] runs one cell; [`write_failover_json`] serialises
//! a series as the `BENCH_failover.json` tracking artifact.

use std::collections::HashSet;
use std::io::Write as IoWrite;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BalancerConfig, ChaosProxy, ClientConfig, ClientEvent, DispatcherSidecar,
    GapReason, LiveLoadBalancer, LoadReporter, Ring, RoutedClient, RouterConfig, ServerId,
    SidecarConfig, TcpBroker, DEFAULT_VNODES,
};

/// One cell of the failover grid.
#[derive(Debug, Clone)]
pub struct FailoverBenchConfig {
    /// Missed report intervals before a broker is suspect (`K`).
    pub suspect_after: u32,
    /// LLA report interval.
    pub report_interval: Duration,
    /// Confirmation-probe timeout.
    pub probe_timeout: Duration,
    /// Channels homed on the victim (all killed at once).
    pub channels: usize,
    /// Publication payload size in bytes.
    pub payload_bytes: usize,
    /// Seed for client and proxy PRNGs.
    pub seed: u64,
}

impl Default for FailoverBenchConfig {
    fn default() -> Self {
        FailoverBenchConfig {
            suspect_after: 3,
            report_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(250),
            channels: 6,
            payload_bytes: 512,
            seed: 0xFA11,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct FailoverBenchRow {
    /// `K`: missed intervals before suspicion.
    pub suspect_after: u32,
    /// Report interval, milliseconds.
    pub report_interval_ms: f64,
    /// Kill → balancer declares the broker dead, milliseconds.
    pub kill_to_dead_ms: f64,
    /// The analytic detection bound `K·interval + probe_timeout`,
    /// milliseconds (no scheduling slack).
    pub detect_bound_ms: f64,
    /// Kill → router-side `Gap {{ reason: Failover }}` at the
    /// subscriber, milliseconds.
    pub kill_to_gap_ms: f64,
    /// Kill → every published body delivered via survivors,
    /// milliseconds (includes the tail re-publish).
    pub kill_to_recovered_ms: f64,
    /// Distinct bodies published across the run.
    pub published: usize,
    /// Distinct bodies delivered (`== published` ⇒ zero loss).
    pub delivered: usize,
    /// Channels the emergency replan moved off the corpse.
    pub channels_moved: usize,
    /// Post-replan max survivor load ratio.
    pub max_survivor_lr: f64,
    /// The `(1+ε)×mean` bounded-load cap the replan packed under;
    /// `-1.0` when the replan was uncapped (zero measured load).
    pub cap_ratio: f64,
}

fn bench_client(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        connect_timeout: Duration::from_millis(250),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(5),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

fn wait(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !pred() {
        assert!(Instant::now() < deadline, "bench stuck waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Runs one `{suspect_after, report_interval}` cell: kill the victim's
/// proxy under load, time detection / gap / full recovery, verify zero
/// loss.
pub fn bench_failover(cfg: &FailoverBenchConfig) -> FailoverBenchRow {
    let seed = cfg.seed;
    let brokers: Vec<TcpBroker> = (0..3)
        .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
        .collect();
    let direct: Vec<SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
    let proxies: Vec<ChaosProxy> = direct
        .iter()
        .enumerate()
        .map(|(i, &addr)| ChaosProxy::spawn(addr, seed ^ (0x40 + i as u64)).expect("proxy"))
        .collect();
    let proxied: Vec<SocketAddr> = proxies.iter().map(|p| p.local_addr()).collect();

    let sidecars: Vec<DispatcherSidecar> = (0..3)
        .map(|i| {
            DispatcherSidecar::start(
                ServerId::from_index(i),
                proxied.clone(),
                SidecarConfig {
                    ttl: Duration::from_secs(30),
                    tick: Duration::from_millis(5),
                    client: bench_client(seed ^ (0x50 + i as u64)),
                    ..SidecarConfig::default()
                },
            )
        })
        .collect();
    let reporters: Vec<LoadReporter> = brokers
        .iter()
        .enumerate()
        .map(|(i, b)| {
            LoadReporter::start(
                b.load_handle(),
                i,
                proxied[i],
                cfg.report_interval,
                bench_client(seed ^ (0x60 + i as u64)),
            )
        })
        .collect();

    let ring = Ring::new(
        &(0..3).map(ServerId::from_index).collect::<Vec<_>>(),
        DEFAULT_VNODES,
    );
    let victim = ring.server_for(channel_id_of("fb-00")).index();
    let channels: Vec<String> = (0..)
        .map(|i| format!("fb-{i:02}"))
        .filter(|name| ring.server_for(channel_id_of(name)).index() == victim)
        .take(cfg.channels)
        .collect();

    let router_cfg = |s: u64| RouterConfig {
        client: bench_client(s),
        switch_grace: Duration::from_secs(1),
        failover_after: Duration::from_millis(700),
        probe_timeout: cfg.probe_timeout,
        reprobe_interval: Duration::from_millis(500),
        seed: Some(s),
        ..RouterConfig::default()
    };
    let sub = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 1));
    let publisher = RoutedClient::connect(proxied.clone(), router_cfg(seed ^ 2));
    for name in &channels {
        sub.subscribe(name);
    }
    wait("subscriptions", Duration::from_secs(10), || {
        brokers[victim].channel_subscribers(&channels[0]) > 0
    });

    let balancer = LiveLoadBalancer::start(
        proxied.clone(),
        BalancerConfig {
            // High floor: the ordinary balancer stays quiet, so the
            // emergency replan is the only mover (see tests/failover.rs).
            capacity_floor: 500_000.0,
            tick: Duration::from_millis(100),
            window: 2,
            warmup_ticks: 2,
            install_refresh: Duration::from_secs(2),
            client: bench_client(seed ^ 3),
            report_interval: cfg.report_interval,
            suspect_after: cfg.suspect_after,
            probe_timeout: cfg.probe_timeout,
            ..BalancerConfig::default()
        },
    );

    let mut delivered: HashSet<String> = HashSet::new();
    let mut published: Vec<(String, String)> = Vec::new();
    let mut kill_to_gap_ms = f64::NAN;
    let mut next = 0usize;
    let mut publish_round = |publisher: &RoutedClient, published: &mut Vec<(String, String)>| {
        for name in &channels {
            let mut body = format!("{name}:{next}:");
            body.push_str(&"x".repeat(cfg.payload_bytes.saturating_sub(body.len())));
            publisher.publish(name, body.as_bytes());
            published.push((name.clone(), body));
            next += 1;
        }
    };

    // Steady state: traffic flowing end to end, every broker reporting.
    for _ in 0..30 {
        publish_round(&publisher, &mut published);
        std::thread::sleep(Duration::from_millis(10));
        while let Some(msg) = sub.try_message() {
            delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
        }
        while sub.try_event().is_some() {}
    }
    wait("pre-kill deliveries", Duration::from_secs(30), || {
        while let Some(msg) = sub.try_message() {
            delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
        }
        published.iter().all(|(_, b)| delivered.contains(b))
    });

    // ── The kill ─────────────────────────────────────────────────────
    proxies[victim].kill_upstream_hard();
    let killed_at = Instant::now();
    let pump = |delivered: &mut HashSet<String>, kill_to_gap_ms: &mut f64| {
        while let Some(msg) = sub.try_message() {
            delivered.insert(String::from_utf8(msg.payload).expect("utf8"));
        }
        while let Some(event) = sub.try_event() {
            if matches!(
                event.event,
                ClientEvent::Gap {
                    reason: GapReason::Failover,
                    ..
                }
            ) && kill_to_gap_ms.is_nan()
            {
                *kill_to_gap_ms = killed_at.elapsed().as_secs_f64() * 1_000.0;
            }
        }
    };

    while balancer.stats().deaths_declared == 0 {
        assert!(
            killed_at.elapsed() < Duration::from_secs(30),
            "death never declared"
        );
        publish_round(&publisher, &mut published);
        std::thread::sleep(Duration::from_millis(10));
        pump(&mut delivered, &mut kill_to_gap_ms);
    }
    let kill_to_dead_ms = killed_at.elapsed().as_secs_f64() * 1_000.0;

    wait("emergency replan", Duration::from_secs(10), || {
        balancer.stats().emergency_replans >= 1
    });
    let replan = balancer.stats().last_replan.expect("replan summary");

    // Keep publishing until the router surfaces the failover gap, then
    // re-publish the whole tail (frames the corpse acked but never
    // fanned out are unknowable across incarnations).
    let deadline = Instant::now() + Duration::from_secs(20);
    while kill_to_gap_ms.is_nan() {
        assert!(Instant::now() < deadline, "no failover gap surfaced");
        publish_round(&publisher, &mut published);
        std::thread::sleep(Duration::from_millis(10));
        pump(&mut delivered, &mut kill_to_gap_ms);
    }
    let tail: Vec<(String, String)> = published.clone();
    for (name, body) in &tail {
        publisher.publish(name, body.as_bytes());
    }
    for _ in 0..20 {
        publish_round(&publisher, &mut published);
        std::thread::sleep(Duration::from_millis(10));
        pump(&mut delivered, &mut kill_to_gap_ms);
    }
    wait("zero loss", Duration::from_secs(60), || {
        pump(&mut delivered, &mut kill_to_gap_ms);
        published.iter().all(|(_, b)| delivered.contains(b))
    });
    let kill_to_recovered_ms = killed_at.elapsed().as_secs_f64() * 1_000.0;

    let row = FailoverBenchRow {
        suspect_after: cfg.suspect_after,
        report_interval_ms: cfg.report_interval.as_secs_f64() * 1_000.0,
        kill_to_dead_ms,
        detect_bound_ms: (cfg.report_interval * cfg.suspect_after + cfg.probe_timeout)
            .as_secs_f64()
            * 1_000.0,
        kill_to_gap_ms,
        kill_to_recovered_ms,
        published: published.len(),
        delivered: published
            .iter()
            .filter(|(_, b)| delivered.contains(b))
            .count(),
        channels_moved: replan.channels_moved,
        max_survivor_lr: replan.max_survivor_lr,
        // A zero-total (cold-start) replan is uncapped; inf is not
        // valid JSON, so serialize it as the -1.0 sentinel.
        cap_ratio: if replan.cap_ratio.is_finite() {
            replan.cap_ratio
        } else {
            -1.0
        },
    };

    balancer.shutdown();
    sub.shutdown();
    publisher.shutdown();
    for reporter in reporters {
        reporter.shutdown();
    }
    for sidecar in sidecars {
        sidecar.shutdown();
    }
    for proxy in proxies {
        proxy.shutdown();
    }
    for broker in brokers {
        broker.shutdown();
    }
    row
}

/// Runs the `suspect_after × report_interval` grid.
pub fn failover_grid(
    suspect_afters: &[u32],
    report_intervals_ms: &[u64],
    seed: u64,
) -> Vec<FailoverBenchRow> {
    let mut rows = Vec::new();
    for &suspect_after in suspect_afters {
        for &interval_ms in report_intervals_ms {
            rows.push(bench_failover(&FailoverBenchConfig {
                suspect_after,
                report_interval: Duration::from_millis(interval_ms),
                seed,
                ..FailoverBenchConfig::default()
            }));
        }
    }
    rows
}

/// Serialises a bench series as the `BENCH_failover.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_failover_json(mut w: impl IoWrite, rows: &[FailoverBenchRow]) -> std::io::Result<()> {
    let cores = crate::host_cores();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"failover\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"suspect_after\": {}, \"report_interval_ms\": {:.0}, \
             \"kill_to_dead_ms\": {:.2}, \"detect_bound_ms\": {:.0}, \
             \"kill_to_gap_ms\": {:.2}, \"kill_to_recovered_ms\": {:.2}, \
             \"published\": {}, \"delivered\": {}, \"channels_moved\": {}, \
             \"max_survivor_lr\": {:.4}, \"cap_ratio\": {:.4}}}{comma}",
            r.suspect_after,
            r.report_interval_ms,
            r.kill_to_dead_ms,
            r.detect_bound_ms,
            r.kill_to_gap_ms,
            r.kill_to_recovered_ms,
            r.published,
            r.delivered,
            r.channels_moved,
            r.max_survivor_lr,
            r.cap_ratio,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV.
pub fn write_failover_csv(mut w: impl IoWrite, rows: &[FailoverBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "suspect_after,report_interval_ms,kill_to_dead_ms,detect_bound_ms,kill_to_gap_ms,\
         kill_to_recovered_ms,published,delivered,channels_moved,max_survivor_lr,cap_ratio"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{:.0},{:.2},{:.0},{:.2},{:.2},{},{},{},{:.4},{:.4}",
            r.suspect_after,
            r.report_interval_ms,
            r.kill_to_dead_ms,
            r.detect_bound_ms,
            r.kill_to_gap_ms,
            r.kill_to_recovered_ms,
            r.published,
            r.delivered,
            r.channels_moved,
            r.max_survivor_lr,
            r.cap_ratio,
        )?;
    }
    Ok(())
}
