//! Loopback-TCP concurrency benchmark of the reactor-core [`TcpBroker`].
//!
//! Drives the *real* broker over real sockets: `P` publisher threads
//! each own one channel and pipeline `PUBLISH` commands against it,
//! while `S` subscriber connections each subscribe to **all** `P`
//! channels, drain their sockets and count deliveries. Every publish
//! fans out to exactly `S` subscribers regardless of `P`, so cells in
//! one subscriber column are directly comparable: adding publisher
//! threads adds offered load on disjoint index shards without changing
//! per-publish work.
//!
//! Two scale axes matter for the reactor engine and both are covered:
//!
//! * **Fan-out** (`subscribers`) exercises outbox batching — the
//!   `flush_frames / flush_writes` ratio in each row is the measured
//!   syscall coalescing of the event loops.
//! * **Connection count** (`connections`) parks that many *idle*
//!   extra connections on the broker for the whole cell, exercising
//!   epoll-set scale: an engine that walks or wakes per connection
//!   slows down here, a readiness-driven one does not.
//!
//! Subscriber sockets are drained by a small pool of reader threads
//! (not thread-per-subscriber), so the bench client itself stays cheap
//! enough to measure 1k+ subscribers on small hosts.
//!
//! [`bench_broker`] runs one grid cell and returns a [`BrokerBenchRow`];
//! [`write_broker_json`] serialises a series as the `BENCH_broker.json`
//! tracking artifact; [`assert_coalescing`] turns a row's measured
//! ratio into a CI gate.

use std::io::{Read, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dynamoth_pubsub::resp::{self, Value};
use dynamoth_pubsub::TcpBroker;

/// Reader threads draining the subscriber sockets.
const READER_POOL: usize = 4;

/// One cell of the broker concurrency grid.
#[derive(Debug, Clone)]
pub struct BrokerBenchConfig {
    /// Publisher threads; each owns one channel.
    pub publishers: usize,
    /// Subscriber connections; each subscribes to every channel.
    pub subscribers: usize,
    /// Extra idle connections parked on the broker for the whole cell
    /// (clamped to the process fd budget; see [`fd_clamped_conns`]).
    pub connections: usize,
    /// Wall-clock publishing window.
    pub duration: Duration,
    /// `PUBLISH` payload size in bytes.
    pub payload_bytes: usize,
    /// Publishes each publisher keeps in flight (pipelining window).
    pub pipeline: usize,
}

impl Default for BrokerBenchConfig {
    fn default() -> Self {
        BrokerBenchConfig {
            publishers: 1,
            subscribers: 1,
            connections: 0,
            duration: Duration::from_millis(1_000),
            payload_bytes: 64,
            pipeline: 32,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct BrokerBenchRow {
    /// Publisher threads.
    pub publishers: usize,
    /// Subscriber connections.
    pub subscribers: usize,
    /// Idle extra connections actually parked (post fd-clamp).
    pub connections: usize,
    /// Event loops the broker ran with.
    pub io_loops: usize,
    /// Publishing window actually used, seconds.
    pub publish_secs: f64,
    /// `PUBLISH` commands acknowledged by the broker.
    pub published: u64,
    /// Message pushes received across all subscribers.
    pub delivered: u64,
    /// Pushes the subscribers should have received.
    pub expected: u64,
    /// Publish throughput, commands/s.
    pub publish_per_s: f64,
    /// Delivery throughput, pushes/s (over publish window + drain).
    pub deliver_per_s: f64,
    /// Subscriber connections killed by output-buffer overflow.
    pub killed: u64,
    /// Frames flushed by the broker's event loops.
    pub flush_frames: u64,
    /// Vectored-write syscalls those flushes used.
    pub flush_writes: u64,
}

/// Clamps an idle-connection request to the process fd budget: both
/// socket ends live in this process (two fds per connection), and the
/// live bench traffic plus broker plumbing need headroom.
pub fn fd_clamped_conns(requested: usize, reserved: usize) -> usize {
    let soft = std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits
                .lines()
                .find(|l| l.starts_with("Max open files"))
                .and_then(|l| l.split_whitespace().nth(3))
                .and_then(|v| v.parse::<usize>().ok())
        })
        .unwrap_or(1_024);
    let budget = (soft.saturating_sub(512) / 2).saturating_sub(reserved);
    requested.min(budget)
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect to broker");
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .expect("set timeout");
    stream
}

/// Reads one RESP value, blocking up to `timeout`.
fn recv_value(stream: &mut TcpStream, buf: &mut Vec<u8>, timeout: Duration) -> Option<Value> {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some((value, used)) = resp::decode(buf).expect("valid resp") {
            buf.drain(..used);
            return Some(value);
        }
        if Instant::now() >= deadline {
            return None;
        }
        let mut chunk = [0u8; 64 * 1024];
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return None,
        }
    }
}

fn send_command(stream: &mut TcpStream, words: &[&str]) {
    let value = Value::array(words.iter().map(|w| Value::bulk(*w)).collect());
    let mut out = Vec::new();
    resp::encode(&value, &mut out);
    stream.write_all(&out).expect("write command");
}

/// One subscriber socket owned by the reader pool: nonblocking stream
/// plus the byte remainder carried between reads (pushes are
/// fixed-length, so deliveries are counted as `bytes / frame_len`).
struct PooledSub {
    stream: TcpStream,
    carry: u64,
    dead: bool,
}

/// Runs one grid cell against a fresh broker on a loopback socket.
pub fn bench_broker(cfg: &BrokerBenchConfig) -> BrokerBenchRow {
    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind broker");
    let addr = broker.local_addr();
    let io_loops = broker.io_loops();
    let channels = cfg.publishers.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let delivered = Arc::new(AtomicU64::new(0));

    // Channel names are zero-padded to a fixed width so every push
    // frame has the same length (the subscribers count deliveries by
    // bytes / frame_len instead of decoding every frame).
    assert!(channels <= 100, "channel name padding supports ≤ 100");
    let channel_names: Vec<String> = (0..channels).map(|c| format!("bench-{c:02}")).collect();
    let payload = vec![b'x'; cfg.payload_bytes];
    let frame_len = {
        let mut buf = Vec::new();
        resp::encode(&resp::message_push(&channel_names[0], &payload), &mut buf);
        buf.len() as u64
    };

    // Idle connections first: they sit in the broker's epoll sets for
    // the whole cell without ever sending a command, so any per-
    // connection cost in the hot path shows up in the row's throughput.
    let idle_target = fd_clamped_conns(cfg.connections, cfg.subscribers + cfg.publishers + 16);
    if idle_target < cfg.connections {
        eprintln!(
            "bench-broker: fd limit clamps idle connections {} -> {idle_target}",
            cfg.connections
        );
    }
    let idle_conns: Vec<TcpStream> = (0..idle_target)
        .map(|_| TcpStream::connect(addr).expect("connect idle"))
        .collect();

    // Subscribers: each subscribes to every channel, so per-publish
    // fan-out is exactly `subscribers` no matter how many publisher
    // threads the cell uses. The handshake runs on this thread; the
    // sockets then go nonblocking and are drained by a fixed pool of
    // reader threads.
    let mut pool: Vec<Vec<PooledSub>> = (0..READER_POOL).map(|_| Vec::new()).collect();
    for i in 0..cfg.subscribers {
        let mut stream = connect(addr);
        let mut buf = Vec::new();
        for name in &channel_names {
            send_command(&mut stream, &["SUBSCRIBE", name]);
        }
        for _ in &channel_names {
            recv_value(&mut stream, &mut buf, Duration::from_secs(5)).expect("subscribe ack");
        }
        stream
            .set_nonblocking(true)
            .expect("nonblocking subscriber");
        pool[i % READER_POOL].push(PooledSub {
            stream,
            carry: buf.len() as u64, // pushes that raced the acks
            dead: false,
        });
    }
    let sub_threads: Vec<_> = pool
        .into_iter()
        .map(|mut subs| {
            let stop = Arc::clone(&stop);
            let delivered = Arc::clone(&delivered);
            std::thread::spawn(move || {
                let mut chunk = vec![0u8; 256 * 1024];
                loop {
                    let mut progress = false;
                    for sub in subs.iter_mut().filter(|s| !s.dead) {
                        loop {
                            match sub.stream.read(&mut chunk) {
                                Ok(0) => {
                                    sub.dead = true; // killed or shut down
                                    break;
                                }
                                Ok(n) => {
                                    progress = true;
                                    sub.carry += n as u64;
                                    delivered.fetch_add(sub.carry / frame_len, Ordering::Relaxed);
                                    sub.carry %= frame_len;
                                }
                                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                                Err(_) => {
                                    sub.dead = true;
                                    break;
                                }
                            }
                        }
                    }
                    if !progress {
                        if stop.load(Ordering::Relaxed) || subs.iter().all(|s| s.dead) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            })
        })
        .collect();

    // Wait until every subscription is registered before publishing.
    let expected_registrations = cfg.subscribers * channels;
    let reg_deadline = Instant::now() + Duration::from_secs(10);
    while broker.subscription_count() < expected_registrations {
        assert!(
            Instant::now() < reg_deadline,
            "subscribers never registered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Publishers: one thread per channel, pipelined.
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut pub_threads = Vec::new();
    for p in 0..cfg.publishers {
        let channel = channel_names[p % channels].clone();
        let payload = String::from_utf8(payload.clone()).expect("ascii payload");
        let pipeline = cfg.pipeline.max(1);
        pub_threads.push(std::thread::spawn(move || {
            let mut stream = connect(addr);
            let mut buf = Vec::new();
            let mut inflight = 0usize;
            let mut acked = 0u64;
            while Instant::now() < deadline {
                send_command(&mut stream, &["PUBLISH", &channel, &payload]);
                inflight += 1;
                if inflight >= pipeline {
                    if recv_value(&mut stream, &mut buf, Duration::from_secs(5)).is_some() {
                        acked += 1;
                        inflight -= 1;
                    } else {
                        return acked;
                    }
                }
            }
            while inflight > 0 {
                match recv_value(&mut stream, &mut buf, Duration::from_secs(5)) {
                    Some(_) => {
                        acked += 1;
                        inflight -= 1;
                    }
                    None => break,
                }
            }
            acked
        }));
    }
    let published: u64 = pub_threads.into_iter().map(|t| t.join().unwrap()).sum();
    let publish_secs = started.elapsed().as_secs_f64();

    // Every subscriber listens on every channel, so each acknowledged
    // publish owes exactly `subscribers` pushes.
    let expected: u64 = published * cfg.subscribers as u64;

    // Drain: wait until deliveries stop growing (or everything arrived).
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    let mut last = delivered.load(Ordering::Relaxed);
    while last < expected && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(50));
        let now = delivered.load(Ordering::Relaxed);
        if now == last {
            break;
        }
        last = now;
    }
    // Sample kills while the subscribers are still connected — their
    // own teardown below also removes registrations. A killed
    // connection loses all `channels` of its registrations at once.
    let killed =
        (expected_registrations.saturating_sub(broker.subscription_count()) / channels) as u64;
    stop.store(true, Ordering::Relaxed);
    for t in sub_threads {
        t.join().unwrap();
    }
    drop(idle_conns);
    let total_secs = started.elapsed().as_secs_f64();
    let delivered = delivered.load(Ordering::Relaxed);
    let flush = broker.flush_stats();
    broker.shutdown();

    BrokerBenchRow {
        publishers: cfg.publishers,
        subscribers: cfg.subscribers,
        connections: idle_target,
        io_loops,
        publish_secs,
        published,
        delivered,
        expected,
        publish_per_s: published as f64 / publish_secs.max(f64::EPSILON),
        deliver_per_s: delivered as f64 / total_secs.max(f64::EPSILON),
        killed,
        flush_frames: flush.frames,
        flush_writes: flush.writes,
    }
}

/// Runs the `{publishers} × {subscribers} × {connections}` grid.
pub fn broker_grid(
    publishers: &[usize],
    subscribers: &[usize],
    connections: &[usize],
    duration: Duration,
    payload_bytes: usize,
) -> Vec<BrokerBenchRow> {
    let conns = if connections.is_empty() {
        &[0][..]
    } else {
        connections
    };
    let mut rows = Vec::new();
    for &c in conns {
        for &p in publishers {
            for &s in subscribers {
                rows.push(bench_broker(&BrokerBenchConfig {
                    publishers: p,
                    subscribers: s,
                    connections: c,
                    duration,
                    payload_bytes,
                    ..BrokerBenchConfig::default()
                }));
            }
        }
    }
    rows
}

/// Panics unless `row` shows at least the required syscall coalescing:
/// `flush_writes <= max_ratio × flush_frames`. A ratio of 1.0 is the
/// no-coalescing floor (one writev per frame); the reactor's batched
/// outbox drain should land far below it on fan-out workloads.
pub fn assert_coalescing(row: &BrokerBenchRow, max_ratio: f64) {
    assert!(row.flush_frames > 0, "no frames flushed — empty cell?");
    let ratio = row.flush_writes as f64 / row.flush_frames as f64;
    assert!(
        ratio <= max_ratio,
        "coalescing regression at {}x{} (+{} idle): {} writes for {} frames \
         (ratio {ratio:.3} > {max_ratio})",
        row.publishers,
        row.subscribers,
        row.connections,
        row.flush_writes,
        row.flush_frames,
    );
}

/// Serialises a bench series as the `BENCH_broker.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_broker_json(mut w: impl IoWrite, rows: &[BrokerBenchRow]) -> std::io::Result<()> {
    let cores = crate::host_cores();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"broker_concurrency\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"publishers\": {}, \"subscribers\": {}, \"connections\": {}, \
             \"io_loops\": {}, \"publish_secs\": {:.3}, \
             \"published\": {}, \"delivered\": {}, \"expected\": {}, \
             \"publish_per_s\": {:.0}, \"deliver_per_s\": {:.0}, \"killed\": {}, \
             \"flush_frames\": {}, \"flush_writes\": {}}}{comma}",
            r.publishers,
            r.subscribers,
            r.connections,
            r.io_loops,
            r.publish_secs,
            r.published,
            r.delivered,
            r.expected,
            r.publish_per_s,
            r.deliver_per_s,
            r.killed,
            r.flush_frames,
            r.flush_writes,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV (the `cargo bench` face of the same data).
pub fn write_broker_csv(mut w: impl IoWrite, rows: &[BrokerBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "publishers,subscribers,connections,io_loops,publish_secs,published,delivered,expected,\
         publish_per_s,deliver_per_s,killed,flush_frames,flush_writes"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{:.3},{},{},{},{:.0},{:.0},{},{},{}",
            r.publishers,
            r.subscribers,
            r.connections,
            r.io_loops,
            r.publish_secs,
            r.published,
            r.delivered,
            r.expected,
            r.publish_per_s,
            r.deliver_per_s,
            r.killed,
            r.flush_frames,
            r.flush_writes,
        )?;
    }
    Ok(())
}
