//! # dynamoth-bench
//!
//! Experiment drivers regenerating every figure of the paper's
//! evaluation (§V). Each `figN` function assembles the corresponding
//! workload on the simulated substrate, runs it, and returns the series
//! the paper plots; the `fig*` bench binaries print them as CSV.
//!
//! | Function | Paper figure |
//! |---|---|
//! | [`fig4a`] | Fig. 4a — all-publishers replication micro-benchmark |
//! | [`fig4b`] | Fig. 4b — all-subscribers replication micro-benchmark |
//! | [`fig5`]  | Fig. 5a-c — client scalability, Dynamoth vs consistent hashing |
//! | [`fig6`]  | Fig. 6 — per-server load ratios under Dynamoth |
//! | [`fig7`]  | Fig. 7a-b — elasticity under a fluctuating player count |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker_bench;
pub mod failover_bench;
pub mod rebalance_bench;
pub mod resume_bench;
pub mod router_bench;
pub mod scale;

use std::sync::Arc;

use dynamoth_core::{
    BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, DynamothConfig, Plan,
    RebalanceKind, ServerId,
};
use dynamoth_net::CloudTransportConfig;
use dynamoth_sim::{SimDuration, SimTime};
use dynamoth_workloads::{
    rgame::RGameConfig, schedule::Schedule, setup::spawn_hot_channel, setup::spawn_players,
};

/// Physical parallelism of the bench host, recorded in every
/// `BENCH_*.json` artifact so rows from different machines are
/// comparable. `available_parallelism` alone under-reports inside
/// cgroup CPU quotas (it reflects the quota, not the silicon), so take
/// the max of it and the processor count in `/proc/cpuinfo`.
pub fn host_cores() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    avail.max(cpuinfo).max(1)
}

/// Scale factor for experiment durations, settable via the
/// `DYNAMOTH_TIME_SCALE` environment variable (default 1.0 = the
/// durations below; larger values lengthen runs towards the paper's
/// original timelines).
pub fn time_scale() -> f64 {
    std::env::var("DYNAMOTH_TIME_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&v| v > 0.0)
        .unwrap_or(1.0)
}

fn scaled_secs(base: u64) -> SimDuration {
    SimDuration::from_secs_f64(base as f64 * time_scale())
}

/// One row of the Experiment-1 output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroRow {
    /// Number of clients on the varied side (subscribers in 4a,
    /// publishers in 4b).
    pub clients: usize,
    /// Mean response time over the steady-state window, ms (`None` when
    /// nothing was delivered).
    pub response_ms: Option<f64>,
    /// Fraction of expected messages actually delivered.
    pub delivery_ratio: f64,
    /// Subscriptions lost to output-buffer overflows.
    pub lost_subscriptions: u64,
}

/// Shared setup for Experiment 1: three servers, manual balancing, one
/// hot channel.
fn micro_cluster(seed: u64) -> Cluster {
    Cluster::build(ClusterConfig {
        seed,
        pool_size: 3,
        initial_active: 3,
        strategy: BalancerStrategy::Manual,
        dynamoth: DynamothConfig::default(),
        transport: CloudTransportConfig::default(),
        ..Default::default()
    })
}

const HOT: ChannelId = ChannelId(0);

fn replicate_hot(cluster: &mut Cluster, mapping: ChannelMapping) {
    let mut plan = Plan::bootstrap();
    plan.set(HOT, mapping);
    cluster.install_plan(plan);
}

fn run_micro(
    mut cluster: Cluster,
    n_publishers: usize,
    n_subscribers: usize,
    rate: f64,
) -> (Option<f64>, f64, u64) {
    let warmup = 5u64;
    let measure = scaled_secs(20).as_micros() / 1_000_000;
    spawn_hot_channel(
        &mut cluster,
        HOT,
        n_publishers,
        rate,
        1_936,
        n_subscribers,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(warmup + measure + 2));
    let expected = rate * n_publishers as f64 * n_subscribers as f64 * measure as f64;
    let response = cluster
        .trace
        .mean_response_ms_between(warmup, warmup + measure);
    let ratio = (cluster.trace.delivered_total() as f64 / expected).min(1.0);
    (response, ratio, cluster.trace.lost_subscriptions())
}

/// Fig. 4a — *all-publishers* replication: one publisher at 10 msg/s,
/// `subscribers` subscribers on a single channel, with and without
/// 3-server replication.
pub fn fig4a(subscribers: usize, replicated: bool, seed: u64) -> MicroRow {
    let mut cluster = micro_cluster(seed);
    let servers: Vec<ServerId> = cluster.servers.clone();
    let mapping = if replicated {
        ChannelMapping::AllPublishers(servers)
    } else {
        ChannelMapping::Single(servers[0])
    };
    replicate_hot(&mut cluster, mapping);
    let (response_ms, delivery_ratio, lost_subscriptions) =
        run_micro(cluster, 1, subscribers, 10.0);
    MicroRow {
        clients: subscribers,
        response_ms,
        delivery_ratio,
        lost_subscriptions,
    }
}

/// Fig. 4b — *all-subscribers* replication: `publishers` publishers at
/// 10 msg/s each, one subscriber, with and without 3-server replication.
pub fn fig4b(publishers: usize, replicated: bool, seed: u64) -> MicroRow {
    let mut cluster = micro_cluster(seed);
    let servers: Vec<ServerId> = cluster.servers.clone();
    let mapping = if replicated {
        ChannelMapping::AllSubscribers(servers)
    } else {
        ChannelMapping::Single(servers[0])
    };
    replicate_hot(&mut cluster, mapping);
    let (response_ms, delivery_ratio, lost_subscriptions) = run_micro(cluster, publishers, 1, 10.0);
    MicroRow {
        clients: publishers,
        response_ms,
        delivery_ratio,
        lost_subscriptions,
    }
}

/// The time series extracted from a game-scale run (Experiments 2/3).
#[derive(Debug, Clone)]
pub struct GameSeries {
    /// `(second, active players)` — Fig. 5a / 7a.
    pub players: Vec<(u64, usize)>,
    /// `(second, outgoing messages per second)` — Fig. 5b / 7b.
    pub messages: Vec<(u64, u64)>,
    /// `(second, active pub/sub servers)` — Fig. 5b / 7a.
    pub servers: Vec<(u64, usize)>,
    /// `(second, mean response time ms)` — Fig. 5c / 7b.
    pub response: Vec<(u64, f64)>,
    /// `(second, avg LR, max LR)` — Fig. 6.
    pub load: Vec<(u64, f64, f64)>,
    /// Reconfiguration marks `(second, kind)`.
    pub rebalances: Vec<(f64, RebalanceKind)>,
    /// Subscriptions lost to overload.
    pub lost_subscriptions: u64,
}

/// Runs a game-scale experiment with the given schedule and strategy.
pub fn run_game(
    strategy: BalancerStrategy,
    schedule: &Schedule,
    duration: SimDuration,
    seed: u64,
) -> GameSeries {
    let mut cluster = Cluster::build(ClusterConfig {
        seed,
        pool_size: 8,
        initial_active: 1,
        strategy,
        dynamoth: DynamothConfig::default(),
        transport: CloudTransportConfig::default(),
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    spawn_players(&mut cluster, &game, schedule);
    cluster.run_for(duration);
    GameSeries {
        players: cluster.trace.player_series(),
        messages: cluster.trace.delivery_series(),
        servers: cluster.trace.server_series(),
        response: cluster.trace.response_series(),
        load: cluster.trace.load_series(),
        rebalances: cluster.trace.rebalance_series(),
        lost_subscriptions: cluster.trace.lost_subscriptions(),
    }
}

/// Fig. 5 — scalability ramp (120 → `total` players), for one strategy.
/// Returns the full series; Fig. 6 uses the same run's `load` series.
pub fn fig5(strategy: BalancerStrategy, total: usize, seed: u64) -> GameSeries {
    let ramp_end = scaled_secs(300);
    let tail = scaled_secs(60);
    let schedule = Schedule::ramp(120, total, SimTime::from_secs(5), SimTime::ZERO + ramp_end);
    run_game(strategy, &schedule, ramp_end + tail, seed)
}

/// Fig. 6 — the Dynamoth load-ratio series is the `load` component of
/// [`fig5`] run with [`BalancerStrategy::Dynamoth`].
pub fn fig6(total: usize, seed: u64) -> GameSeries {
    fig5(BalancerStrategy::Dynamoth, total, seed)
}

/// Fig. 7 — elasticity: ramp up, drop sharply, climb back. The paper
/// drives 800 → 200 → ~600 players against a ~1000-player capacity;
/// the default amplitudes here target the same *fractions* of this
/// substrate's measured capacity (~820 players, see `EXPERIMENTS.md`),
/// preserving the relative load profile.
pub fn fig7(seed: u64) -> GameSeries {
    fig7_with_amplitudes(650, 160, 320, seed)
}

/// [`fig7`] with explicit player amplitudes: ramp to `up1`, drop to
/// `keep`, then add `up2` fresh players.
pub fn fig7_with_amplitudes(up1: usize, keep: usize, up2: usize, seed: u64) -> GameSeries {
    let t0 = SimTime::from_secs(5);
    let t1 = SimTime::ZERO + scaled_secs(120);
    let t2 = SimTime::ZERO + scaled_secs(180);
    let t3 = SimTime::ZERO + scaled_secs(240);
    let t4 = SimTime::ZERO + scaled_secs(330);
    let schedule = Schedule::steps(up1, keep, up2, t0, t1, t2, t3, t4);
    run_game(
        BalancerStrategy::Dynamoth,
        &schedule,
        scaled_secs(420),
        seed,
    )
}

/// The paper's headline metric: the largest player count a strategy
/// *sustains* below `bound_ms` — requiring three consecutive good
/// seconds so a single lucky sample during the collapse cannot inflate
/// the number.
pub fn sustained_players(series: &GameSeries, bound_ms: f64) -> usize {
    let mut sustained = 0usize;
    let mut streak = 0usize;
    for &(sec, resp) in &series.response {
        if resp > bound_ms {
            streak = 0;
            continue;
        }
        streak += 1;
        if streak < 3 {
            continue;
        }
        // The players series is sparse (updated on joins/leaves): take
        // the latest count at or before `sec`.
        let players = series
            .players
            .iter()
            .take_while(|&&(s, _)| s <= sec)
            .last()
            .map(|&(_, n)| n)
            .unwrap_or(0);
        sustained = sustained.max(players);
    }
    sustained
}

/// Formats a `(second, value)` series as CSV lines.
pub fn csv2<T: std::fmt::Display>(name: &str, series: &[(u64, T)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {name}\nsecond,{name}\n"));
    for (s, v) in series {
        out.push_str(&format!("{s},{v}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sustained_players_tracks_bound() {
        let series = GameSeries {
            players: vec![(0, 100), (10, 500), (20, 900)],
            messages: vec![],
            servers: vec![],
            // Three consecutive good seconds are required; second 25 is a
            // lone spike back below some bounds and must not count.
            response: vec![
                (5, 80.0),
                (6, 85.0),
                (7, 90.0),
                (15, 120.0),
                (16, 120.0),
                (17, 130.0),
                (18, 700.0),
                (25, 90.0),
            ],
            load: vec![],
            rebalances: vec![],
            lost_subscriptions: 0,
        };
        assert_eq!(sustained_players(&series, 150.0), 500);
        assert_eq!(sustained_players(&series, 100.0), 100);
        assert_eq!(sustained_players(&series, 10.0), 0);
    }

    #[test]
    fn csv_formatting() {
        let csv = csv2("players", &[(0, 1u64), (1, 2u64)]);
        assert!(csv.contains("second,players"));
        assert!(csv.contains("0,1"));
    }

    #[test]
    fn micro_experiments_are_deterministic() {
        // Same seed ⇒ bit-identical experiment outcomes (the property
        // that makes every figure in EXPERIMENTS.md reproducible).
        assert_eq!(fig4a(150, true, 7), fig4a(150, true, 7));
        assert_eq!(fig4b(150, false, 7), fig4b(150, false, 7));
        // Different seeds may differ in exact latencies but keep the
        // shape (both healthy at 150 clients).
        let a = fig4a(150, true, 7);
        assert!(a.response_ms.unwrap() < 150.0);
        assert!((a.delivery_ratio - 1.0).abs() < 1e-9);
    }
}
