//! Autonomous-rebalancing benchmark of the live control plane
//! (DESIGN.md §9): the same skewed offered load measured with the
//! [`LiveLoadBalancer`] switched on vs off.
//!
//! Every channel in the grid is ring-homed on **one** broker, so with
//! rebalancing off the whole offered load funnels through a single
//! machine of the 3-broker cluster no matter how high it climbs. With
//! rebalancing on, the brokers self-report load, Algorithm 2 migrates
//! channels off the hot broker mid-run, and the cluster absorbs the
//! load — delivery ratio and tail latency at the upper rungs of the
//! grid are the paper's argument for dynamic rebalancing, reproduced
//! on the real TCP tier.
//!
//! [`bench_rebalance`] runs one cell and returns a
//! [`RebalanceBenchRow`]; [`write_rebalance_json`] serialises a series
//! as the `BENCH_rebalance.json` tracking artifact.

use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BalancerConfig, ClientConfig, DispatcherSidecar, LiveLoadBalancer, LoadReporter,
    Ring, RoutedClient, RouterConfig, ServerId, SidecarConfig, TcpBroker, DEFAULT_VNODES,
};

const BROKERS: usize = 3;

/// One cell of the rebalancing grid.
#[derive(Debug, Clone)]
pub struct RebalanceBenchConfig {
    /// Total offered publication rate across all publishers, per second.
    pub offered_per_s: u64,
    /// Whether the live balancer (reporters + `LiveLoadBalancer`) runs.
    pub rebalancing: bool,
    /// Channels, all ring-homed on the same (hot) broker.
    pub channels: usize,
    /// Publication payload size in bytes (timestamp header included).
    pub payload_bytes: usize,
    /// Wall-clock publishing window.
    pub duration: Duration,
    /// Broker capacity the balancer assumes, in egress bytes per 100 ms
    /// report interval.
    pub capacity_floor: f64,
    /// Seed for all client PRNGs.
    pub seed: u64,
}

impl Default for RebalanceBenchConfig {
    fn default() -> Self {
        RebalanceBenchConfig {
            offered_per_s: 4_000,
            rebalancing: true,
            channels: 6,
            payload_bytes: 512,
            duration: Duration::from_millis(2_000),
            capacity_floor: 100_000.0,
            seed: 0xD1A0,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct RebalanceBenchRow {
    /// Offered publication rate, per second.
    pub offered_per_s: u64,
    /// Whether the live balancer ran.
    pub rebalancing: bool,
    /// Publishing window actually used, seconds.
    pub publish_secs: f64,
    /// Publications issued.
    pub published: u64,
    /// Deliveries at the subscriber router.
    pub delivered: u64,
    /// `delivered / published` (one subscriber per channel).
    pub delivery_ratio: f64,
    /// Mean publish→delivery latency, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile publish→delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Plans the balancer installed (0 with rebalancing off).
    pub plans_installed: u64,
    /// High-load rebalances the balancer performed.
    pub high_load_rebalances: u64,
}

fn quiet_client(seed: u64) -> ClientConfig {
    ClientConfig {
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Runs one grid cell against a fresh 3-broker cluster on loopback.
pub fn bench_rebalance(cfg: &RebalanceBenchConfig) -> RebalanceBenchRow {
    let brokers: Vec<TcpBroker> = (0..BROKERS)
        .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
        .collect();
    let directory: Vec<std::net::SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
    let sidecars: Vec<DispatcherSidecar> = (0..BROKERS)
        .map(|i| {
            DispatcherSidecar::start(
                ServerId::from_index(i),
                directory.clone(),
                SidecarConfig {
                    tick: Duration::from_millis(2),
                    client: quiet_client(cfg.seed ^ (0x30 + i as u64)),
                    ..SidecarConfig::default()
                },
            )
        })
        .collect();
    let (reporters, balancer) = if cfg.rebalancing {
        let reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    directory[i],
                    Duration::from_millis(100),
                    quiet_client(cfg.seed ^ (0x40 + i as u64)),
                )
            })
            .collect();
        let balancer = LiveLoadBalancer::start(
            directory.clone(),
            BalancerConfig {
                capacity_floor: cfg.capacity_floor,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                client: quiet_client(cfg.seed ^ 0x50),
                ..BalancerConfig::default()
            },
        );
        (reporters, Some(balancer))
    } else {
        (Vec::new(), None)
    };

    // Skew: every channel ring-homed on the same broker.
    let ring = Ring::new(
        &(0..BROKERS).map(ServerId::from_index).collect::<Vec<_>>(),
        DEFAULT_VNODES,
    );
    let hot = ring.server_for(channel_id_of("skew-000")).index();
    let channel_names: Vec<String> = (0..)
        .map(|i| format!("skew-{i:03}"))
        .filter(|name| ring.server_for(channel_id_of(name)).index() == hot)
        .take(cfg.channels.max(1))
        .collect();

    let router_cfg = |seed: u64| RouterConfig {
        client: quiet_client(seed),
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..RouterConfig::default()
    };

    // One subscriber router over all channels; its drain thread parses
    // the timestamp header out of every payload into the latency log.
    let epoch = Instant::now();
    let delivered = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sub = RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 1));
    for name in &channel_names {
        sub.subscribe(name);
    }
    let drain = {
        let delivered = Arc::clone(&delivered);
        let latencies = Arc::clone(&latencies);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            loop {
                let mut idle = true;
                while let Some(msg) = sub.try_message() {
                    idle = false;
                    delivered.fetch_add(1, Ordering::Relaxed);
                    let sent_us = msg
                        .payload
                        .split(|&b| b == b';')
                        .next()
                        .and_then(|f| std::str::from_utf8(f).ok())
                        .and_then(|f| f.parse::<u64>().ok());
                    if let Some(sent_us) = sent_us {
                        let now_us = epoch.elapsed().as_micros() as u64;
                        latencies
                            .lock()
                            .unwrap()
                            .push(now_us.saturating_sub(sent_us));
                    }
                }
                while sub.try_event().is_some() {}
                if idle {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            sub.shutdown();
        })
    };
    let want = channel_names.len();
    let reg_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let subs: usize = channel_names
            .iter()
            .map(|name| {
                brokers
                    .iter()
                    .map(|b| b.channel_subscribers(name))
                    .sum::<usize>()
            })
            .sum();
        if subs >= want {
            break;
        }
        assert!(
            Instant::now() < reg_deadline,
            "subscriptions never registered ({subs}/{want})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Two publishers split the offered rate, pacing in 5 ms batches and
    // stamping each payload with its publish time.
    const PUBLISHERS: u64 = 2;
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut pub_threads = Vec::new();
    for p in 0..PUBLISHERS {
        let publisher = RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 0xB000 ^ p));
        let names = channel_names.clone();
        let per_batch = (cfg.offered_per_s / PUBLISHERS / 200).max(1) as usize;
        let payload_bytes = cfg.payload_bytes;
        pub_threads.push(std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut i = p as usize;
            let mut body = Vec::with_capacity(payload_bytes + 24);
            while Instant::now() < deadline {
                for _ in 0..per_batch {
                    body.clear();
                    body.extend_from_slice(epoch.elapsed().as_micros().to_string().as_bytes());
                    body.push(b';');
                    body.resize(body.len().max(payload_bytes), b'x');
                    publisher.publish(&names[i % names.len()], &body);
                    i += 1;
                    sent += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(200));
            publisher.shutdown();
            sent
        }));
    }
    let published: u64 = pub_threads.into_iter().map(|t| t.join().unwrap()).sum();
    let publish_secs = started.elapsed().as_secs_f64();

    // Drain until deliveries stop growing (or everything arrived).
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    let mut last = delivered.load(Ordering::Relaxed);
    while last < published && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(50));
        let now = delivered.load(Ordering::Relaxed);
        if now == last {
            break;
        }
        last = now;
    }
    stop.store(true, Ordering::Relaxed);
    drain.join().unwrap();
    let delivered = delivered.load(Ordering::Relaxed);

    let (plans_installed, high_load_rebalances) = balancer
        .as_ref()
        .map(|b| {
            let s = b.stats();
            (s.plans_installed, s.high_load_rebalances)
        })
        .unwrap_or((0, 0));
    if let Some(balancer) = balancer {
        balancer.shutdown();
    }
    for reporter in reporters {
        reporter.shutdown();
    }
    for sidecar in sidecars {
        sidecar.shutdown();
    }
    for broker in brokers {
        broker.shutdown();
    }

    let mut lat = std::mem::take(&mut *latencies.lock().unwrap());
    lat.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if lat.is_empty() {
            return f64::NAN;
        }
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    let mean_ms = if lat.is_empty() {
        f64::NAN
    } else {
        lat.iter().sum::<u64>() as f64 / lat.len() as f64 / 1_000.0
    };

    RebalanceBenchRow {
        offered_per_s: cfg.offered_per_s,
        rebalancing: cfg.rebalancing,
        publish_secs,
        published,
        delivered,
        delivery_ratio: if published == 0 {
            1.0
        } else {
            delivered as f64 / published as f64
        },
        mean_ms,
        p99_ms: quantile(0.99),
        plans_installed,
        high_load_rebalances,
    }
}

/// Runs the offered-load grid, each rung with rebalancing off then on.
pub fn rebalance_grid(
    offered: &[u64],
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Vec<RebalanceBenchRow> {
    let mut rows = Vec::new();
    for &offered_per_s in offered {
        for rebalancing in [false, true] {
            rows.push(bench_rebalance(&RebalanceBenchConfig {
                offered_per_s,
                rebalancing,
                duration,
                payload_bytes,
                seed,
                ..RebalanceBenchConfig::default()
            }));
        }
    }
    rows
}

/// Serialises a bench series as the `BENCH_rebalance.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_rebalance_json(
    mut w: impl IoWrite,
    rows: &[RebalanceBenchRow],
) -> std::io::Result<()> {
    let cores = crate::host_cores();
    let io_loops = dynamoth_pubsub::BrokerConfig::default().resolved_io_loops();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"rebalance_live\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"io_loops\": {io_loops},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"offered_per_s\": {}, \"rebalancing\": {}, \"publish_secs\": {:.3}, \
             \"published\": {}, \"delivered\": {}, \"delivery_ratio\": {:.4}, \
             \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \"plans_installed\": {}, \
             \"high_load_rebalances\": {}}}{comma}",
            r.offered_per_s,
            r.rebalancing,
            r.publish_secs,
            r.published,
            r.delivered,
            r.delivery_ratio,
            r.mean_ms,
            r.p99_ms,
            r.plans_installed,
            r.high_load_rebalances,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV.
pub fn write_rebalance_csv(mut w: impl IoWrite, rows: &[RebalanceBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "offered_per_s,rebalancing,publish_secs,published,delivered,delivery_ratio,\
         mean_ms,p99_ms,plans_installed,high_load_rebalances"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{:.3},{},{},{:.4},{:.2},{:.2},{},{}",
            r.offered_per_s,
            r.rebalancing,
            r.publish_secs,
            r.published,
            r.delivered,
            r.delivery_ratio,
            r.mean_ms,
            r.p99_ms,
            r.plans_installed,
            r.high_load_rebalances,
        )?;
    }
    Ok(())
}
