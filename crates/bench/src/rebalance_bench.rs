//! Autonomous-rebalancing benchmark of the live control plane
//! (DESIGN.md §9): the same skewed offered load measured with the
//! [`LiveLoadBalancer`] switched on vs off.
//!
//! Every channel in the grid is ring-homed on **one** broker, so with
//! rebalancing off the whole offered load funnels through a single
//! machine of the 3-broker cluster no matter how high it climbs. With
//! rebalancing on, the brokers self-report load, Algorithm 2 migrates
//! channels off the hot broker mid-run, and the cluster absorbs the
//! load — delivery ratio and tail latency at the upper rungs of the
//! grid are the paper's argument for dynamic rebalancing, reproduced
//! on the real TCP tier.
//!
//! [`bench_rebalance`] runs one cell and returns a
//! [`RebalanceBenchRow`]; [`write_rebalance_json`] serialises a series
//! as the `BENCH_rebalance.json` tracking artifact.

use std::io::Write as IoWrite;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dynamoth_pubsub::{
    channel_id_of, BalancerConfig, ClientConfig, DispatcherSidecar, LiveLoadBalancer, LoadReporter,
    Ring, RoutedClient, RouterConfig, ServerId, SidecarConfig, TcpBroker, DEFAULT_VNODES,
};

const BROKERS: usize = 3;

/// One cell of the rebalancing grid.
#[derive(Debug, Clone)]
pub struct RebalanceBenchConfig {
    /// Total offered publication rate across all publishers, per second.
    pub offered_per_s: u64,
    /// Whether the live balancer (reporters + `LiveLoadBalancer`) runs.
    pub rebalancing: bool,
    /// Channels, all ring-homed on the same (hot) broker.
    pub channels: usize,
    /// Publication payload size in bytes (timestamp header included).
    pub payload_bytes: usize,
    /// Wall-clock publishing window.
    pub duration: Duration,
    /// Broker capacity the balancer assumes, in egress bytes per 100 ms
    /// report interval.
    pub capacity_floor: f64,
    /// `false`: all channels ring-homed on one hot broker, traffic
    /// round-robin, all active from the start. `true`: the
    /// skewed-channel-name grid — channels still all ring-homed on one
    /// hot broker, traffic Zipf(1.1)-distributed by rank, but channels
    /// *arrive one at a time* through the run. Each arrival is an
    /// unmapped channel re-heating the hot broker: the reactive path
    /// must re-trip per arrival, while the proactive placement pass
    /// exports each newcomer once, when it first crosses the cap.
    pub zipf_names: bool,
    /// Whether the balancer's proactive bounded-load placement pass
    /// runs (only meaningful with `rebalancing`).
    pub placement_pass: bool,
    /// Seed for all client PRNGs.
    pub seed: u64,
}

impl Default for RebalanceBenchConfig {
    fn default() -> Self {
        RebalanceBenchConfig {
            offered_per_s: 4_000,
            rebalancing: true,
            channels: 6,
            payload_bytes: 512,
            duration: Duration::from_millis(2_000),
            capacity_floor: 100_000.0,
            zipf_names: false,
            placement_pass: true,
            seed: 0xD1A0,
        }
    }
}

/// Measured results of one grid cell.
#[derive(Debug, Clone)]
pub struct RebalanceBenchRow {
    /// Offered publication rate, per second.
    pub offered_per_s: u64,
    /// Whether the live balancer ran.
    pub rebalancing: bool,
    /// Whether traffic followed the Zipf skewed-channel-name curve.
    pub zipf_names: bool,
    /// Whether the proactive placement pass ran.
    pub placement_pass: bool,
    /// Publishing window actually used, seconds.
    pub publish_secs: f64,
    /// Publications issued.
    pub published: u64,
    /// Distinct publications delivered at the subscriber router
    /// (duplicates from migration-window overlap are counted once).
    pub delivered: u64,
    /// `delivered / published` — 1.0 means nothing was lost.
    pub delivery_ratio: f64,
    /// Mean publish→delivery latency, milliseconds.
    pub mean_ms: f64,
    /// 99th-percentile publish→delivery latency, milliseconds.
    pub p99_ms: f64,
    /// Plans the balancer installed (0 with rebalancing off).
    pub plans_installed: u64,
    /// High-load rebalances the balancer performed.
    pub high_load_rebalances: u64,
    /// Channel-level (Algorithm 1) rebalances the balancer performed.
    pub channel_level_rebalances: u64,
    /// Channels the proactive bounded-load placement pass rehomed.
    pub placement_installs: u64,
    /// Channels moved by the reactive stages (Algorithms 1/2,
    /// low-load drain) — the per-channel migration cost the
    /// placement pass is meant to absorb proactively.
    pub reactive_migrations: u64,
}

fn quiet_client(seed: u64) -> ClientConfig {
    ClientConfig {
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

/// Runs one grid cell against a fresh 3-broker cluster on loopback.
pub fn bench_rebalance(cfg: &RebalanceBenchConfig) -> RebalanceBenchRow {
    let brokers: Vec<TcpBroker> = (0..BROKERS)
        .map(|_| TcpBroker::bind("127.0.0.1:0").expect("bind broker"))
        .collect();
    let directory: Vec<std::net::SocketAddr> = brokers.iter().map(|b| b.local_addr()).collect();
    let sidecars: Vec<DispatcherSidecar> = (0..BROKERS)
        .map(|i| {
            DispatcherSidecar::start(
                ServerId::from_index(i),
                directory.clone(),
                SidecarConfig {
                    tick: Duration::from_millis(2),
                    client: quiet_client(cfg.seed ^ (0x30 + i as u64)),
                    ..SidecarConfig::default()
                },
            )
        })
        .collect();
    let (reporters, balancer) = if cfg.rebalancing {
        let reporters: Vec<LoadReporter> = brokers
            .iter()
            .enumerate()
            .map(|(i, b)| {
                LoadReporter::start(
                    b.load_handle(),
                    i,
                    directory[i],
                    Duration::from_millis(100),
                    quiet_client(cfg.seed ^ (0x40 + i as u64)),
                )
            })
            .collect();
        let balancer = LiveLoadBalancer::start(
            directory.clone(),
            BalancerConfig {
                capacity_floor: cfg.capacity_floor,
                tick: Duration::from_millis(100),
                window: 2,
                warmup_ticks: 2,
                install_refresh: Duration::from_secs(2),
                placement_pass: cfg.placement_pass,
                client: quiet_client(cfg.seed ^ 0x50),
                ..BalancerConfig::default()
            },
        );
        (reporters, Some(balancer))
    } else {
        (Vec::new(), None)
    };

    // Skew: every channel ring-homed on the same broker. The zipf grid
    // keeps the name skew but staggers channel activations and draws
    // traffic from a Zipf(1.1) popularity curve over the active ranks.
    let ring = Ring::new(
        &(0..BROKERS).map(ServerId::from_index).collect::<Vec<_>>(),
        DEFAULT_VNODES,
    );
    let stem = if cfg.zipf_names { "zipf" } else { "skew" };
    let hot = ring
        .server_for(channel_id_of(&format!("{stem}-000")))
        .index();
    let channel_names: Vec<String> = (0..)
        .map(|i| format!("{stem}-{i:03}"))
        .filter(|name| ring.server_for(channel_id_of(name)).index() == hot)
        .take(cfg.channels.max(1))
        .collect();
    // Cumulative Zipf(1.1) weights over the channel indices; rank 0 is
    // the hottest channel.
    let zipf_cdf: Vec<f64> = {
        let weights: Vec<f64> = (0..channel_names.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(1.1))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect()
    };

    let router_cfg = |seed: u64| RouterConfig {
        client: quiet_client(seed),
        tick: Duration::from_millis(1),
        seed: Some(seed),
        ..RouterConfig::default()
    };

    // One subscriber router over all channels; its drain thread parses
    // the `timestamp;publisher:seq` header out of every payload into
    // the latency log, deduplicating on the publication key so a
    // migration-window overlap cannot inflate the delivery ratio.
    let epoch = Instant::now();
    let delivered = Arc::new(AtomicU64::new(0));
    let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let sub = RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 1));
    for name in &channel_names {
        sub.subscribe(name);
    }
    let drain = {
        let delivered = Arc::clone(&delivered);
        let latencies = Arc::clone(&latencies);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = std::collections::HashSet::new();
            loop {
                let mut idle = true;
                while let Some(msg) = sub.try_message() {
                    idle = false;
                    let mut fields = msg.payload.split(|&b| b == b';');
                    let sent_us = fields
                        .next()
                        .and_then(|f| std::str::from_utf8(f).ok())
                        .and_then(|f| f.parse::<u64>().ok());
                    let key = fields
                        .next()
                        .and_then(|f| std::str::from_utf8(f).ok())
                        .map(str::to_owned);
                    if let Some(key) = key {
                        if !seen.insert(key) {
                            continue;
                        }
                    }
                    delivered.fetch_add(1, Ordering::Relaxed);
                    if let Some(sent_us) = sent_us {
                        let now_us = epoch.elapsed().as_micros() as u64;
                        latencies
                            .lock()
                            .unwrap()
                            .push(now_us.saturating_sub(sent_us));
                    }
                }
                while sub.try_event().is_some() {}
                if idle {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
            sub.shutdown();
        })
    };
    let want = channel_names.len();
    let reg_deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let subs: usize = channel_names
            .iter()
            .map(|name| {
                brokers
                    .iter()
                    .map(|b| b.channel_subscribers(name))
                    .sum::<usize>()
            })
            .sum();
        if subs >= want {
            break;
        }
        assert!(
            Instant::now() < reg_deadline,
            "subscriptions never registered ({subs}/{want})"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // Two publishers split the offered rate, pacing in 5 ms batches and
    // stamping each payload with its publish time.
    const PUBLISHERS: u64 = 2;
    let started = Instant::now();
    let deadline = started + cfg.duration;
    let mut pub_threads = Vec::new();
    for p in 0..PUBLISHERS {
        let publisher = RoutedClient::connect(directory.clone(), router_cfg(cfg.seed ^ 0xB000 ^ p));
        let names = channel_names.clone();
        let cdf = zipf_cdf.clone();
        let zipf = cfg.zipf_names;
        // Staggered arrivals: rank k activates k/(n+1) of the way into
        // the window, so the hot broker keeps re-heating as new
        // (unmapped) channels come online through the whole run.
        let window = cfg.duration;
        let per_batch = (cfg.offered_per_s / PUBLISHERS / 200).max(1) as usize;
        let payload_bytes = cfg.payload_bytes;
        let mut rng_state = cfg.seed ^ 0x9E3779B97F4A7C15u64.wrapping_mul(p + 1);
        pub_threads.push(std::thread::spawn(move || {
            let mut sent = 0u64;
            let mut i = p as usize;
            let mut body = Vec::with_capacity(payload_bytes + 24);
            // splitmix64 → uniform in [0, 1) for the Zipf draw.
            let mut next_unit = move || {
                rng_state = rng_state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = rng_state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                (z ^ (z >> 31)) as f64 / u64::MAX as f64
            };
            while Instant::now() < deadline {
                for _ in 0..per_batch {
                    body.clear();
                    body.extend_from_slice(epoch.elapsed().as_micros().to_string().as_bytes());
                    body.push(b';');
                    body.extend_from_slice(format!("{p}:{sent}").as_bytes());
                    body.push(b';');
                    body.resize(body.len().max(payload_bytes), b'x');
                    let idx = if zipf {
                        // Staggered arrivals over the first half of the
                        // window, then the full Zipf tail: the hot broker
                        // keeps re-heating as unmapped channels come
                        // online, and the steady state still exercises
                        // the whole popularity curve.
                        let left = deadline.saturating_duration_since(Instant::now());
                        let frac = ((window.as_secs_f64() - left.as_secs_f64())
                            / (window.as_secs_f64() * 0.5))
                            .min(1.0);
                        let active =
                            ((frac * names.len() as f64).ceil() as usize).clamp(1, names.len());
                        // Full-curve Zipf draw; draws for not-yet-active
                        // ranks are dropped, so traffic ramps up instead
                        // of being renormalised — a channel's rate is
                        // stable once it exists, which is what a
                        // placement decision can bank on.
                        let u = next_unit();
                        let idx = cdf.iter().position(|&c| u < c).unwrap_or(names.len() - 1);
                        if idx >= active {
                            continue; // rank not yet online
                        }
                        idx
                    } else {
                        i % names.len()
                    };
                    publisher.publish(&names[idx], &body);
                    i += 1;
                    sent += 1;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            std::thread::sleep(Duration::from_millis(200));
            publisher.shutdown();
            sent
        }));
    }
    let published: u64 = pub_threads.into_iter().map(|t| t.join().unwrap()).sum();
    let publish_secs = started.elapsed().as_secs_f64();

    // Drain until deliveries stop growing (or everything arrived).
    let drain_deadline = Instant::now() + Duration::from_secs(10);
    let mut last = delivered.load(Ordering::Relaxed);
    while last < published && Instant::now() < drain_deadline {
        std::thread::sleep(Duration::from_millis(50));
        let now = delivered.load(Ordering::Relaxed);
        if now == last {
            break;
        }
        last = now;
    }
    stop.store(true, Ordering::Relaxed);
    drain.join().unwrap();
    let delivered = delivered.load(Ordering::Relaxed);

    let (
        plans_installed,
        high_load_rebalances,
        channel_level_rebalances,
        placement_installs,
        reactive_migrations,
    ) = balancer
        .as_ref()
        .map(|b| {
            let s = b.stats();
            (
                s.plans_installed,
                s.high_load_rebalances,
                s.channel_level_rebalances,
                s.placement_installs,
                s.reactive_migrations,
            )
        })
        .unwrap_or((0, 0, 0, 0, 0));
    if let Some(balancer) = balancer {
        balancer.shutdown();
    }
    for reporter in reporters {
        reporter.shutdown();
    }
    for sidecar in sidecars {
        sidecar.shutdown();
    }
    for broker in brokers {
        broker.shutdown();
    }

    let mut lat = std::mem::take(&mut *latencies.lock().unwrap());
    lat.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if lat.is_empty() {
            return f64::NAN;
        }
        let idx = ((lat.len() - 1) as f64 * q).round() as usize;
        lat[idx] as f64 / 1_000.0
    };
    let mean_ms = if lat.is_empty() {
        f64::NAN
    } else {
        lat.iter().sum::<u64>() as f64 / lat.len() as f64 / 1_000.0
    };

    RebalanceBenchRow {
        offered_per_s: cfg.offered_per_s,
        rebalancing: cfg.rebalancing,
        zipf_names: cfg.zipf_names,
        placement_pass: cfg.placement_pass,
        publish_secs,
        published,
        delivered,
        delivery_ratio: if published == 0 {
            1.0
        } else {
            delivered as f64 / published as f64
        },
        mean_ms,
        p99_ms: quantile(0.99),
        plans_installed,
        high_load_rebalances,
        channel_level_rebalances,
        placement_installs,
        reactive_migrations,
    }
}

/// Runs the offered-load grid, each rung with rebalancing off then on.
pub fn rebalance_grid(
    offered: &[u64],
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Vec<RebalanceBenchRow> {
    let mut rows = Vec::new();
    for &offered_per_s in offered {
        for rebalancing in [false, true] {
            rows.push(bench_rebalance(&RebalanceBenchConfig {
                offered_per_s,
                rebalancing,
                duration,
                payload_bytes,
                seed,
                ..RebalanceBenchConfig::default()
            }));
        }
    }
    rows
}

/// Runs the skewed-channel-name grid: Zipf(1.1) traffic over
/// ring-scattered names, each rung with the proactive bounded-load
/// placement pass off then on (balancer always running). The contrast
/// shows proactive placement defusing hot ring homes before the
/// reactive Algorithm 1/2 paths have to fire.
///
/// Pick rungs in the moderate-overload regime (a hot broker over the
/// safe line while the cluster as a whole still has headroom): below
/// it nothing fires either way, beyond cluster capacity only
/// replication helps and packing cannot.
pub fn rebalance_skewed_grid(
    offered: &[u64],
    duration: Duration,
    payload_bytes: usize,
    seed: u64,
) -> Vec<RebalanceBenchRow> {
    let mut rows = Vec::new();
    for &offered_per_s in offered {
        for placement_pass in [false, true] {
            rows.push(bench_rebalance(&RebalanceBenchConfig {
                offered_per_s,
                rebalancing: true,
                zipf_names: true,
                placement_pass,
                // Enough arrivals that reactive scatter cost scales with
                // the channel count while the placement pass absorbs
                // each newcomer at constant (one-install) cost.
                channels: 20,
                // Three times the base window: proactive placement
                // front-loads its installs during the arrival ramp (the
                // first half), so the longer the steady state the
                // clearer the contrast with the reactive-only column.
                duration: duration * 3,
                payload_bytes,
                seed,
                ..RebalanceBenchConfig::default()
            }));
        }
    }
    rows
}

/// Serialises a bench series as the `BENCH_rebalance.json` artifact
/// (hand-rolled — the workspace has no JSON dependency).
pub fn write_rebalance_json(
    mut w: impl IoWrite,
    rows: &[RebalanceBenchRow],
) -> std::io::Result<()> {
    let cores = crate::host_cores();
    let io_loops = dynamoth_pubsub::BrokerConfig::default().resolved_io_loops();
    writeln!(w, "{{")?;
    writeln!(w, "  \"bench\": \"rebalance_live\",")?;
    writeln!(w, "  \"host_cores\": {cores},")?;
    writeln!(w, "  \"io_loops\": {io_loops},")?;
    writeln!(w, "  \"rows\": [")?;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        writeln!(
            w,
            "    {{\"offered_per_s\": {}, \"rebalancing\": {}, \"zipf_names\": {}, \
             \"placement_pass\": {}, \"publish_secs\": {:.3}, \
             \"published\": {}, \"delivered\": {}, \"delivery_ratio\": {:.4}, \
             \"mean_ms\": {:.2}, \"p99_ms\": {:.2}, \"plans_installed\": {}, \
             \"high_load_rebalances\": {}, \"channel_level_rebalances\": {}, \
             \"placement_installs\": {}, \"reactive_migrations\": {}}}{comma}",
            r.offered_per_s,
            r.rebalancing,
            r.zipf_names,
            r.placement_pass,
            r.publish_secs,
            r.published,
            r.delivered,
            r.delivery_ratio,
            r.mean_ms,
            r.p99_ms,
            r.plans_installed,
            r.high_load_rebalances,
            r.channel_level_rebalances,
            r.placement_installs,
            r.reactive_migrations,
        )?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Prints a series as CSV.
pub fn write_rebalance_csv(mut w: impl IoWrite, rows: &[RebalanceBenchRow]) -> std::io::Result<()> {
    writeln!(
        w,
        "offered_per_s,rebalancing,zipf_names,placement_pass,publish_secs,published,\
         delivered,delivery_ratio,mean_ms,p99_ms,plans_installed,high_load_rebalances,\
         channel_level_rebalances,placement_installs,reactive_migrations"
    )?;
    for r in rows {
        writeln!(
            w,
            "{},{},{},{},{:.3},{},{},{:.4},{:.2},{:.2},{},{},{},{},{}",
            r.offered_per_s,
            r.rebalancing,
            r.zipf_names,
            r.placement_pass,
            r.publish_secs,
            r.published,
            r.delivered,
            r.delivery_ratio,
            r.mean_ms,
            r.p99_ms,
            r.plans_installed,
            r.high_load_rebalances,
            r.channel_level_rebalances,
            r.placement_installs,
            r.reactive_migrations,
        )?;
    }
    Ok(())
}
