//! Broker concurrency benchmark: {1,4,16} publisher threads ×
//! {1,100,1000} subscribers against the real TCP broker over loopback
//! (see `dynamoth_bench::broker_bench`). Prints the series as CSV.
//!
//! ```text
//! cargo bench -p dynamoth-bench --bench broker_concurrency
//! ```
//!
//! The publishing window per cell defaults to 1000 ms; set
//! `DYNAMOTH_BENCH_MS` to shrink it (CI smoke) or stretch it (stable
//! numbers). `dynamoth-cli bench-broker` runs the same grid and emits
//! the `BENCH_broker.json` tracking artifact.

use std::time::Duration;

use dynamoth_bench::broker_bench::{broker_grid, write_broker_csv};

fn main() {
    let ms: u64 = std::env::var("DYNAMOTH_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000);
    let rows = broker_grid(
        &[1, 4, 16],
        &[1, 100, 1_000],
        &[0],
        Duration::from_millis(ms),
        64,
    );
    write_broker_csv(std::io::stdout(), &rows).expect("write csv");
}
