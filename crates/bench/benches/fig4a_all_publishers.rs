//! Regenerates **Fig. 4a** of the paper: the *all-publishers*
//! replication micro-benchmark. One publisher sends 10 msg/s on a single
//! channel while the subscriber count sweeps 100 → 800, first without
//! replication (one pub/sub server) and then replicated over three
//! servers. The paper's shape: without replication, response time rises
//! with the subscriber count and collapses past ~500 subscribers; with
//! 3-server replication it stays flat.

use dynamoth_bench::fig4a;

fn main() {
    println!("# Fig. 4a — all-publishers replication (1 publisher @ 10 msg/s)");
    println!("subscribers,config,response_ms,delivery_ratio,lost_subscriptions");
    for &subs in &[100, 200, 300, 400, 500, 600, 700, 800] {
        for (label, replicated) in [("no-replication", false), ("replicated-3", true)] {
            let row = fig4a(subs, replicated, 1);
            println!(
                "{},{},{},{:.3},{}",
                subs,
                label,
                row.response_ms
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_else(|| "n/a".into()),
                row.delivery_ratio,
                row.lost_subscriptions
            );
        }
    }
}
