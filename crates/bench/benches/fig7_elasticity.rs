//! Regenerates **Fig. 7a-b** of the paper: elasticity under a
//! fluctuating player count (ramp up, sharp drop, climb back). The
//! paper's shape: servers are added as load grows and — with lower
//! priority, hence a visible delay — released as it falls; high-load
//! rebalances cause small latency spikes, scale-downs none.

use dynamoth_bench::fig7;

fn main() {
    let series = fig7(3);
    println!("# Fig. 7a — players and active servers");
    println!("second,players,servers");
    for &(s, n) in &series.players {
        let servers = series
            .servers
            .iter()
            .take_while(|&&(t, _)| t <= s)
            .last()
            .map(|&(_, m)| m)
            .unwrap_or(0);
        println!("{s},{n},{servers}");
    }
    println!("# Fig. 7b — mean response time and outgoing messages");
    println!("second,response_ms,messages_per_s");
    for &(s, r) in &series.response {
        let msgs = series
            .messages
            .iter()
            .find(|&&(t, _)| t == s)
            .map(|&(_, m)| m)
            .unwrap_or(0);
        println!("{s},{r:.1},{msgs}");
    }
    println!("# reconfigurations");
    for (t, kind) in &series.rebalances {
        println!("{t:.0},{kind:?}");
    }
}
