//! Criterion micro-benchmarks of the middleware hot paths: consistent
//! hashing lookups, plan resolution, the client publish path, duplicate
//! suppression, and the two load-balancing algorithms. These are not
//! paper figures; they document the cost of the mechanisms that run per
//! message (lookups, dedup) versus per rebalance (Algorithms 1 and 2).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use dynamoth_core::balancer::channel_level;
use dynamoth_core::balancer::estimator::LoadView;
use dynamoth_core::balancer::high_load;
use dynamoth_core::{
    ChannelAggregate, ChannelId, ChannelMapping, ChannelTick, DynamothClient, DynamothConfig,
    LlaReport, MetricsStore, Plan, Ring, ServerId,
};
use dynamoth_sim::{NodeId, SimRng, SimTime};

fn sid(i: usize) -> ServerId {
    ServerId(NodeId::from_index(i))
}

fn servers(n: usize) -> Vec<ServerId> {
    (0..n).map(sid).collect()
}

fn bench_ring(c: &mut Criterion) {
    let ring = Ring::new(&servers(8), 100);
    let mut i = 0u64;
    c.bench_function("ring_lookup", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(ring.server_for(ChannelId(i % 10_000)))
        })
    });
}

fn bench_plan_resolve(c: &mut Criterion) {
    let ring = Ring::new(&servers(8), 100);
    let mut plan = Plan::bootstrap();
    for ch in 0..100 {
        plan.set(
            ChannelId(ch),
            ChannelMapping::Single(sid((ch % 8) as usize)),
        );
    }
    let mut i = 0u64;
    c.bench_function("plan_resolve_mapped", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(plan.resolve(ChannelId(i % 100), &ring))
        })
    });
    c.bench_function("plan_resolve_fallback", |b| {
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(plan.resolve(ChannelId(1_000 + i % 1_000), &ring))
        })
    });
}

fn bench_client_publish(c: &mut Criterion) {
    let ring = Arc::new(Ring::new(&servers(8), 100));
    let cfg = Arc::new(DynamothConfig::default());
    let mut client = DynamothClient::new(NodeId::from_index(99), ring, cfg);
    let mut rng = SimRng::new(1);
    c.bench_function("client_publish", |b| {
        b.iter(|| {
            let (id, out) = client.publish(SimTime::ZERO, &mut rng, ChannelId(7), 600);
            black_box((id, out))
        })
    });
}

fn bench_dedup(c: &mut Criterion) {
    let ring = Arc::new(Ring::new(&servers(1), 16));
    let cfg = Arc::new(DynamothConfig::default());
    c.bench_function("client_dedup_delivery", |b| {
        b.iter_batched(
            || {
                (
                    DynamothClient::new(
                        NodeId::from_index(99),
                        Arc::clone(&ring),
                        Arc::clone(&cfg),
                    ),
                    SimRng::new(1),
                )
            },
            |(mut client, mut rng)| {
                for seq in 0..1_000u64 {
                    let p = dynamoth_core::Publication {
                        channel: ChannelId(1),
                        id: dynamoth_core::MessageId {
                            origin: NodeId::from_index(1),
                            seq,
                        },
                        payload: 100,
                        sent_at: SimTime::ZERO,
                        publisher: NodeId::from_index(1),
                        hops: 0,
                    };
                    black_box(client.on_message(
                        SimTime::ZERO,
                        &mut rng,
                        NodeId::from_index(0),
                        dynamoth_core::Msg::Deliver(p),
                    ));
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn synthetic_store(n_servers: usize, n_channels: usize) -> MetricsStore {
    let mut store = MetricsStore::new(3);
    for tick in 0..3 {
        for s in 0..n_servers {
            let channels: Vec<(ChannelId, ChannelTick)> = (0..n_channels)
                .filter(|ch| ch % n_servers == s)
                .map(|ch| {
                    (
                        ChannelId(ch as u64),
                        ChannelTick {
                            publications: 30,
                            deliveries: 300 + (ch as u64 * 17) % 900,
                            bytes_in: 20_000,
                            bytes_out: 200_000 + (ch as u64 * 31_337) % 800_000,
                            publishers: 10,
                            subscribers: 10,
                        },
                    )
                })
                .collect();
            let egress: u64 = channels.iter().map(|(_, t)| t.bytes_out).sum();
            store.record(LlaReport {
                server: sid(s),
                tick,
                measured_egress_bytes: egress,
                capacity_bytes: 8_000_000.0,
                cpu_busy_micros: 0,
                channels,
            });
        }
    }
    store
}

fn bench_algorithms(c: &mut Criterion) {
    let cfg = DynamothConfig::default();
    let agg = ChannelAggregate {
        publications_per_tick: 2_000.0,
        subscribers: 1.0,
        deliveries_per_tick: 2_000.0,
        bytes_out_per_tick: 4_000_000.0,
        publishers: 200.0,
    };
    c.bench_function("algorithm1_decide", |b| {
        b.iter(|| black_box(channel_level::decide(&agg, &cfg)))
    });

    let store = synthetic_store(8, 100);
    let active = servers(8);
    c.bench_function("load_view_build_8s_100c", |b| {
        b.iter(|| {
            black_box(LoadView::from_store(
                &store,
                &active,
                cfg.capacity_per_tick(),
            ))
        })
    });

    let ring = Ring::new(&active, 100);
    c.bench_function("algorithm2_rebalance_8s_100c", |b| {
        b.iter_batched(
            || LoadView::from_store(&store, &active, 1_000_000.0), // overloaded
            |mut view| {
                black_box(high_load::rebalance(
                    &Plan::bootstrap(),
                    &mut view,
                    &ring,
                    &cfg,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

/// One channel, `n_subs` subscribers, 8 publishers firing in lock-step
/// (so same-instant bursts reach the server and the batch path forms
/// real multi-entry batches). Returns the cluster plus the subscriber
/// nodes for delivery accounting.
fn fanout_cluster(n_subs: usize, batching: bool) -> (dynamoth_core::Cluster, Vec<NodeId>) {
    use dynamoth_core::{BalancerStrategy, Cluster, ClusterConfig};
    use dynamoth_net::CloudTransportConfig;
    use dynamoth_sim::SimDuration;
    use dynamoth_workloads::{micro, Publisher, Subscriber};

    let mut cluster = Cluster::build(ClusterConfig {
        pool_size: 1,
        initial_active: 1,
        strategy: BalancerStrategy::Manual,
        transport: CloudTransportConfig::fast_lan(),
        dynamoth: DynamothConfig {
            delivery_batching: batching,
            ..Default::default()
        },
        ..Default::default()
    });
    let mut subs = Vec::with_capacity(n_subs);
    for _ in 0..n_subs {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let actor = Subscriber::new(client, ChannelId(0), cluster.trace.clone());
        cluster.add_client(Box::new(actor));
        cluster
            .world
            .schedule_timer(node, SimTime::ZERO, micro::TAG_START);
        subs.push(node);
    }
    for _ in 0..8 {
        let node = NodeId::from_index(cluster.world.node_count());
        let client = cluster.client_library(node);
        let actor = Publisher::new(client, ChannelId(0), 10.0, 200);
        cluster.add_client(Box::new(actor));
        // No stagger: all eight publish at the very same instants.
        cluster
            .world
            .schedule_timer(node, SimTime::from_secs(1), micro::TAG_START);
    }
    cluster.run_for(SimDuration::from_secs(2)); // subscribe + warm up
    (cluster, subs)
}

/// The fan-out fast path: one simulated second of a 1-channel burst
/// workload, per-message vs batched delivery, at increasing fan-out.
/// Throughput is simulated-work per wall second, so the batched path's
/// advantage is the event/allocation volume it avoids.
fn bench_fanout(c: &mut Criterion) {
    use dynamoth_sim::SimDuration;
    use dynamoth_workloads::Subscriber;

    for &n_subs in &[10usize, 100, 1_000] {
        for (label, batching) in [("per_message", false), ("batched", true)] {
            c.bench_function(&format!("fanout_1ch_{n_subs}subs_{label}"), |b| {
                b.iter_batched(
                    || fanout_cluster(n_subs, batching).0,
                    |mut cluster| {
                        cluster.run_for(SimDuration::from_secs(1));
                        black_box(cluster.world.stats())
                    },
                    BatchSize::PerIteration,
                )
            });
        }
    }

    // Ablation sanity check (the knob must not change outcomes): same
    // workload, both knob positions, identical delivery counts and
    // duplicate-suppression statistics.
    let totals = |batching: bool| {
        let (mut cluster, subs) = fanout_cluster(100, batching);
        cluster.run_for(SimDuration::from_secs(3));
        let mut delivered = 0u64;
        let mut duplicates = 0u64;
        for &s in &subs {
            let sub: &Subscriber = cluster.world.actor(s).unwrap();
            delivered += sub.received();
            duplicates += sub.client().stats().duplicates_suppressed;
        }
        (delivered, duplicates)
    };
    assert_eq!(
        totals(true),
        totals(false),
        "delivery batching changed observable outcomes"
    );
}

fn bench_simulation_throughput(c: &mut Criterion) {
    use dynamoth_core::{Cluster, ClusterConfig};
    use dynamoth_net::CloudTransportConfig;
    use dynamoth_sim::SimDuration;
    use dynamoth_workloads::setup::spawn_hot_channel;

    c.bench_function("sim_one_second_100clients", |b| {
        b.iter_batched(
            || {
                let mut cluster = Cluster::build(ClusterConfig {
                    pool_size: 3,
                    initial_active: 3,
                    transport: CloudTransportConfig::fast_lan(),
                    ..Default::default()
                });
                spawn_hot_channel(&mut cluster, ChannelId(0), 50, 10.0, 200, 50, SimTime::ZERO);
                cluster.run_for(SimDuration::from_secs(2)); // warm up
                cluster
            },
            |mut cluster| {
                cluster.run_for(SimDuration::from_secs(1));
                black_box(cluster.world.stats())
            },
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_ring,
    bench_plan_resolve,
    bench_client_publish,
    bench_dedup,
    bench_algorithms,
    bench_fanout,
    bench_simulation_throughput
);
criterion_main!(benches);
