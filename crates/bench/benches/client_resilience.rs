//! Client resilience benchmark: `TcpPubSubClient` → `ChaosProxy` →
//! `TcpBroker` over loopback. Measures (a) publish→deliver round-trip
//! throughput on a clean path and (b) recovery time — reset injection
//! to first post-reconnect delivery — across repeated proxy resets.
//! Prints both series as CSV.
//!
//! ```text
//! cargo bench -p dynamoth-bench --bench client_resilience
//! ```
//!
//! `DYNAMOTH_BENCH_MS` bounds the throughput window (default 1000 ms);
//! `CHAOS_SEED` picks the jitter schedule (default 1).

use std::time::{Duration, Instant};

use dynamoth_pubsub::{ChaosProxy, ClientConfig, TcpBroker, TcpPubSubClient};

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        reconnect_base: Duration::from_millis(10),
        reconnect_cap: Duration::from_millis(200),
        heartbeat_interval: Duration::from_millis(100),
        liveness_timeout: Duration::from_secs(2),
        tick: Duration::from_millis(2),
        seed: Some(seed),
        ..ClientConfig::default()
    }
}

fn main() {
    let window = Duration::from_millis(env_u64("DYNAMOTH_BENCH_MS", 1_000));
    let seed = env_u64("CHAOS_SEED", 1);

    let broker = TcpBroker::bind("127.0.0.1:0").expect("bind broker");
    let proxy = ChaosProxy::spawn(broker.local_addr(), seed).expect("spawn proxy");
    let sub = TcpPubSubClient::connect_with(proxy.local_addr(), cfg(seed ^ 1)).expect("subscriber");
    sub.subscribe("bench");
    let publisher =
        TcpPubSubClient::connect_with(proxy.local_addr(), cfg(seed ^ 2)).expect("publisher");
    let settle = Instant::now() + Duration::from_secs(10);
    while broker.subscription_count() != 1 {
        assert!(Instant::now() < settle, "subscription never registered");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Throughput: keep a bounded number of publications in flight and
    // count deliveries for the window.
    const IN_FLIGHT: u64 = 64;
    let payload = vec![b'x'; 64];
    let mut published = 0u64;
    let mut delivered = 0u64;
    let start = Instant::now();
    while start.elapsed() < window {
        while published - delivered < IN_FLIGHT {
            publisher.publish("bench", &payload);
            published += 1;
        }
        if sub.message_timeout(Duration::from_millis(100)).is_some() {
            delivered += 1;
        }
        while sub.try_message().is_some() {
            delivered += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    println!("series,metric,value");
    println!("throughput,msgs_per_sec,{:.0}", delivered as f64 / secs);

    // Recovery: reset every proxied connection, then measure how long
    // until a fresh publication makes it through the reconnected +
    // resubscribed path.
    for round in 0..5 {
        while sub.try_message().is_some() {}
        proxy.reset_all();
        let injected = Instant::now();
        let marker = format!("recovery-{round}");
        let deadline = injected + Duration::from_secs(30);
        let mut recovered = None;
        while recovered.is_none() {
            assert!(Instant::now() < deadline, "client never recovered");
            publisher.publish("bench", marker.as_bytes());
            let round_end = Instant::now() + Duration::from_millis(100);
            while Instant::now() < round_end {
                let Some(msg) = sub.message_timeout(Duration::from_millis(20)) else {
                    continue;
                };
                if msg.payload == marker.as_bytes() {
                    recovered = Some(injected.elapsed());
                    break;
                }
            }
        }
        println!(
            "recovery,reset_to_delivery_ms,{:.1}",
            recovered.expect("recovered").as_secs_f64() * 1e3
        );
    }

    sub.shutdown();
    publisher.shutdown();
    proxy.shutdown();
    broker.shutdown();
}
