//! Ablation study: isolates the design choices `DESIGN.md` calls out
//! and measures what each one buys, using the same simulated substrate
//! as the paper figures.
//!
//! | Ablation | Design choice | Metric |
//! |---|---|---|
//! | A1 | lazy vs eager `<switch>` propagation (§IV) | control messages, response time |
//! | A2 | unsubscribe grace period | message loss across migrations |
//! | A3 | expansion mirror window | message loss across replication enablement |
//! | A4 | `T_wait` pacing | sustained players, plans generated, server-seconds |
//! | A5 | virtual identifiers per server | channel balance of the CH ring |

use std::sync::Arc;

use dynamoth_core::{
    BalancerStrategy, ChannelId, ChannelMapping, Cluster, ClusterConfig, DynamothConfig, Plan,
    Ring, ServerId,
};
use dynamoth_sim::{NodeId, SimDuration, SimTime};
use dynamoth_workloads::setup::{spawn_hot_channel, spawn_players};
use dynamoth_workloads::{micro, Publisher, RGameConfig, Schedule, Subscriber};

fn small_game(dynamoth: DynamothConfig, players: usize, secs: u64, seed: u64) -> Cluster {
    let mut cluster = Cluster::build(ClusterConfig {
        seed,
        pool_size: 8,
        initial_active: 1,
        strategy: BalancerStrategy::Dynamoth,
        dynamoth,
        ..Default::default()
    });
    let game = Arc::new(RGameConfig::default());
    let schedule = Schedule::ramp(
        50,
        players,
        SimTime::from_secs(2),
        SimTime::from_secs(secs / 2),
    );
    spawn_players(&mut cluster, &game, &schedule);
    cluster.run_for(SimDuration::from_secs(secs));
    cluster
}

fn a1_propagation() {
    println!("# A1 — switch propagation: lazy (paper) vs eager (ablation)");
    println!("mode,control_plane_messages,mean_response_ms,p99_response_ms");
    for (label, eager) in [("lazy", false), ("eager", true)] {
        let cfg = DynamothConfig {
            eager_switch: eager,
            t_wait: SimDuration::from_secs(5),
            ..Default::default()
        };
        let cluster = small_game(cfg, 400, 120, 70);
        // Total wire messages minus application deliveries approximates
        // the control-plane + forwarding overhead.
        let total = cluster.world.stats().messages_sent;
        let deliveries = cluster.trace.delivered_total();
        println!(
            "{label},{},{:.1},{:.1}",
            total.saturating_sub(deliveries),
            cluster.trace.mean_response_ms().unwrap_or(f64::NAN),
            cluster.trace.response_quantile_ms(0.99).unwrap_or(f64::NAN),
        );
    }
}

/// Shared scenario for A2/A3: traffic on one channel whose mapping is
/// changed mid-run; returns (published, min received across subscribers,
/// duplicates suppressed).
fn migration_loss(dynamoth: DynamothConfig, target: ChannelMapping, seed: u64) -> (u64, u64, u64) {
    let mut cluster = Cluster::build(ClusterConfig {
        seed,
        pool_size: 4,
        initial_active: 4,
        strategy: BalancerStrategy::Manual,
        dynamoth,
        ..Default::default()
    });
    let channel = ChannelId(0);
    let first = cluster.servers[0];
    let mut plan = Plan::bootstrap();
    plan.set(channel, ChannelMapping::Single(first));
    cluster.install_plan(plan);
    let (pubs, subs) = spawn_hot_channel(
        &mut cluster,
        channel,
        4,
        10.0,
        400,
        6,
        SimTime::from_secs(1),
    );
    cluster.run_for(SimDuration::from_secs(8));
    let mut plan = Plan::bootstrap();
    plan.set(channel, target);
    cluster.install_plan(plan);
    for &p in &pubs {
        cluster
            .world
            .schedule_timer(p, SimTime::from_secs(20), micro::TAG_STOP);
    }
    cluster.run_for(SimDuration::from_secs(35));
    let published: u64 = pubs
        .iter()
        .map(|&p| {
            cluster
                .world
                .actor::<Publisher>(p)
                .unwrap()
                .client()
                .stats()
                .publishes
        })
        .sum();
    let min_received = subs
        .iter()
        .map(|&s| cluster.world.actor::<Subscriber>(s).unwrap().received())
        .min()
        .unwrap_or(0);
    let duplicates: u64 = subs
        .iter()
        .map(|&s| {
            cluster
                .world
                .actor::<Subscriber>(s)
                .unwrap()
                .client()
                .stats()
                .duplicates_suppressed
        })
        .sum();
    (published, min_received, duplicates)
}

fn a2_unsubscribe_grace() {
    println!("# A2 — unsubscribe grace period: overlap cost vs safety margin across a migration");
    println!("# (loss stays 0 even at 0 ms because retargeting always subscribes first and");
    println!("#  trails the unsubscribe by at least one delivery; duplicates price the overlap)");
    println!("grace_ms,published,min_received,lost,duplicates_suppressed");
    for grace_ms in [0u64, 250, 1_000] {
        let cfg = DynamothConfig {
            unsubscribe_grace: SimDuration::from_millis(grace_ms),
            ..Default::default()
        };
        let target = ChannelMapping::Single(ServerId(NodeId::from_index(2)));
        let (published, min_received, dups) = migration_loss(cfg, target, 71);
        println!(
            "{grace_ms},{published},{min_received},{},{dups}",
            published.saturating_sub(min_received)
        );
    }
}

fn a3_mirror_window() {
    println!(
        "# A3 — expansion mirror window: overlap cost vs safety margin enabling all-subscribers"
    );
    println!("# (plan-version hints correct publishers and subscribers within the same WAN");
    println!("#  round-trip, so losses need latency-tail outliers; duplicates price the mirror)");
    println!("mirror_ms,published,min_received,lost,duplicates_suppressed");
    for mirror_ms in [0u64, 500, 1_500] {
        let cfg = DynamothConfig {
            replication_mirror_window: SimDuration::from_millis(mirror_ms),
            ..Default::default()
        };
        let members: Vec<ServerId> = (0..3).map(|i| ServerId(NodeId::from_index(i))).collect();
        let target = ChannelMapping::AllSubscribers(members);
        let (published, min_received, dups) = migration_loss(cfg, target, 72);
        println!(
            "{mirror_ms},{published},{min_received},{},{dups}",
            published.saturating_sub(min_received)
        );
    }
}

fn a4_t_wait() {
    println!("# A4 — T_wait pacing vs balancing quality");
    println!("t_wait_s,plans,mean_response_ms,server_seconds");
    for t_wait in [5u64, 10, 20] {
        let cfg = DynamothConfig {
            t_wait: SimDuration::from_secs(t_wait),
            ..Default::default()
        };
        let cluster = small_game(cfg, 500, 150, 73);
        println!(
            "{t_wait},{},{:.1},{}",
            cluster.trace.rebalance_series().len(),
            cluster
                .trace
                .mean_response_ms_between(75, 150)
                .unwrap_or(f64::NAN),
            cluster.trace.server_seconds(),
        );
    }
}

fn a5_vnodes() {
    println!(
        "# A5 — virtual identifiers per server vs CH channel balance (8 servers, 10k channels)"
    );
    println!("vnodes,max_share,min_share,stddev_share");
    let servers: Vec<ServerId> = (0..8).map(|i| ServerId(NodeId::from_index(i))).collect();
    for vnodes in [1u32, 4, 16, 64, 100, 256] {
        let ring = Ring::new(&servers, vnodes);
        let mut counts = vec![0usize; servers.len()];
        let n = 10_000u64;
        for c in 0..n {
            let s = ring.server_for(ChannelId(c));
            counts[servers.iter().position(|&x| x == s).unwrap()] += 1;
        }
        let shares: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        let mean = 1.0 / servers.len() as f64;
        let var = shares.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / shares.len() as f64;
        println!(
            "{vnodes},{:.4},{:.4},{:.4}",
            shares.iter().cloned().fold(0.0, f64::max),
            shares.iter().cloned().fold(1.0, f64::min),
            var.sqrt()
        );
    }
}

fn main() {
    a1_propagation();
    a2_unsubscribe_grace();
    a3_mirror_window();
    a4_t_wait();
    a5_vnodes();
}
