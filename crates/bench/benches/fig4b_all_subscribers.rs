//! Regenerates **Fig. 4b** of the paper: the *all-subscribers*
//! replication micro-benchmark. The publisher count sweeps 100 → 800
//! (each at 10 msg/s) against a single subscriber, first without
//! replication and then replicated over three servers. The paper's
//! shape: without replication delivery fails past ~200 publishers (the
//! subscriber's output buffer overflows); with 3-server replication the
//! system holds to ~600 publishers.

use dynamoth_bench::fig4b;

fn main() {
    println!("# Fig. 4b — all-subscribers replication (1 subscriber, N publishers @ 10 msg/s)");
    println!("publishers,config,response_ms,delivery_ratio,lost_subscriptions");
    for &pubs in &[100, 200, 300, 400, 500, 600, 700, 800] {
        for (label, replicated) in [("no-replication", false), ("replicated-3", true)] {
            let row = fig4b(pubs, replicated, 1);
            println!(
                "{},{},{},{:.3},{}",
                pubs,
                label,
                row.response_ms
                    .map(|r| format!("{r:.1}"))
                    .unwrap_or_else(|| "n/a".into()),
                row.delivery_ratio,
                row.lost_subscriptions
            );
        }
    }
}
