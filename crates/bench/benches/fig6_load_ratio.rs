//! Regenerates **Fig. 6** of the paper: average and maximum per-server
//! load ratio (eq. 1) plus the active server count over the Dynamoth run
//! of Experiment 2. The paper's shape: the balancer keeps the average
//! below 1 until the system as a whole saturates, and the busiest
//! server below ~1 for most of the run (servers fail past ≈1.15).

use dynamoth_bench::fig6;

fn main() {
    let series = fig6(1_200, 2);
    println!("# Fig. 6 — load ratios under the Dynamoth balancer");
    println!("second,avg_load_ratio,max_load_ratio,servers");
    for &(s, avg, max) in &series.load {
        let servers = series
            .servers
            .iter()
            .take_while(|&&(t, _)| t <= s)
            .last()
            .map(|&(_, n)| n)
            .unwrap_or(0);
        println!("{s},{avg:.3},{max:.3},{servers}");
    }
    println!("# reconfigurations");
    for (t, kind) in &series.rebalances {
        println!("{t:.0},{kind:?}");
    }
}
