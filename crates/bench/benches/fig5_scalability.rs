//! Regenerates **Fig. 5a-c** of the paper (client scalability) plus the
//! headline claim: players ramp 120 → 1200 while up to 8 pub/sub servers
//! are available, once under the Dynamoth load balancer and once under
//! the consistent-hashing baseline. Prints the three series the paper
//! plots (players over time, messages/s + active servers, mean response
//! time with reconfiguration marks) and the sustained-player summary.

use dynamoth_bench::{fig5, sustained_players};
use dynamoth_core::BalancerStrategy;

fn main() {
    let mut summary = Vec::new();
    for (label, strategy) in [
        ("dynamoth", BalancerStrategy::Dynamoth),
        ("consistent-hash", BalancerStrategy::ConsistentHash),
    ] {
        let series = fig5(strategy, 1_200, 2);

        println!("# Fig. 5a — players over time ({label})");
        println!("second,players");
        for (s, n) in &series.players {
            println!("{s},{n}");
        }
        println!("# Fig. 5b — outgoing messages/s and active servers ({label})");
        println!("second,messages_per_s,servers");
        for (s, m) in &series.messages {
            let servers = series
                .servers
                .iter()
                .take_while(|&&(t, _)| t <= *s)
                .last()
                .map(|&(_, n)| n)
                .unwrap_or(0);
            println!("{s},{m},{servers}");
        }
        println!("# Fig. 5c — mean response time ({label}); marks below");
        println!("second,response_ms");
        for (s, r) in &series.response {
            println!("{s},{r:.1}");
        }
        println!("# reconfigurations ({label})");
        for (t, kind) in &series.rebalances {
            println!("{t:.0},{kind:?}");
        }
        summary.push((label, sustained_players(&series, 150.0)));
    }
    println!("# Headline — players sustained below the 150 ms playability bound");
    println!("strategy,sustained_players");
    for (label, n) in &summary {
        println!("{label},{n}");
    }
    if let [(_, dy), (_, ch)] = summary.as_slice() {
        if *ch > 0 {
            println!(
                "# Dynamoth sustains {:.0}% more clients than consistent hashing (paper: 60%)",
                (*dy as f64 / *ch as f64 - 1.0) * 100.0
            );
        }
    }
}
