//! Simulated time.
//!
//! All simulation time is kept in microseconds inside a [`SimTime`]
//! newtype. Durations are represented by [`SimDuration`]. Both are plain
//! `u64` wrappers so they are `Copy` and cheap to pass around, while the
//! newtypes prevent accidentally mixing instants with durations.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

/// An instant in simulated time, measured in microseconds from the start
/// of the simulation.
///
/// # Examples
///
/// ```
/// use dynamoth_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(250);
/// assert_eq!(t.as_micros(), 250_000);
/// assert_eq!(t.as_secs_f64(), 0.25);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use dynamoth_sim::SimDuration;
///
/// assert_eq!(SimDuration::from_secs(2) + SimDuration::from_millis(500),
///            SimDuration::from_millis(2500));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far
    /// away" sentinel for run deadlines).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microseconds since the start of the simulation.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the start of the simulation.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole seconds since the start of the simulation.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since the start of the simulation, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be non-negative");
        SimDuration((s * 1e6).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics (in debug builds) if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when that can happen.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_secs_f64(0.0015).as_micros(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
        assert_eq!(
            SimDuration::from_millis(2) * 3,
            SimDuration::from_micros(6_000)
        );
    }

    #[test]
    fn saturating_since_handles_future_instants() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
