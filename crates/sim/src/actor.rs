//! Actor model: node identifiers, classes, messages and the [`Actor`]
//! trait implemented by every simulated node.

use crate::clock::{SimDuration, SimTime};
use crate::rng::SimRng;
use crate::world::SendOutcome;

/// Identifies a node (an actor) in the simulated world.
///
/// `NodeId`s are dense indices handed out by
/// [`World::add_node`](crate::World::add_node) in creation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a `NodeId` from a dense index.
    ///
    /// Intended for harness code that stores node ids in compact arrays;
    /// the index must come from [`NodeId::index`].
    pub fn from_index(index: usize) -> Self {
        NodeId(index as u32)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Coarse node classification used by the network substrate to decide
/// which latency rules apply, mirroring the paper's experimental setup:
/// *infrastructure* nodes (pub/sub servers, dispatchers, load balancer)
/// live in the cloud on a LAN, *client* nodes reach them over a WAN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// An end-user client reached over the (simulated) wide-area network.
    Client,
    /// An infrastructure node inside the cloud (LAN latency between
    /// infrastructure nodes).
    Infra,
}

/// A message that can travel through the simulated network.
///
/// The only thing the kernel needs to know about a message is its wire
/// size, which drives the bandwidth model.
pub trait Message: 'static {
    /// Serialized size of this message in bytes, including protocol
    /// overhead.
    fn wire_size(&self) -> u32;
}

/// The capabilities an engine offers an actor while it handles an
/// event: reading the clock, sending messages, managing timers and
/// drawing random numbers.
///
/// The discrete-event [`World`](crate::World) provides one
/// implementation; a real-time engine (threads + channels + wall clock)
/// can provide another, so the same actors run unchanged in both.
pub trait ActorContext<M: Message> {
    /// Current time.
    fn now(&self) -> SimTime;

    /// The id of the node handling this event.
    fn node(&self) -> NodeId;

    /// This node's deterministic RNG stream.
    fn rng(&mut self) -> &mut SimRng;

    /// Sends `msg` to `to`, departing immediately.
    fn send(&mut self, to: NodeId, msg: M) -> SendOutcome {
        self.send_after(SimDuration::ZERO, to, msg)
    }

    /// Sends `msg` to `to`, with the departure delayed by `delay` to
    /// model local processing time before the bytes hit the wire.
    fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) -> SendOutcome;

    /// Arms a timer that fires on this node after `delay`.
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId;

    /// Arms a timer that fires on this node at absolute time `at`.
    fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerId;

    /// Cancels a pending timer. Cancelling an already-fired timer is a
    /// no-op.
    fn cancel_timer(&mut self, id: TimerId);

    /// Cumulative bytes departed from `node` (transport accounting).
    /// Engines without byte accounting return 0.
    fn egress_bytes(&self, node: NodeId) -> u64 {
        let _ = node;
        0
    }

    /// Bytes currently backlogged on the connection `from → to`.
    /// Engines without buffer accounting return 0.
    fn connection_backlog(&self, from: NodeId, to: NodeId) -> u64 {
        let _ = (from, to);
        0
    }

    /// Requests an [`Actor::on_flush`] callback once the engine has
    /// handed this node every event of the current batching window: in
    /// the discrete-event world, after all events already queued for
    /// the current instant; in the real-time engine, when the node's
    /// message queue drains. Multiple requests within one window
    /// coalesce into a single callback. Actors use this to buffer
    /// per-recipient output during a burst and emit it batched.
    fn request_flush(&mut self);
}

/// A simulated node. Implementations react to incoming messages and
/// timer expirations; all side effects (sends, new timers) go through the
/// [`ActorContext`].
///
/// The `as_any` hooks allow harnesses and tests to downcast a stored
/// actor back to its concrete type for inspection.
pub trait Actor<M: Message>: 'static {
    /// Called when a message addressed to this node arrives.
    fn on_message(&mut self, ctx: &mut dyn ActorContext<M>, from: NodeId, msg: M);

    /// Called when a timer set by this node fires. `tag` is the value
    /// passed to [`ActorContext::set_timer`]. The default implementation
    /// ignores timers.
    fn on_timer(&mut self, ctx: &mut dyn ActorContext<M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called at the end of the batching window in which this actor
    /// called [`ActorContext::request_flush`]: buffered batches are
    /// drained here. The default implementation does nothing.
    fn on_flush(&mut self, ctx: &mut dyn ActorContext<M>) {
        let _ = ctx;
    }

    /// Upcast for inspection.
    fn as_any(&self) -> &dyn std::any::Any;

    /// Mutable upcast for inspection.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;
}

/// Identifies a pending timer so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Builds a timer id from a raw value. Intended for alternative
    /// engine implementations ([`ActorContext`] providers); ids must be
    /// unique per node.
    pub fn from_raw(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The raw value of this id.
    pub fn into_raw(self) -> u64 {
        self.0
    }
}

/// A request handed to a [`Transport`](crate::Transport) to compute when
/// (and whether) a message arrives at its destination.
#[derive(Debug, Clone, Copy)]
pub struct RouteRequest {
    /// Sending node.
    pub from: NodeId,
    /// Class of the sending node.
    pub from_class: NodeClass,
    /// Receiving node.
    pub to: NodeId,
    /// Class of the receiving node.
    pub to_class: NodeClass,
    /// Wire size of the message in bytes.
    pub size: u32,
    /// Current simulation time.
    pub now: SimTime,
    /// Earliest instant the message may leave the sender (models local
    /// processing delay before the send).
    pub earliest_departure: SimTime,
}
