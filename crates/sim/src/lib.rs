//! # dynamoth-sim
//!
//! Deterministic discrete-event simulation kernel underlying the
//! [Dynamoth](https://doi.org/10.1109/ICDCS.2015.56) reproduction.
//!
//! The kernel is intentionally small and generic: a [`World`] owns a set
//! of [`Actor`]s identified by [`NodeId`]s, an event queue ordered by
//! [`SimTime`], and a pluggable [`Transport`] that decides when messages
//! arrive (the bandwidth/latency models live in the `dynamoth-net`
//! crate). Everything is driven from a single seed through [`SimRng`],
//! so identical configurations replay identical histories.
//!
//! ## Example
//!
//! ```
//! use dynamoth_sim::*;
//!
//! #[derive(Debug)]
//! struct Tick;
//! impl Message for Tick {
//!     fn wire_size(&self) -> u32 { 8 }
//! }
//!
//! struct Clock { ticks: u32 }
//! impl Actor<Tick> for Clock {
//!     fn on_message(&mut self, _: &mut dyn ActorContext<Tick>, _: NodeId, _: Tick) {}
//!     fn on_timer(&mut self, ctx: &mut dyn ActorContext<Tick>, tag: u64) {
//!         self.ticks += 1;
//!         if self.ticks < 5 {
//!             ctx.set_timer(SimDuration::from_secs(1), tag);
//!         }
//!     }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
//! }
//!
//! let mut world = World::new(1, Box::new(InstantTransport));
//! let node = world.add_node(NodeClass::Infra, Box::new(Clock { ticks: 0 }));
//! world.schedule_timer(node, SimTime::from_secs(1), 0);
//! world.run_until(SimTime::from_secs(10));
//! assert_eq!(world.actor::<Clock>(node).unwrap().ticks, 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actor;
mod clock;
mod rng;
mod world;

pub use actor::{Actor, ActorContext, Message, NodeClass, NodeId, RouteRequest, TimerId};
pub use clock::{SimDuration, SimTime};
pub use rng::{SimRng, Zipf};
pub use world::{
    Context, InstantTransport, RouteOutcome, SendOutcome, Transport, World, WorldStats,
};
