//! The simulation world: event queue, scheduler and actor registry.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::actor::{Actor, ActorContext, Message, NodeClass, NodeId, RouteRequest, TimerId};
use crate::clock::{SimDuration, SimTime};
use crate::rng::SimRng;

/// Result of routing a message through a [`Transport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The message will arrive at the given instant.
    Arrive(SimTime),
    /// The message was dropped (e.g. the destination's output buffer
    /// overflowed); the sender is told so it can react the way a real
    /// broker would (drop the connection).
    Dropped,
}

/// Result of a [`Context::send`], surfaced to the sending actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message is in flight.
    Sent,
    /// The transport refused the message (buffer overflow).
    Dropped,
}

/// The network model plugged into a [`World`]. Given a routing request it
/// decides when (or whether) the message arrives, and keeps whatever
/// accounting it needs (bandwidth queues, per-connection buffers).
pub trait Transport {
    /// Computes the arrival time of a message, updating internal queue
    /// state.
    fn route(&mut self, req: RouteRequest, rng: &mut SimRng) -> RouteOutcome;

    /// Cumulative bytes that have *departed* `node` by `now` (drives the
    /// measured-outgoing-bandwidth metric). Transports without
    /// accounting may return 0.
    fn egress_bytes(&self, node: NodeId, now: SimTime) -> u64 {
        let _ = (node, now);
        0
    }

    /// Bytes currently queued on the connection `from → to`, if the
    /// transport models per-connection buffers.
    fn connection_backlog(&self, from: NodeId, to: NodeId, now: SimTime) -> u64 {
        let _ = (from, to, now);
        0
    }

    /// Upcast for harness inspection.
    fn as_any(&self) -> &dyn Any;
}

/// A zero-latency, infinite-bandwidth transport. Messages arrive in the
/// same instant they are sent (still strictly after the current handler
/// returns). Useful for unit-testing protocol logic.
#[derive(Debug, Default, Clone, Copy)]
pub struct InstantTransport;

impl Transport for InstantTransport {
    fn route(&mut self, req: RouteRequest, _rng: &mut SimRng) -> RouteOutcome {
        RouteOutcome::Arrive(req.earliest_departure.max(req.now))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

enum EvKind<M> {
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    Flush { node: NodeId },
}

struct Ev<M> {
    at: SimTime,
    seq: u64,
    kind: EvKind<M>,
}

impl<M> PartialEq for Ev<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Ev<M> {}
impl<M> PartialOrd for Ev<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Ev<M> {
    // BinaryHeap is a max-heap; invert so the earliest event pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Slot<M: Message> {
    actor: Option<Box<dyn Actor<M>>>,
    rng: SimRng,
    class: NodeClass,
}

/// Counters describing how much work a [`World`] has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorldStats {
    /// Events (deliveries + timers) processed so far.
    pub events_processed: u64,
    /// Messages accepted by the transport.
    pub messages_sent: u64,
    /// Messages refused by the transport (buffer overflow).
    pub messages_dropped: u64,
}

/// A deterministic discrete-event simulation world.
///
/// Nodes are added with [`World::add_node`]; time advances only through
/// [`World::run_until`] / [`World::step`]. Two worlds built with the same
/// seed, nodes and schedule produce byte-identical histories.
///
/// # Examples
///
/// ```
/// use dynamoth_sim::*;
///
/// struct Echo;
/// #[derive(Debug)]
/// struct Ping(u32);
/// impl Message for Ping {
///     fn wire_size(&self) -> u32 { 16 }
/// }
/// impl Actor<Ping> for Echo {
///     fn on_message(&mut self, ctx: &mut dyn ActorContext<Ping>, from: NodeId, msg: Ping) {
///         if msg.0 > 0 {
///             ctx.send(from, Ping(msg.0 - 1));
///         }
///     }
///     fn as_any(&self) -> &dyn std::any::Any { self }
///     fn as_any_mut(&mut self) -> &mut dyn std::any::Any { self }
/// }
///
/// let mut world = World::new(42, Box::new(InstantTransport));
/// let a = world.add_node(NodeClass::Infra, Box::new(Echo));
/// let b = world.add_node(NodeClass::Infra, Box::new(Echo));
/// world.post(a, b, Ping(3));
/// world.run_until(SimTime::from_secs(1));
/// assert_eq!(world.stats().events_processed, 4); // 3, 2, 1, 0
/// ```
pub struct World<M: Message> {
    time: SimTime,
    seq: u64,
    queue: BinaryHeap<Ev<M>>,
    slots: Vec<Slot<M>>,
    pending_flushes: HashSet<NodeId>,
    pending_timers: HashSet<u64>,
    next_timer: u64,
    transport: Box<dyn Transport>,
    seed_rng: SimRng,
    stats: WorldStats,
}

impl<M: Message> World<M> {
    /// Creates an empty world with the given RNG seed and network model.
    pub fn new(seed: u64, transport: Box<dyn Transport>) -> Self {
        World {
            time: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            pending_flushes: HashSet::new(),
            pending_timers: HashSet::new(),
            next_timer: 0,
            transport,
            seed_rng: SimRng::new(seed),
            stats: WorldStats::default(),
        }
    }

    /// Registers a node and returns its id. Each node receives its own
    /// deterministic RNG stream forked from the world seed.
    pub fn add_node(&mut self, class: NodeClass, actor: Box<dyn Actor<M>>) -> NodeId {
        let id = NodeId(self.slots.len() as u32);
        let rng = self.seed_rng.fork();
        self.slots.push(Slot {
            actor: Some(actor),
            rng,
            class,
        });
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Work counters.
    pub fn stats(&self) -> WorldStats {
        self.stats
    }

    /// The class a node was registered with.
    ///
    /// # Panics
    ///
    /// Panics if `node` was not created by this world.
    pub fn node_class(&self, node: NodeId) -> NodeClass {
        self.slots[node.index()].class
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.slots.len()
    }

    /// Injects a message from `from` to `to` through the transport, as
    /// if `from` had sent it at the current time. Used by harnesses to
    /// bootstrap traffic.
    pub fn post(&mut self, from: NodeId, to: NodeId, msg: M) -> SendOutcome {
        let req = RouteRequest {
            from,
            from_class: self.slots[from.index()].class,
            to,
            to_class: self.slots[to.index()].class,
            size: msg.wire_size(),
            now: self.time,
            earliest_departure: self.time,
        };
        // Route with a dedicated fork so harness posts do not perturb
        // actor RNG streams.
        let mut rng = self.seed_rng.fork();
        match self.transport.route(req, &mut rng) {
            RouteOutcome::Arrive(at) => {
                self.stats.messages_sent += 1;
                self.push(at, EvKind::Deliver { from, to, msg });
                SendOutcome::Sent
            }
            RouteOutcome::Dropped => {
                self.stats.messages_dropped += 1;
                SendOutcome::Dropped
            }
        }
    }

    /// Schedules a timer for `node` at absolute time `at`. Used by
    /// harnesses to kick off periodic behaviour.
    pub fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: u64) -> TimerId {
        let id = TimerId(self.next_timer);
        self.next_timer += 1;
        self.pending_timers.insert(id.0);
        self.push(at, EvKind::Timer { node, id, tag });
        id
    }

    /// Cancels a timer created with [`World::schedule_timer`] (or by an
    /// actor). Cancelling an already-fired timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.pending_timers.remove(&id.0);
    }

    /// Immutable access to the transport (for reading network counters).
    pub fn transport(&self) -> &dyn Transport {
        self.transport.as_ref()
    }

    /// Downcasts the actor at `node` to a concrete type for inspection.
    pub fn actor<A: Actor<M>>(&self, node: NodeId) -> Option<&A> {
        self.slots
            .get(node.index())
            .and_then(|s| s.actor.as_deref())
            .and_then(|a| a.as_any().downcast_ref::<A>())
    }

    /// Mutable variant of [`World::actor`].
    pub fn actor_mut<A: Actor<M>>(&mut self, node: NodeId) -> Option<&mut A> {
        self.slots
            .get_mut(node.index())
            .and_then(|s| s.actor.as_deref_mut())
            .and_then(|a| a.as_any_mut().downcast_mut::<A>())
    }

    /// Processes a single event, if any remains. Returns `false` when
    /// the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        debug_assert!(ev.at >= self.time, "time must be monotonic");
        self.time = ev.at;
        self.dispatch(ev.kind);
        true
    }

    /// Runs every event scheduled at or before `deadline`, then advances
    /// the clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(ev) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            let ev = self.queue.pop().expect("peeked");
            self.time = ev.at;
            self.dispatch(ev.kind);
        }
        self.time = self.time.max(deadline);
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_quiescence(&mut self) {
        while self.step() {}
    }

    fn push(&mut self, at: SimTime, kind: EvKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Ev { at, seq, kind });
    }

    fn dispatch(&mut self, kind: EvKind<M>) {
        match kind {
            EvKind::Deliver { from, to, msg } => {
                self.with_actor(to, |actor, ctx| actor.on_message(ctx, from, msg));
            }
            EvKind::Timer { node, id, tag } => {
                if !self.pending_timers.remove(&id.0) {
                    return; // cancelled
                }
                self.with_actor(node, |actor, ctx| actor.on_timer(ctx, tag));
            }
            EvKind::Flush { node } => {
                self.pending_flushes.remove(&node);
                self.with_actor(node, |actor, ctx| actor.on_flush(ctx));
            }
        }
    }

    fn with_actor(&mut self, node: NodeId, f: impl FnOnce(&mut dyn Actor<M>, &mut Context<'_, M>)) {
        self.stats.events_processed += 1;
        let slot = &mut self.slots[node.index()];
        let Some(mut actor) = slot.actor.take() else {
            return;
        };
        let mut rng = std::mem::replace(&mut slot.rng, SimRng::new(0));
        {
            let mut ctx = Context {
                world: self,
                node,
                rng: &mut rng,
            };
            f(actor.as_mut(), &mut ctx);
        }
        let slot = &mut self.slots[node.index()];
        slot.actor = Some(actor);
        slot.rng = rng;
    }
}

impl<M: Message> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("time", &self.time)
            .field("nodes", &self.slots.len())
            .field("queued_events", &self.queue.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// The discrete-event implementation of [`ActorContext`]: a handle
/// through which an actor interacts with the [`World`] while handling an
/// event.
pub struct Context<'w, M: Message> {
    world: &'w mut World<M>,
    node: NodeId,
    rng: &'w mut SimRng,
}

impl<'w, M: Message> ActorContext<M> for Context<'w, M> {
    fn now(&self) -> SimTime {
        self.world.time
    }

    fn node(&self) -> NodeId {
        self.node
    }

    fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn send_after(&mut self, delay: SimDuration, to: NodeId, msg: M) -> SendOutcome {
        let now = self.world.time;
        let req = RouteRequest {
            from: self.node,
            from_class: self.world.slots[self.node.index()].class,
            to,
            to_class: self.world.slots[to.index()].class,
            size: msg.wire_size(),
            now,
            earliest_departure: now + delay,
        };
        match self.world.transport.route(req, self.rng) {
            RouteOutcome::Arrive(at) => {
                self.world.stats.messages_sent += 1;
                let from = self.node;
                self.world.push(at, EvKind::Deliver { from, to, msg });
                SendOutcome::Sent
            }
            RouteOutcome::Dropped => {
                self.world.stats.messages_dropped += 1;
                SendOutcome::Dropped
            }
        }
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let at = self.world.time + delay;
        self.set_timer_at(at, tag)
    }

    fn set_timer_at(&mut self, at: SimTime, tag: u64) -> TimerId {
        let id = TimerId(self.world.next_timer);
        self.world.next_timer += 1;
        self.world.pending_timers.insert(id.0);
        let node = self.node;
        self.world.push(at, EvKind::Timer { node, id, tag });
        id
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.world.pending_timers.remove(&id.0);
    }

    fn egress_bytes(&self, node: NodeId) -> u64 {
        self.world.transport.egress_bytes(node, self.world.time)
    }

    fn connection_backlog(&self, from: NodeId, to: NodeId) -> u64 {
        self.world
            .transport
            .connection_backlog(from, to, self.world.time)
    }

    fn request_flush(&mut self) {
        // One flush event per node per instant: the event is pushed at
        // the current time, and monotonic sequence numbers order it
        // after every event already queued for this instant — so the
        // callback runs once the whole same-instant burst has been
        // delivered, which is exactly the batching window.
        if self.world.pending_flushes.insert(self.node) {
            let node = self.node;
            let at = self.world.time;
            self.world.push(at, EvKind::Flush { node });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    enum TestMsg {
        Ping(u32),
        Note(&'static str),
    }
    impl Message for TestMsg {
        fn wire_size(&self) -> u32 {
            32
        }
    }

    #[derive(Default)]
    struct Recorder {
        got: Vec<(SimTime, TestMsg)>,
        timer_tags: Vec<u64>,
    }
    impl Actor<TestMsg> for Recorder {
        fn on_message(&mut self, ctx: &mut dyn ActorContext<TestMsg>, _from: NodeId, msg: TestMsg) {
            self.got.push((ctx.now(), msg));
        }
        fn on_timer(&mut self, ctx: &mut dyn ActorContext<TestMsg>, tag: u64) {
            self.timer_tags.push(tag);
            let _ = ctx;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    struct PingPong {
        bounces: u32,
    }
    impl Actor<TestMsg> for PingPong {
        fn on_message(&mut self, ctx: &mut dyn ActorContext<TestMsg>, from: NodeId, msg: TestMsg) {
            if let TestMsg::Ping(n) = msg {
                self.bounces += 1;
                if n > 0 {
                    ctx.send(from, TestMsg::Ping(n - 1));
                }
            }
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn world() -> World<TestMsg> {
        World::new(1, Box::new(InstantTransport))
    }

    #[test]
    fn messages_are_delivered() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        let b = w.add_node(NodeClass::Client, Box::new(Recorder::default()));
        w.post(b, a, TestMsg::Note("hello"));
        w.run_to_quiescence();
        let rec: &Recorder = w.actor(a).unwrap();
        assert_eq!(rec.got.len(), 1);
        assert_eq!(rec.got[0].1, TestMsg::Note("hello"));
        let other: &Recorder = w.actor(b).unwrap();
        assert!(other.got.is_empty());
    }

    #[test]
    fn ping_pong_terminates_with_correct_bounce_count() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(PingPong { bounces: 0 }));
        let b = w.add_node(NodeClass::Infra, Box::new(PingPong { bounces: 0 }));
        w.post(a, b, TestMsg::Ping(9));
        w.run_to_quiescence();
        let ta: &PingPong = w.actor(a).unwrap();
        let tb: &PingPong = w.actor(b).unwrap();
        assert_eq!(ta.bounces + tb.bounces, 10);
    }

    #[test]
    fn timers_fire_in_order_and_can_be_cancelled() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        w.schedule_timer(a, SimTime::from_millis(20), 2);
        w.schedule_timer(a, SimTime::from_millis(10), 1);
        let t3 = w.schedule_timer(a, SimTime::from_millis(30), 3);
        w.cancel_timer(t3);
        w.run_until(SimTime::from_secs(1));
        let rec: &Recorder = w.actor(a).unwrap();
        assert_eq!(rec.timer_tags, vec![1, 2]);
        assert_eq!(w.now(), SimTime::from_secs(1));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        w.schedule_timer(a, SimTime::from_millis(10), 1);
        w.schedule_timer(a, SimTime::from_millis(500), 2);
        w.run_until(SimTime::from_millis(100));
        let rec: &Recorder = w.actor(a).unwrap();
        assert_eq!(rec.timer_tags, vec![1]);
        w.run_until(SimTime::from_secs(1));
        let rec: &Recorder = w.actor(a).unwrap();
        assert_eq!(rec.timer_tags, vec![1, 2]);
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        let b = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        w.post(b, a, TestMsg::Note("first"));
        w.post(b, a, TestMsg::Note("second"));
        w.run_to_quiescence();
        let rec: &Recorder = w.actor(a).unwrap();
        assert_eq!(rec.got[0].1, TestMsg::Note("first"));
        assert_eq!(rec.got[1].1, TestMsg::Note("second"));
    }

    #[test]
    fn determinism_same_seed_same_history() {
        let run = |seed| {
            let mut w = World::new(seed, Box::new(InstantTransport));
            let a = w.add_node(NodeClass::Infra, Box::new(PingPong { bounces: 0 }));
            let b = w.add_node(NodeClass::Infra, Box::new(PingPong { bounces: 0 }));
            w.post(a, b, TestMsg::Ping(50));
            w.run_to_quiescence();
            (w.stats(), w.now())
        };
        assert_eq!(run(7), run(7));
    }

    #[derive(Default)]
    struct Batcher {
        buffered: u32,
        flush_sizes: Vec<u32>,
    }
    impl Actor<TestMsg> for Batcher {
        fn on_message(
            &mut self,
            ctx: &mut dyn ActorContext<TestMsg>,
            _from: NodeId,
            _msg: TestMsg,
        ) {
            self.buffered += 1;
            ctx.request_flush();
        }
        fn on_flush(&mut self, _ctx: &mut dyn ActorContext<TestMsg>) {
            self.flush_sizes.push(self.buffered);
            self.buffered = 0;
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn flush_coalesces_a_same_instant_burst_into_one_callback() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Batcher::default()));
        let b = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        // Three messages in the same instant: the flush must run once,
        // after all three, even though each delivery requests it.
        w.post(b, a, TestMsg::Note("1"));
        w.post(b, a, TestMsg::Note("2"));
        w.post(b, a, TestMsg::Note("3"));
        w.run_to_quiescence();
        let batcher: &Batcher = w.actor(a).unwrap();
        assert_eq!(batcher.flush_sizes, vec![3]);
    }

    #[test]
    fn flush_windows_do_not_span_instants() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Batcher::default()));
        let b = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        w.post(b, a, TestMsg::Note("now"));
        w.run_to_quiescence();
        w.post(b, a, TestMsg::Note("later-1"));
        w.post(b, a, TestMsg::Note("later-2"));
        w.run_to_quiescence();
        let batcher: &Batcher = w.actor(a).unwrap();
        assert_eq!(batcher.flush_sizes, vec![1, 2]);
    }

    #[test]
    fn stats_count_events() {
        let mut w = world();
        let a = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        let b = w.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        w.post(a, b, TestMsg::Note("x"));
        w.schedule_timer(a, SimTime::from_millis(1), 0);
        w.run_to_quiescence();
        assert_eq!(w.stats().events_processed, 2);
        assert_eq!(w.stats().messages_sent, 1);
        assert_eq!(w.stats().messages_dropped, 0);
    }
}
