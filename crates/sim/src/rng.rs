//! Deterministic pseudo-random number generation.
//!
//! The simulation must be fully reproducible from a seed, so it carries
//! its own small PRNG instead of depending on an external crate whose
//! stream might change between versions. [`SimRng`] is a SplitMix64
//! generator (Steele, Lea & Flood, OOPSLA 2014): tiny state, excellent
//! statistical quality for simulation purposes, and trivially portable.

/// A deterministic SplitMix64 pseudo-random number generator.
///
/// # Examples
///
/// ```
/// use dynamoth_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point by mixing in a constant.
        SimRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives an independent child generator; used to give each actor
    /// its own stream so event-processing order does not perturb other
    /// actors' randomness.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64())
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // for non-power-of-two bounds is irrelevant for simulation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Returns a uniformly distributed float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of `slice`, or `None` if empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.next_below(slice.len() as u64) as usize])
        }
    }

    /// Samples a standard normal variate (Box–Muller transform).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0).
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a log-normal variate with the given parameters of the
    /// underlying normal distribution.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }
}

/// A Zipf sampler over ranks `0..n` with exponent `s`: rank `k` is drawn
/// with probability proportional to `1 / (k+1)^s`. Used for skewed
/// channel-popularity workloads (chat rooms, topics).
///
/// # Examples
///
/// ```
/// use dynamoth_sim::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100, 1.0);
/// let mut rng = SimRng::new(1);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 100);
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `true` if the sampler has no ranks (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..len()`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.next_f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut parent1 = SimRng::new(3);
        let mut parent2 = SimRng::new(3);
        let mut c1 = parent1.fork();
        let mut c2 = parent2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), parent1.next_u64());
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SimRng::new(13);
        let mut seen_high = false;
        for _ in 0..10_000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            seen_high |= x == 9;
        }
        assert!(seen_high, "upper values should be reachable");
    }

    #[test]
    fn normal_has_plausible_moments() {
        let mut rng = SimRng::new(17);
        let n = 50_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn log_normal_median_close_to_exp_mu() {
        let mut rng = SimRng::new(19);
        let mu = 3.0_f64;
        let n = 20_001;
        let mut xs: Vec<f64> = (0..n).map(|_| rng.log_normal(mu, 0.5)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!((median / mu.exp() - 1.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SimRng::new(23);
        let items = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            let &x = rng.choose(&items).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(rng.choose::<u8>(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SimRng::new(1).next_below(0);
    }

    #[test]
    fn zipf_is_skewed_toward_low_ranks() {
        let zipf = Zipf::new(100, 1.2);
        let mut rng = SimRng::new(31);
        let mut counts = [0u32; 100];
        for _ in 0..20_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[0] > 2 * counts[50].max(1));
        // Every rank remains reachable in principle; the tail is small
        // but the head dominates.
        let head: u32 = counts[..10].iter().sum();
        assert!(head > 10_000, "head too light: {head}");
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform_ish() {
        let zipf = Zipf::new(10, 0.0);
        let mut rng = SimRng::new(33);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[zipf.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
