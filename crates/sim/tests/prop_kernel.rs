//! Property tests for the simulation kernel: event ordering, timer
//! semantics and determinism under arbitrary schedules.

use std::any::Any;

use dynamoth_sim::{
    Actor, ActorContext, InstantTransport, Message, NodeClass, NodeId, SimTime, World,
};
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Tag(u64);
impl Message for Tag {
    fn wire_size(&self) -> u32 {
        8
    }
}

#[derive(Default)]
struct Recorder {
    timeline: Vec<(u64, u64)>, // (time µs, tag)
}
impl Actor<Tag> for Recorder {
    fn on_message(&mut self, ctx: &mut dyn ActorContext<Tag>, _from: NodeId, msg: Tag) {
        self.timeline.push((ctx.now().as_micros(), msg.0));
    }
    fn on_timer(&mut self, ctx: &mut dyn ActorContext<Tag>, tag: u64) {
        self.timeline.push((ctx.now().as_micros(), tag));
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    /// Events are observed in non-decreasing time order regardless of
    /// the order they were scheduled in.
    #[test]
    fn events_fire_in_chronological_order(
        timers in prop::collection::vec((0u64..100_000, 0u64..1_000), 1..200),
    ) {
        let mut world: World<Tag> = World::new(1, Box::new(InstantTransport));
        let node = world.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        for &(at, tag) in &timers {
            world.schedule_timer(node, SimTime::from_micros(at), tag);
        }
        world.run_to_quiescence();
        let rec: &Recorder = world.actor(node).unwrap();
        prop_assert_eq!(rec.timeline.len(), timers.len());
        for pair in rec.timeline.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0, "time went backwards");
        }
        // Same-time events preserve insertion order.
        let mut expected = timers.clone();
        expected.sort_by_key(|&(at, _)| at); // stable sort = insertion order per time
        let got: Vec<(u64, u64)> = rec.timeline.clone();
        prop_assert_eq!(got, expected);
    }

    /// `run_until` never executes an event beyond the deadline, and a
    /// follow-up run executes exactly the rest.
    #[test]
    fn run_until_partitions_the_timeline(
        timers in prop::collection::vec(0u64..100_000, 1..100),
        split in 0u64..100_000,
    ) {
        let mut world: World<Tag> = World::new(1, Box::new(InstantTransport));
        let node = world.add_node(NodeClass::Infra, Box::new(Recorder::default()));
        for (i, &at) in timers.iter().enumerate() {
            world.schedule_timer(node, SimTime::from_micros(at), i as u64);
        }
        world.run_until(SimTime::from_micros(split));
        let first_half = world.actor::<Recorder>(node).unwrap().timeline.len();
        let expected_first = timers.iter().filter(|&&t| t <= split).count();
        prop_assert_eq!(first_half, expected_first);
        prop_assert!(world.now() >= SimTime::from_micros(split));
        world.run_to_quiescence();
        let total = world.actor::<Recorder>(node).unwrap().timeline.len();
        prop_assert_eq!(total, timers.len());
    }

    /// Identical worlds replay identical histories; the RNG streams are
    /// part of that determinism.
    #[test]
    fn determinism_under_random_schedules(
        timers in prop::collection::vec((0u64..50_000, 0u64..100), 1..100),
        seed in 0u64..1_000,
    ) {
        let run = |seed: u64| {
            let mut world: World<Tag> = World::new(seed, Box::new(InstantTransport));
            let node = world.add_node(NodeClass::Infra, Box::new(Recorder::default()));
            for &(at, tag) in &timers {
                world.schedule_timer(node, SimTime::from_micros(at), tag);
            }
            world.run_to_quiescence();
            (world.stats(), world.actor::<Recorder>(node).unwrap().timeline.clone())
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}
