//! System-level low-load rebalancing (§III-B4).
//!
//! When the global average load ratio falls below a threshold, the
//! least-loaded server is drained: its channels are migrated to the
//! remaining servers as long as their estimated load stays below
//! `LR_safe`. When the server holds no more channels it is released
//! back to the cloud. The operation aborts (and releases nothing) if
//! the remaining pool cannot absorb all channels.

use crate::hashing::Ring;
use crate::ids::ServerId;
use crate::plan::Plan;

use super::estimator::LoadView;
use super::Tuning;

/// Result of a low-load rebalancing pass.
#[derive(Debug, Clone)]
pub struct LowLoadOutcome {
    /// The candidate plan with the drained server's channels migrated.
    pub plan: Plan,
    /// The server that can be released once the plan is applied.
    pub release: ServerId,
}

/// Attempts to drain one server. Returns `None` when the global load is
/// not low enough, only one server is active, or the remaining servers
/// cannot absorb the drained channels without approaching overload.
/// `excluded` (the quarantine set) keeps the ring-gated migrations in
/// agreement with where routers actually send unmapped channels.
pub fn rebalance(
    plan: &Plan,
    view: &mut LoadView,
    ring: &Ring,
    cfg: impl Into<Tuning>,
    excluded: &[ServerId],
) -> Option<LowLoadOutcome> {
    let cfg: Tuning = cfg.into();
    if view.servers().count() <= 1 {
        return None;
    }
    if view.average_load_ratio() >= cfg.lr_low {
        return None;
    }
    let (victim, _) = view.min_loaded(None)?;

    // Stage the drain on a scratch copy: an abort part-way through must
    // leave the caller's estimates exactly as they were, or later
    // decisions in the same evaluation run against phantom migrations.
    let mut staged = view.clone();
    let mut p_star = plan.clone();
    let channels = staged.channels_on(victim);
    for (channel, bytes) in channels {
        // Replicated channels must first be collapsed by channel-level
        // rebalancing; draining a replica member here would fight it.
        if p_star.mapping(channel).is_some_and(|m| m.is_replicated()) {
            return None;
        }
        let (target, lr) = staged.min_loaded(Some(victim))?;
        if lr + staged.ratio_of(bytes) > cfg.lr_safe {
            return None; // pool cannot absorb; abort the drain
        }
        p_star.migrate_excluding(channel, victim, target, ring, excluded);
        staged.migrate(channel, victim, target);
    }
    *view = staged;
    Some(LowLoadOutcome {
        plan: p_star,
        release: victim,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::metrics::{ChannelTick, LlaReport, MetricsStore};
    use crate::channel::Channel as ChannelId;
    use dynamoth_sim::NodeId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    /// Ring over servers `0..n`, matching the view fixtures below.
    fn ring(n: usize) -> Ring {
        let ids: Vec<ServerId> = (0..n).map(sid).collect();
        Ring::new(&ids, 64)
    }

    /// The first `k` channel ids the ring homes on server `s`.
    fn chans_on(r: &Ring, s: usize, k: usize) -> Vec<u64> {
        (0..)
            .filter(|&c| r.server_for(ChannelId(c)) == sid(s))
            .take(k)
            .collect()
    }

    fn cfg() -> Tuning {
        Tuning {
            lr_low: 0.35,
            lr_safe: 0.7,
            ..Tuning::default()
        }
    }

    fn view(servers: &[(usize, Vec<(u64, u64)>)]) -> LoadView {
        let mut store = MetricsStore::new(1);
        for (s, channels) in servers {
            let egress: u64 = channels.iter().map(|&(_, b)| b).sum();
            store.record(LlaReport {
                server: sid(*s),
                tick: 0,
                measured_egress_bytes: egress,
                capacity_bytes: 1_000.0,
                cpu_busy_micros: 0,
                channels: channels
                    .iter()
                    .map(|&(c, b)| {
                        (
                            ChannelId(c),
                            ChannelTick {
                                bytes_out: b,
                                ..Default::default()
                            },
                        )
                    })
                    .collect(),
            });
        }
        let ids: Vec<ServerId> = servers.iter().map(|&(s, _)| sid(s)).collect();
        LoadView::from_store(&store, &ids, 1_000.0)
    }

    #[test]
    fn drains_least_loaded_server_when_global_load_is_low() {
        let r = ring(2);
        let c0 = chans_on(&r, 0, 1);
        let c1 = chans_on(&r, 1, 2);
        let mut v = view(&[
            (0, vec![(c0[0], 300)]),
            (1, vec![(c1[0], 100), (c1[1], 50)]),
        ]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &r, &cfg(), &[]).expect("drain");
        assert_eq!(out.release, sid(1));
        // Both channels moved to server 0.
        assert_eq!(
            out.plan.mapping(ChannelId(c1[0])),
            Some(&crate::plan::ChannelMapping::Single(sid(0)))
        );
        assert_eq!(
            out.plan.mapping(ChannelId(c1[1])),
            Some(&crate::plan::ChannelMapping::Single(sid(0)))
        );
        assert_eq!(v.channels_on(sid(1)).len(), 0);
    }

    #[test]
    fn no_drain_when_load_is_moderate() {
        let mut v = view(&[(0, vec![(1, 600)]), (1, vec![(2, 500)])]);
        assert!(rebalance(&Plan::bootstrap(), &mut v, &ring(2), &cfg(), &[]).is_none());
    }

    #[test]
    fn no_drain_with_single_server() {
        let mut v = view(&[(0, vec![(1, 10)])]);
        assert!(rebalance(&Plan::bootstrap(), &mut v, &ring(1), &cfg(), &[]).is_none());
    }

    #[test]
    fn aborts_when_pool_cannot_absorb() {
        // Average is low but the victim's single channel would push the
        // other server past LR_safe.
        let mut v = view(&[(0, vec![(1, 500)]), (1, vec![(2, 250)])]);
        let mut c = cfg();
        c.lr_low = 0.5;
        assert!(rebalance(&Plan::bootstrap(), &mut v, &ring(2), &c, &[]).is_none());
    }

    #[test]
    fn aborted_drain_leaves_estimates_intact() {
        // The first channel fits under LR_safe, the second does not: the
        // drain must abort AND roll the staged migration of the first
        // channel back out of the estimator, or the caller's view shows
        // a migration that never produced a plan.
        let r = ring(2);
        let c0 = chans_on(&r, 0, 1);
        let c1 = chans_on(&r, 1, 2);
        let mut v = view(&[(0, vec![(c0[0], 600)]), (1, vec![(c1[0], 80), (c1[1], 50)])]);
        let mut c = cfg();
        c.lr_low = 0.5;
        let before: Vec<f64> = [0, 1].map(|i| v.load_ratio(sid(i))).to_vec();
        assert!(rebalance(&Plan::bootstrap(), &mut v, &r, &c, &[]).is_none());
        let after: Vec<f64> = [0, 1].map(|i| v.load_ratio(sid(i))).to_vec();
        assert_eq!(before, after, "aborted drain corrupted the load view");
        assert_eq!(v.channels_on(sid(1)).len(), 2);
    }

    #[test]
    fn aborts_on_replicated_channels() {
        use crate::plan::ChannelMapping;
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(2),
            ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]),
        );
        let mut v = view(&[(0, vec![(1, 200)]), (1, vec![(2, 50)])]);
        assert!(rebalance(&plan, &mut v, &ring(2), &cfg(), &[]).is_none());
    }

    #[test]
    fn idle_server_is_released_without_migrations() {
        let mut v = view(&[(0, vec![(1, 300)]), (1, vec![])]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &ring(2), &cfg(), &[]).expect("drain");
        assert_eq!(out.release, sid(1));
        assert!(out.plan.is_empty());
    }
}
