//! Load metrics: what the Local Load Analyzers record each time unit and
//! how the load balancer aggregates it (§III-A).

use std::collections::{HashMap, VecDeque};

use crate::channel::Channel as ChannelId;
use crate::ids::ServerId;
use crate::plan::ChannelMapping;

/// Metrics recorded for one channel on one server during one time unit
/// `t` — exactly the quantities listed in §III-A of the paper.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelTick {
    /// Publications received on the channel.
    pub publications: u64,
    /// Messages sent to subscribers (fan-out deliveries).
    pub deliveries: u64,
    /// Incoming bytes.
    pub bytes_in: u64,
    /// Outgoing bytes.
    pub bytes_out: u64,
    /// Distinct publishers observed.
    pub publishers: u32,
    /// Subscribers at the end of the time unit.
    pub subscribers: u32,
}

impl ChannelTick {
    /// Merges another tick record into this one (summing counters,
    /// taking the max of gauges).
    pub fn merge(&mut self, other: &ChannelTick) {
        self.publications += other.publications;
        self.deliveries += other.deliveries;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.publishers += other.publishers;
        self.subscribers = self.subscribers.max(other.subscribers);
    }
}

/// The aggregate update message an LLA sends to the load balancer: all
/// per-channel metrics for one time unit plus the interface-level
/// counters used for the load ratio (eq. 1).
#[derive(Debug, Clone)]
pub struct LlaReport {
    /// Reporting server.
    pub server: ServerId,
    /// Time-unit index since the start of the simulation.
    pub tick: u64,
    /// Measured outgoing bytes on the network interface during the tick
    /// (`M_i` of eq. 1, as bytes per tick).
    pub measured_egress_bytes: u64,
    /// Theoretical maximum outgoing bytes per tick (`T_i` of eq. 1).
    pub capacity_bytes: f64,
    /// CPU time consumed by the pub/sub server during the tick,
    /// microseconds (used by the CPU-aware balancing extension; the
    /// paper's balancer ignores it, §III-A).
    pub cpu_busy_micros: u64,
    /// Per-channel metrics for the tick.
    pub channels: Vec<(ChannelId, ChannelTick)>,
}

impl LlaReport {
    /// The load ratio `LR_i = M_i / T_i` of eq. 1 for this tick.
    pub fn load_ratio(&self) -> f64 {
        self.measured_egress_bytes as f64 / self.capacity_bytes
    }

    /// CPU utilization during the tick (`tick_micros` is the tick
    /// length).
    pub fn cpu_ratio(&self, tick_micros: u64) -> f64 {
        self.cpu_busy_micros as f64 / tick_micros as f64
    }

    /// Approximate wire size of the report.
    pub fn wire_size(&self) -> u32 {
        128 + 48 * self.channels.len() as u32
    }
}

/// Windowed aggregate of a channel across servers, the input to
/// Algorithm 1 and the load estimator.
///
/// Combining per-server counters requires knowing the channel's current
/// replication mode: under *all-subscribers* every subscriber appears on
/// every member (distinct count = max) while each publication hits one
/// member (sum); under *all-publishers* it is the publications that are
/// mirrored to every member (max) while subscribers spread (sum).
/// Without this normalization a replicated channel's ratios would be
/// distorted by the replication factor and Algorithm 1 would oscillate.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ChannelAggregate {
    /// Mean distinct publications per tick.
    pub publications_per_tick: f64,
    /// Mean deliveries per tick (real traffic, summed).
    pub deliveries_per_tick: f64,
    /// Mean outgoing bytes per tick (real traffic, summed).
    pub bytes_out_per_tick: f64,
    /// Distinct subscribers.
    pub subscribers: f64,
    /// Distinct publishers (approximate).
    pub publishers: f64,
}

/// The load balancer's sliding-window store of LLA reports.
#[derive(Debug, Clone)]
pub struct MetricsStore {
    window: usize,
    per_server: HashMap<ServerId, VecDeque<LlaReport>>,
}

impl MetricsStore {
    /// Creates a store averaging over the last `window` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        MetricsStore {
            window,
            per_server: HashMap::new(),
        }
    }

    /// Records a report, evicting data older than the window.
    pub fn record(&mut self, report: LlaReport) {
        let q = self.per_server.entry(report.server).or_default();
        q.push_back(report);
        while q.len() > self.window {
            q.pop_front();
        }
    }

    /// Forgets everything about `server` (used when it is despawned).
    pub fn forget(&mut self, server: ServerId) {
        self.per_server.remove(&server);
    }

    /// Windowed mean load ratio of `server`, or `None` if no report has
    /// been received yet.
    pub fn load_ratio(&self, server: ServerId) -> Option<f64> {
        let q = self.per_server.get(&server)?;
        if q.is_empty() {
            return None;
        }
        Some(q.iter().map(LlaReport::load_ratio).sum::<f64>() / q.len() as f64)
    }

    /// Windowed mean CPU utilization of `server`.
    pub fn cpu_ratio(&self, server: ServerId, tick_micros: u64) -> Option<f64> {
        let q = self.per_server.get(&server)?;
        if q.is_empty() {
            return None;
        }
        Some(q.iter().map(|r| r.cpu_ratio(tick_micros)).sum::<f64>() / q.len() as f64)
    }

    /// Windowed mean outgoing bytes per tick of `server`.
    pub fn egress_bytes_per_tick(&self, server: ServerId) -> Option<f64> {
        let q = self.per_server.get(&server)?;
        if q.is_empty() {
            return None;
        }
        Some(
            q.iter()
                .map(|r| r.measured_egress_bytes as f64)
                .sum::<f64>()
                / q.len() as f64,
        )
    }

    /// Windowed mean outgoing bytes per tick of `channel` on `server`.
    pub fn channel_bytes_on(&self, server: ServerId, channel: ChannelId) -> f64 {
        let Some(q) = self.per_server.get(&server) else {
            return 0.0;
        };
        if q.is_empty() {
            return 0.0;
        }
        let total: u64 = q
            .iter()
            .map(|r| {
                r.channels
                    .iter()
                    .find(|(c, _)| *c == channel)
                    .map_or(0, |(_, t)| t.bytes_out)
            })
            .sum();
        total as f64 / q.len() as f64
    }

    /// Windowed mean deliveries per tick of `channel` on `server`.
    pub fn channel_deliveries_on(&self, server: ServerId, channel: ChannelId) -> f64 {
        let Some(q) = self.per_server.get(&server) else {
            return 0.0;
        };
        if q.is_empty() {
            return 0.0;
        }
        let total: u64 = q
            .iter()
            .map(|r| {
                r.channels
                    .iter()
                    .find(|(c, _)| *c == channel)
                    .map_or(0, |(_, t)| t.deliveries)
            })
            .sum();
        total as f64 / q.len() as f64
    }

    /// Aggregates every channel seen in the window across all servers,
    /// normalizing per the channel's current replication mode (see the
    /// [`ChannelAggregate`] docs). `resolve` maps a channel to its
    /// mapping under the current plan.
    pub fn channel_aggregates(
        &self,
        resolve: impl Fn(ChannelId) -> ChannelMapping,
    ) -> HashMap<ChannelId, ChannelAggregate> {
        // Per-server windowed means of one channel:
        // (publications, deliveries, bytes_out, subscribers, publishers).
        type ServerMeans = (f64, f64, f64, f64, f64);
        let mut per_channel: HashMap<ChannelId, Vec<ServerMeans>> = HashMap::new();
        for q in self.per_server.values() {
            if q.is_empty() {
                continue;
            }
            let n = q.len() as f64;
            let mut merged: HashMap<ChannelId, ChannelTick> = HashMap::new();
            for report in q {
                for (c, t) in &report.channels {
                    merged.entry(*c).or_default().merge(t);
                }
            }
            for (c, summed) in merged {
                per_channel.entry(c).or_default().push((
                    summed.publications as f64 / n,
                    summed.deliveries as f64 / n,
                    summed.bytes_out as f64 / n,
                    // `merge` maxes the subscriber gauge over the window.
                    summed.subscribers as f64,
                    summed.publishers as f64 / n,
                ));
            }
        }
        per_channel
            .into_iter()
            .map(|(c, rows)| {
                let mapping = resolve(c);
                type ServerMeans = (f64, f64, f64, f64, f64);
                let sum = |f: fn(&ServerMeans) -> f64| rows.iter().map(f).sum::<f64>();
                let max = |f: fn(&ServerMeans) -> f64| rows.iter().map(f).fold(0.0_f64, f64::max);
                let agg = match mapping {
                    // Publications mirrored to every member; subscribers
                    // spread across members.
                    ChannelMapping::AllPublishers(_) => ChannelAggregate {
                        publications_per_tick: max(|r| r.0),
                        deliveries_per_tick: sum(|r| r.1),
                        bytes_out_per_tick: sum(|r| r.2),
                        subscribers: sum(|r| r.3),
                        publishers: max(|r| r.4),
                    },
                    // Subscribers mirrored on every member; publications
                    // spread across members.
                    ChannelMapping::AllSubscribers(_) => ChannelAggregate {
                        publications_per_tick: sum(|r| r.0),
                        deliveries_per_tick: sum(|r| r.1),
                        bytes_out_per_tick: sum(|r| r.2),
                        subscribers: max(|r| r.3),
                        publishers: sum(|r| r.4),
                    },
                    ChannelMapping::Single(_) => ChannelAggregate {
                        publications_per_tick: sum(|r| r.0),
                        deliveries_per_tick: sum(|r| r.1),
                        bytes_out_per_tick: sum(|r| r.2),
                        subscribers: max(|r| r.3),
                        publishers: sum(|r| r.4),
                    },
                };
                (c, agg)
            })
            .collect()
    }

    /// Every channel observed in the current window.
    pub fn channels(&self) -> std::collections::BTreeSet<ChannelId> {
        self.per_server
            .values()
            .flatten()
            .flat_map(|r| r.channels.iter().map(|&(c, _)| c))
            .collect()
    }

    /// Servers that have reported at least once.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.per_server.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynamoth_sim::NodeId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    fn report(
        server: usize,
        tick: u64,
        egress: u64,
        channels: Vec<(u64, ChannelTick)>,
    ) -> LlaReport {
        LlaReport {
            server: sid(server),
            tick,
            measured_egress_bytes: egress,
            capacity_bytes: 1_000.0,
            cpu_busy_micros: 0,
            channels: channels
                .into_iter()
                .map(|(c, t)| (ChannelId(c), t))
                .collect(),
        }
    }

    #[test]
    fn load_ratio_is_measured_over_capacity() {
        let r = report(0, 0, 800, vec![]);
        assert!((r.load_ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn store_averages_over_window() {
        let mut store = MetricsStore::new(2);
        store.record(report(0, 0, 400, vec![]));
        store.record(report(0, 1, 800, vec![]));
        assert!((store.load_ratio(sid(0)).unwrap() - 0.6).abs() < 1e-9);
        // Window evicts the oldest.
        store.record(report(0, 2, 800, vec![]));
        assert!((store.load_ratio(sid(0)).unwrap() - 0.8).abs() < 1e-9);
        assert_eq!(store.load_ratio(sid(1)), None);
    }

    #[test]
    fn channel_bytes_on_server() {
        let mut store = MetricsStore::new(2);
        let t = ChannelTick {
            bytes_out: 100,
            ..Default::default()
        };
        store.record(report(0, 0, 0, vec![(7, t)]));
        store.record(report(0, 1, 0, vec![]));
        // 100 bytes over a 2-tick window.
        assert!((store.channel_bytes_on(sid(0), ChannelId(7)) - 50.0).abs() < 1e-9);
        assert_eq!(store.channel_bytes_on(sid(1), ChannelId(7)), 0.0);
    }

    #[test]
    fn aggregates_merge_across_servers() {
        let mut store = MetricsStore::new(1);
        let t0 = ChannelTick {
            publications: 10,
            subscribers: 5,
            publishers: 2,
            bytes_out: 1_000,
            deliveries: 50,
            bytes_in: 0,
        };
        let t1 = ChannelTick {
            publications: 20,
            subscribers: 5, // same subscribers on the replica
            publishers: 3,
            bytes_out: 2_000,
            deliveries: 100,
            bytes_in: 0,
        };
        store.record(report(0, 0, 0, vec![(1, t0)]));
        store.record(report(1, 0, 0, vec![(1, t1)]));
        // Treated as all-subscribers: publications spread (sum), the
        // subscriber set is mirrored (max).
        let all_subs = |_c: ChannelId| ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]);
        let a = store.channel_aggregates(all_subs)[&ChannelId(1)];
        assert!((a.publications_per_tick - 30.0).abs() < 1e-9);
        assert!((a.subscribers - 5.0).abs() < 1e-9);
        assert!((a.publishers - 5.0).abs() < 1e-9);
        assert!((a.bytes_out_per_tick - 3_000.0).abs() < 1e-9);
        // Treated as all-publishers: publications are mirrored (max),
        // subscribers spread (sum).
        let all_pubs = |_c: ChannelId| ChannelMapping::AllPublishers(vec![sid(0), sid(1)]);
        let b = store.channel_aggregates(all_pubs)[&ChannelId(1)];
        assert!((b.publications_per_tick - 20.0).abs() < 1e-9);
        assert!((b.subscribers - 10.0).abs() < 1e-9);
        assert!((b.publishers - 3.0).abs() < 1e-9);
        assert_eq!(store.channels().len(), 1);
    }

    #[test]
    fn forget_removes_server() {
        let mut store = MetricsStore::new(2);
        store.record(report(0, 0, 100, vec![]));
        store.forget(sid(0));
        assert_eq!(store.load_ratio(sid(0)), None);
        assert_eq!(store.servers().count(), 0);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges() {
        let mut a = ChannelTick {
            publications: 1,
            deliveries: 2,
            bytes_in: 3,
            bytes_out: 4,
            publishers: 1,
            subscribers: 10,
        };
        let b = ChannelTick {
            publications: 10,
            deliveries: 20,
            bytes_in: 30,
            bytes_out: 40,
            publishers: 2,
            subscribers: 5,
        };
        a.merge(&b);
        assert_eq!(a.publications, 11);
        assert_eq!(a.subscribers, 10);
        assert_eq!(a.publishers, 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = MetricsStore::new(0);
    }
}
