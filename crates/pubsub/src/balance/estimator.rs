//! Load estimation under candidate plans (`estimateLR`, Algorithm 2
//! line 13).
//!
//! A [`LoadView`] snapshots the measured per-server egress and the
//! per-channel contributions from the metrics window, then lets the
//! rebalancing algorithms *simulate* channel migrations and replication
//! changes, tracking the estimated load ratio each server would have if
//! the candidate plan were applied.

use std::collections::HashMap;

use super::metrics::MetricsStore;
use crate::channel::Channel as ChannelId;
use crate::ids::ServerId;

/// Mutable estimate of per-server load under a candidate plan.
#[derive(Debug, Clone)]
pub struct LoadView {
    capacity_bytes_per_tick: f64,
    /// Estimated outgoing bytes per tick for each active server.
    load: HashMap<ServerId, f64>,
    /// Estimated per-channel bytes per tick currently attributed to each
    /// server.
    channels_on: HashMap<ServerId, HashMap<ChannelId, f64>>,
}

impl LoadView {
    /// Builds a view from the metrics window for the given active
    /// servers. Servers that have not reported yet are assumed idle.
    pub fn from_store(
        store: &MetricsStore,
        active: &[ServerId],
        capacity_bytes_per_tick: f64,
    ) -> Self {
        Self::from_store_with_cpu(store, active, capacity_bytes_per_tick, None)
    }

    /// [`LoadView::from_store`] with the CPU-aware extension: when
    /// `cpu` is `Some((cpu_capacity, tick_micros))`, a server's base
    /// load is inflated to `max(bytes, cpu_ratio / cpu_capacity ×
    /// capacity)`, expressing CPU pressure in the bandwidth currency the
    /// algorithms already optimize.
    pub fn from_store_with_cpu(
        store: &MetricsStore,
        active: &[ServerId],
        capacity_bytes_per_tick: f64,
        cpu: Option<(f64, u64)>,
    ) -> Self {
        let mut load = HashMap::new();
        let mut channels_on: HashMap<ServerId, HashMap<ChannelId, f64>> = HashMap::new();
        let all_channels = store.channels();
        for &s in active {
            let bytes_base = store.egress_bytes_per_tick(s).unwrap_or(0.0);
            let mut base = bytes_base;
            if let Some((cpu_capacity, tick_micros)) = cpu {
                let cpu_ratio = store.cpu_ratio(s, tick_micros).unwrap_or(0.0);
                base = base.max(cpu_ratio / cpu_capacity * capacity_bytes_per_tick);
            }
            load.insert(s, base);
            let mut per_channel = HashMap::new();
            // Channels observed on this server during the window. Under
            // the CPU-aware extension a CPU-dominated server's load is
            // attributed to channels by their *delivery* share — CPU
            // cost scales with fan-out, not bytes — so migrating a
            // chatty channel moves the right amount of estimated load.
            let cpu_dominated = base > bytes_base * 1.0001 && base > 0.0;
            let total_deliveries: f64 = if cpu_dominated {
                all_channels
                    .iter()
                    .map(|&c| store.channel_deliveries_on(s, c))
                    .sum()
            } else {
                0.0
            };
            for &report_channel in &all_channels {
                let bytes = store.channel_bytes_on(s, report_channel);
                let contribution = if cpu_dominated && total_deliveries > 0.0 {
                    let share = store.channel_deliveries_on(s, report_channel) / total_deliveries;
                    bytes.max(share * base)
                } else {
                    bytes
                };
                if contribution > 0.0 {
                    per_channel.insert(report_channel, contribution);
                }
            }
            channels_on.insert(s, per_channel);
        }
        LoadView {
            capacity_bytes_per_tick,
            load,
            channels_on,
        }
    }

    /// The active servers in this view.
    pub fn servers(&self) -> impl Iterator<Item = ServerId> + '_ {
        self.load.keys().copied()
    }

    /// `bytes / capacity` without ever producing NaN: a zero (or
    /// negative, from a corrupt report) capacity means an idle server is
    /// at ratio 0 and any loaded server is infinitely overloaded. The
    /// old plain division turned `0 / 0` into NaN, which poisoned every
    /// `partial_cmp().unwrap()` downstream and panicked the balancer.
    fn ratio(&self, bytes: f64) -> f64 {
        if self.capacity_bytes_per_tick > 0.0 {
            bytes / self.capacity_bytes_per_tick
        } else if bytes <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    }

    /// Estimated load ratio of `server`. Never NaN, even for a
    /// zero-capacity view.
    pub fn load_ratio(&self, server: ServerId) -> f64 {
        self.ratio(self.load.get(&server).copied().unwrap_or(0.0))
    }

    /// Mean estimated load ratio across all servers in the view.
    pub fn average_load_ratio(&self) -> f64 {
        if self.load.is_empty() {
            return 0.0;
        }
        self.ratio(self.load.values().sum::<f64>() / self.load.len() as f64)
    }

    /// The most loaded server, ties broken by id for determinism.
    pub fn max_loaded(&self) -> Option<(ServerId, f64)> {
        self.load
            .keys()
            .map(|&s| (s, self.load_ratio(s)))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The least loaded server excluding `excluding`, ties broken by id.
    pub fn min_loaded(&self, excluding: Option<ServerId>) -> Option<(ServerId, f64)> {
        self.load
            .keys()
            .filter(|&&s| Some(s) != excluding)
            .map(|&s| (s, self.load_ratio(s)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    }

    /// The busiest channel on `server` (by estimated bytes/tick),
    /// ignoring channels in `skip`. Ties broken by channel id.
    pub fn busiest_channel(
        &self,
        server: ServerId,
        skip: &[ChannelId],
    ) -> Option<(ChannelId, f64)> {
        self.channels_on.get(&server).and_then(|per_channel| {
            per_channel
                .iter()
                .filter(|(c, _)| !skip.contains(c))
                .map(|(&c, &b)| (c, b))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        })
    }

    /// All channels attributed to `server`, heaviest first.
    pub fn channels_on(&self, server: ServerId) -> Vec<(ChannelId, f64)> {
        let mut v: Vec<(ChannelId, f64)> = self
            .channels_on
            .get(&server)
            .map(|m| m.iter().map(|(&c, &b)| (c, b)).collect())
            .unwrap_or_default();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Simulates migrating `channel` from `from` to `to`, updating the
    /// estimated loads (the `estimateLR` step of Algorithm 2).
    pub fn migrate(&mut self, channel: ChannelId, from: ServerId, to: ServerId) {
        let bytes = self
            .channels_on
            .get_mut(&from)
            .and_then(|m| m.remove(&channel))
            .unwrap_or(0.0);
        if let Some(l) = self.load.get_mut(&from) {
            *l = (*l - bytes).max(0.0);
        }
        *self.load.entry(to).or_insert(0.0) += bytes;
        self.channels_on
            .entry(to)
            .or_default()
            .entry(channel)
            .and_modify(|b| *b += bytes)
            .or_insert(bytes);
    }

    /// Simulates re-replicating `channel` over `servers`, splitting its
    /// total estimated traffic evenly among them (both replication
    /// schemes split egress ≈ 1/n — see `DESIGN.md`).
    pub fn rereplicate(&mut self, channel: ChannelId, servers: &[ServerId]) {
        if servers.is_empty() {
            return;
        }
        // Remove the channel from every server it is currently on.
        let mut total = 0.0;
        for (s, per_channel) in self.channels_on.iter_mut() {
            if let Some(bytes) = per_channel.remove(&channel) {
                total += bytes;
                if let Some(l) = self.load.get_mut(s) {
                    *l = (*l - bytes).max(0.0);
                }
            }
        }
        let share = total / servers.len() as f64;
        for &s in servers {
            *self.load.entry(s).or_insert(0.0) += share;
            self.channels_on
                .entry(s)
                .or_default()
                .entry(channel)
                .and_modify(|b| *b += share)
                .or_insert(share);
        }
    }

    /// Estimated additional load ratio that `bytes` per tick would add.
    /// Never NaN (see [`Self::load_ratio`]).
    pub fn ratio_of(&self, bytes: f64) -> f64 {
        self.ratio(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::metrics::{ChannelTick, LlaReport};
    use dynamoth_sim::NodeId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    type ServerLoad = (usize, u64, Vec<(u64, u64)>);

    fn store_with(loads: &[ServerLoad]) -> MetricsStore {
        // (server, egress, [(channel, bytes_out)])
        let mut store = MetricsStore::new(1);
        for &(s, egress, ref channels) in loads {
            store.record(LlaReport {
                server: sid(s),
                tick: 0,
                measured_egress_bytes: egress,
                capacity_bytes: 1_000.0,
                cpu_busy_micros: 0,
                channels: channels
                    .iter()
                    .map(|&(c, b)| {
                        (
                            ChannelId(c),
                            ChannelTick {
                                bytes_out: b,
                                deliveries: 1,
                                ..Default::default()
                            },
                        )
                    })
                    .collect(),
            });
        }
        store
    }

    #[test]
    fn view_reflects_measured_load() {
        let store = store_with(&[(0, 900, vec![(1, 600), (2, 300)]), (1, 100, vec![(3, 100)])]);
        let view = LoadView::from_store(&store, &[sid(0), sid(1)], 1_000.0);
        assert!((view.load_ratio(sid(0)) - 0.9).abs() < 1e-9);
        assert!((view.load_ratio(sid(1)) - 0.1).abs() < 1e-9);
        assert!((view.average_load_ratio() - 0.5).abs() < 1e-9);
        assert_eq!(view.max_loaded().unwrap().0, sid(0));
        assert_eq!(view.min_loaded(None).unwrap().0, sid(1));
        assert_eq!(view.min_loaded(Some(sid(1))).unwrap().0, sid(0));
    }

    #[test]
    fn busiest_channel_with_skip() {
        let store = store_with(&[(0, 900, vec![(1, 600), (2, 300)])]);
        let view = LoadView::from_store(&store, &[sid(0)], 1_000.0);
        assert_eq!(view.busiest_channel(sid(0), &[]).unwrap().0, ChannelId(1));
        assert_eq!(
            view.busiest_channel(sid(0), &[ChannelId(1)]).unwrap().0,
            ChannelId(2)
        );
        assert!(view
            .busiest_channel(sid(0), &[ChannelId(1), ChannelId(2)])
            .is_none());
    }

    #[test]
    fn migrate_moves_estimated_bytes() {
        let store = store_with(&[(0, 900, vec![(1, 600)]), (1, 100, vec![])]);
        let mut view = LoadView::from_store(&store, &[sid(0), sid(1)], 1_000.0);
        view.migrate(ChannelId(1), sid(0), sid(1));
        assert!((view.load_ratio(sid(0)) - 0.3).abs() < 1e-9);
        assert!((view.load_ratio(sid(1)) - 0.7).abs() < 1e-9);
        // The channel is now attributed to the target.
        assert_eq!(view.busiest_channel(sid(1), &[]).unwrap().0, ChannelId(1));
    }

    #[test]
    fn migrate_unknown_channel_is_noop_on_load() {
        let store = store_with(&[(0, 500, vec![]), (1, 100, vec![])]);
        let mut view = LoadView::from_store(&store, &[sid(0), sid(1)], 1_000.0);
        view.migrate(ChannelId(42), sid(0), sid(1));
        assert!((view.load_ratio(sid(0)) - 0.5).abs() < 1e-9);
        assert!((view.load_ratio(sid(1)) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn rereplicate_splits_traffic() {
        let store = store_with(&[(0, 900, vec![(1, 600)]), (1, 0, vec![]), (2, 0, vec![])]);
        let mut view = LoadView::from_store(&store, &[sid(0), sid(1), sid(2)], 1_000.0);
        view.rereplicate(ChannelId(1), &[sid(0), sid(1), sid(2)]);
        assert!((view.load_ratio(sid(0)) - 0.5).abs() < 1e-9); // 300 base + 200 share
        assert!((view.load_ratio(sid(1)) - 0.2).abs() < 1e-9);
        assert!((view.load_ratio(sid(2)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_capacity_never_yields_nan() {
        // A mid-rollout balancer can briefly see capacity 0 (no config
        // yet) while brokers already report load. Ratios must stay
        // orderable — the idle server at 0, the loaded one at +inf —
        // instead of the 0/0 NaN that used to panic max_loaded.
        let store = store_with(&[(0, 900, vec![(1, 600)]), (1, 0, vec![])]);
        let view = LoadView::from_store(&store, &[sid(0), sid(1)], 0.0);
        assert_eq!(view.load_ratio(sid(1)), 0.0);
        assert_eq!(view.load_ratio(sid(0)), f64::INFINITY);
        assert!(!view.average_load_ratio().is_nan());
        assert_eq!(view.ratio_of(0.0), 0.0);
        assert_eq!(view.ratio_of(10.0), f64::INFINITY);
        assert_eq!(view.max_loaded().unwrap().0, sid(0));
        assert_eq!(view.min_loaded(None).unwrap().0, sid(1));
    }

    #[test]
    fn servers_without_reports_are_idle() {
        let store = store_with(&[(0, 500, vec![])]);
        let view = LoadView::from_store(&store, &[sid(0), sid(7)], 1_000.0);
        assert_eq!(view.load_ratio(sid(7)), 0.0);
    }
}
