//! Bounded-load channel placement — *Consistent Hashing with Bounded
//! Loads* (arXiv 1608.01350) over the Dynamoth fallback ring.
//!
//! Plain consistent hashing (§II-C of the paper) maps every channel a
//! plan does not mention to the first server clockwise from the
//! channel's hash point, regardless of load: a skewed channel-name
//! population piles unmapped load onto one broker until the reactive
//! balancer notices. The bounded-load rule fixes this with a *cap*: no
//! server may exceed `(1+ε)×` the mean load; a channel whose natural
//! owner is at the cap spills clockwise to the next server on the ring
//! walk. [`BoundedPlacer`] packages that rule so the balancer's
//! steady-state placement pass and the whole-broker emergency replan
//! run one implementation.
//!
//! Churn on server-set changes follows *Load Balancing with Dynamic Set
//! of Balls and Bins* (arXiv 2104.05093): [`BoundedPlacer::rehome`]
//! keeps a channel on its current server unless that server left the
//! eligible set or violates the cap, so renting or deallocating a
//! broker moves only the channels that must move.

use std::collections::HashMap;

use crate::channel::Channel as ChannelId;
use crate::hashing::Ring;
use crate::ids::ServerId;

/// A load-capped first-fit placer over a consistent-hashing ring.
///
/// Construction snapshots the eligible servers with their current loads
/// and fixes the cap; [`place`](Self::place) / [`rehome`](Self::rehome)
/// then assign channels one at a time, committing each channel's bytes
/// to the chosen server's projected load so later placements see the
/// earlier ones and the walk does not dogpile one server.
///
/// Placement is deterministic for a fixed (ring, load snapshot, ε,
/// channel sequence): every observer running the same inputs computes
/// the same homes.
///
/// # Examples
///
/// ```
/// use dynamoth_pubsub::{balance::bounded::BoundedPlacer, Channel, Ring, ServerId};
///
/// let s: Vec<ServerId> = (0..3).map(ServerId::from_index).collect();
/// let ring = Ring::new(&s, 64);
/// // No load anywhere: the walk degenerates to plain consistent
/// // hashing, which is exactly the deterministic cold-start choice.
/// let mut placer = BoundedPlacer::new(&s.iter().map(|&x| (x, 0.0)).collect::<Vec<_>>(), 0.25, 0.0, 0.0);
/// assert_eq!(placer.place(&ring, Channel(7), 0.0, &[]), Some(ring.server_for(Channel(7))));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedPlacer {
    /// Projected load (bytes per tick) per eligible server; updated as
    /// channels are placed.
    projected: HashMap<ServerId, f64>,
    /// The bounded-load cap in bytes per tick: `(1+ε)×` the projected
    /// mean, floored (see [`Self::new`]). Infinite when nothing has been
    /// measured and no floor was given — an uncapped walk is plain
    /// consistent hashing.
    cap_bytes: f64,
}

impl BoundedPlacer {
    /// Creates a placer over `loads` — the eligible servers with their
    /// measured loads (bytes per tick) — with spill parameter `epsilon`.
    ///
    /// `pending_bytes` is load known to be incoming but not yet in any
    /// eligible server's measurement (e.g. a dead broker's channels
    /// awaiting reassignment); it raises the mean so the cap reflects
    /// the post-placement system.
    ///
    /// `cap_floor` keeps the cap non-degenerate: a cap far below what a
    /// server can actually carry would shuffle channels to smooth
    /// imbalances nobody can feel. When the total measured load is zero
    /// *and* no floor is given, the cap is infinite — a cold start must
    /// degenerate to the plain deterministic ring walk, not to the
    /// least-projected fallback (which is what a literal `(1+ε)×0/n = 0`
    /// cap used to cause).
    pub fn new(
        loads: &[(ServerId, f64)],
        epsilon: f64,
        pending_bytes: f64,
        cap_floor: f64,
    ) -> BoundedPlacer {
        let projected: HashMap<ServerId, f64> = loads
            .iter()
            .map(|&(s, b)| (s, if b.is_finite() { b.max(0.0) } else { 0.0 }))
            .collect();
        let total: f64 = projected.values().sum::<f64>() + pending_bytes.max(0.0);
        let n = projected.len().max(1) as f64;
        let floor = cap_floor.max(0.0);
        let cap_bytes = if total > 0.0 {
            ((1.0 + epsilon.max(0.0)) * total / n).max(floor)
        } else if floor > 0.0 {
            floor
        } else {
            f64::INFINITY
        };
        BoundedPlacer {
            projected,
            cap_bytes,
        }
    }

    /// The bounded-load cap in bytes per tick (infinite on an uncapped
    /// cold start).
    pub fn cap_bytes(&self) -> f64 {
        self.cap_bytes
    }

    /// `true` if `server` is in the eligible set.
    pub fn is_eligible(&self, server: ServerId) -> bool {
        self.projected.contains_key(&server)
    }

    /// `true` if `server`'s projected load strictly exceeds the cap.
    /// Ineligible servers are never "over" — they are simply not
    /// placement targets.
    pub fn is_over_cap(&self, server: ServerId) -> bool {
        self.projected
            .get(&server)
            .is_some_and(|&b| b > self.cap_bytes)
    }

    /// The projected load of `server`, if eligible.
    pub fn projected(&self, server: ServerId) -> Option<f64> {
        self.projected.get(&server).copied()
    }

    /// Iterates the eligible servers with their projected loads.
    pub fn loads(&self) -> impl Iterator<Item = (ServerId, f64)> + '_ {
        self.projected.iter().map(|(&s, &b)| (s, b))
    }

    /// Subtracts `bytes` from `server`'s projected load (saturating at
    /// zero); used when a channel is taken away from its current home
    /// before being re-placed.
    pub fn release(&mut self, server: ServerId, bytes: f64) {
        if let Some(b) = self.projected.get_mut(&server) {
            *b = (*b - bytes.max(0.0)).max(0.0);
        }
    }

    /// Assigns `channel` (carrying `bytes` per tick) to the first
    /// eligible server on its ring walk whose projected load stays
    /// within the cap, skipping servers in `exclude` (e.g. replica
    /// members the channel already occupies). When every eligible
    /// server is over the cap, falls back to the least projected one —
    /// the cap bounds imbalance, not admission — with ties broken by
    /// walk order, so the fallback is as deterministic as the walk.
    ///
    /// Commits `bytes` to the chosen server's projected load. Returns
    /// `None` only when no eligible server remains.
    pub fn place(
        &mut self,
        ring: &Ring,
        channel: ChannelId,
        bytes: f64,
        exclude: &[ServerId],
    ) -> Option<ServerId> {
        let bytes = if bytes.is_finite() {
            bytes.max(0.0)
        } else {
            0.0
        };
        let walk = ring.walk(channel);
        let eligible = |s: &ServerId| self.projected.contains_key(s) && !exclude.contains(s);
        let target = walk
            .iter()
            .copied()
            .filter(eligible)
            .find(|s| self.projected[s] + bytes <= self.cap_bytes)
            .or_else(|| {
                // `min_by` keeps the first minimum, i.e. the earliest
                // walk entry among equally loaded servers.
                walk.iter()
                    .copied()
                    .filter(eligible)
                    .min_by(|a, b| self.projected[a].total_cmp(&self.projected[b]))
            })?;
        *self.projected.get_mut(&target)? += bytes;
        Some(target)
    }

    /// Balls-and-bins hysteresis: keeps `channel` on `current` when that
    /// server is still eligible and within the cap (its measured load
    /// already contains the channel's bytes, so nothing is committed);
    /// otherwise releases the channel's share from `current` and places
    /// it afresh down the walk. Pass `current: None` for a channel with
    /// no usable home (e.g. one whose ring home is quarantined).
    ///
    /// Returns the server the channel should live on; a result equal to
    /// `current` means "do not move".
    pub fn rehome(
        &mut self,
        ring: &Ring,
        channel: ChannelId,
        bytes: f64,
        current: Option<ServerId>,
    ) -> Option<ServerId> {
        if let Some(cur) = current {
            if self.is_eligible(cur) && !self.is_over_cap(cur) {
                return Some(cur);
            }
            // Over the cap (or gone from the eligible set): this
            // channel's share leaves `cur`; if shedding it is enough to
            // bring `cur` under the cap and `cur` leads the walk, the
            // placement below may legitimately keep it there.
            self.release(cur, bytes);
        }
        self.place(ring, channel, bytes, &[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(i: usize) -> ServerId {
        ServerId::from_index(i)
    }

    fn servers(n: usize) -> Vec<ServerId> {
        (0..n).map(sid).collect()
    }

    fn flat(n: usize, load: f64) -> Vec<(ServerId, f64)> {
        (0..n).map(|i| (sid(i), load)).collect()
    }

    #[test]
    fn zero_total_is_uncapped_and_follows_the_ring() {
        // Regression (cold start): a literal (1+ε)×0/n cap of 0 bytes
        // used to send every channel to the least-projected fallback;
        // an uncapped walk must reproduce plain consistent hashing.
        let ss = servers(4);
        let ring = Ring::new(&ss, 64);
        let mut placer = BoundedPlacer::new(&flat(4, 0.0), 0.25, 0.0, 0.0);
        assert!(placer.cap_bytes().is_infinite());
        for c in 0..100 {
            let ch = ChannelId(c);
            assert_eq!(placer.place(&ring, ch, 0.0, &[]), Some(ring.server_for(ch)));
        }
    }

    #[test]
    fn cap_floor_keeps_small_loads_unmoved() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        // Tiny skew, generous floor: the natural owner always fits.
        let loads = vec![(sid(0), 30.0), (sid(1), 1.0), (sid(2), 1.0)];
        let mut placer = BoundedPlacer::new(&loads, 0.25, 0.0, 1_000.0);
        assert_eq!(placer.cap_bytes(), 1_000.0);
        for c in 0..50 {
            let ch = ChannelId(c);
            assert_eq!(placer.place(&ring, ch, 5.0, &[]), Some(ring.server_for(ch)));
        }
    }

    #[test]
    fn overloaded_owner_spills_to_next_walk_entry() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        let ch = ChannelId(42);
        let walk = ring.walk(ch);
        // The natural owner is far over the cap; the others are idle.
        let loads: Vec<(ServerId, f64)> = ss
            .iter()
            .map(|&s| (s, if s == walk[0] { 900.0 } else { 0.0 }))
            .collect();
        let mut placer = BoundedPlacer::new(&loads, 0.25, 0.0, 0.0);
        // cap = 1.25 × 900/3 = 375 < 900.
        assert_eq!(placer.place(&ring, ch, 10.0, &[]), Some(walk[1]));
    }

    #[test]
    fn all_over_cap_falls_back_to_least_projected() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        let ch = ChannelId(7);
        let walk = ring.walk(ch);
        let loads: Vec<(ServerId, f64)> = walk
            .iter()
            .enumerate()
            .map(|(k, &s)| (s, 1_000.0 - 100.0 * k as f64))
            .collect();
        // Huge channel: nobody fits under the cap.
        let mut placer = BoundedPlacer::new(&loads, 0.0, 0.0, 0.0);
        let target = placer.place(&ring, ch, 1e9, &[]).unwrap();
        assert_eq!(target, walk[2], "least projected server must win");
    }

    #[test]
    fn exclusion_skips_replica_members() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        let ch = ChannelId(3);
        let walk = ring.walk(ch);
        let mut placer = BoundedPlacer::new(&flat(3, 0.0), 0.25, 0.0, 0.0);
        assert_eq!(placer.place(&ring, ch, 0.0, &[walk[0]]), Some(walk[1]));
    }

    #[test]
    fn placement_commits_bytes_and_later_channels_see_them() {
        let ss = servers(2);
        let ring = Ring::new(&ss, 64);
        let ch = ChannelId(11);
        let walk = ring.walk(ch);
        let mut placer = BoundedPlacer::new(&flat(2, 100.0), 0.0, 600.0, 0.0);
        // cap = (100+100+600)/2 = 400.
        assert_eq!(placer.place(&ring, ch, 290.0, &[]), Some(walk[0]));
        assert!((placer.projected(walk[0]).unwrap() - 390.0).abs() < 1e-9);
        // The owner now sits at 390; another 290-byte channel with the
        // same owner must spill.
        let ch2 = (0..)
            .map(ChannelId)
            .find(|&c| ring.walk(c)[0] == walk[0] && c != ch)
            .unwrap();
        assert_eq!(
            placer.place(&ring, ch2, 290.0, &[]),
            Some(ring.walk(ch2)[1])
        );
    }

    #[test]
    fn rehome_keeps_current_under_cap() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        let loads = vec![(sid(0), 100.0), (sid(1), 100.0), (sid(2), 100.0)];
        let mut placer = BoundedPlacer::new(&loads, 0.25, 0.0, 0.0);
        // Every server is at the mean; none over the cap: channels stay
        // wherever they are, even off their natural ring home.
        for c in 0..50 {
            let cur = sid(c as usize % 3);
            assert_eq!(
                placer.rehome(&ring, ChannelId(c), 10.0, Some(cur)),
                Some(cur)
            );
        }
    }

    #[test]
    fn rehome_moves_only_from_over_cap_or_ineligible_servers() {
        let ss = servers(3);
        let ring = Ring::new(&ss, 64);
        // Server 0 over the cap (cap = 1.25 × 1200/3 = 500).
        let loads = vec![(sid(0), 1_000.0), (sid(1), 100.0), (sid(2), 100.0)];
        let mut placer = BoundedPlacer::new(&loads, 0.25, 0.0, 0.0);
        assert!(placer.is_over_cap(sid(0)));
        let target = placer
            .rehome(&ring, ChannelId(1), 600.0, Some(sid(0)))
            .unwrap();
        assert_ne!(target, sid(0), "cap-violating home must shed the channel");
        // A channel on an under-cap server does not move. (The shed 600
        // bytes may have pushed its landing server over the cap, so pick
        // whichever of the two small servers is still calm.)
        let calm = [sid(1), sid(2)]
            .into_iter()
            .find(|&s| !placer.is_over_cap(s))
            .unwrap();
        assert_eq!(
            placer.rehome(&ring, ChannelId(2), 50.0, Some(calm)),
            Some(calm)
        );
        // A channel whose home is not eligible (e.g. quarantined) is
        // placed afresh on an eligible server.
        let fresh = placer
            .rehome(&ring, ChannelId(3), 10.0, Some(sid(9)))
            .unwrap();
        assert!(ss.contains(&fresh));
    }

    #[test]
    fn placement_is_deterministic() {
        let ss = servers(4);
        let ring = Ring::new(&ss, 64);
        let loads = vec![
            (sid(0), 700.0),
            (sid(1), 20.0),
            (sid(2), 350.0),
            (sid(3), 0.0),
        ];
        let run = || {
            let mut placer = BoundedPlacer::new(&loads, 0.25, 500.0, 0.0);
            (0..200)
                .map(|c| placer.place(&ring, ChannelId(c), (c % 17) as f64 * 13.0, &[]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn no_eligible_server_returns_none() {
        let ss = servers(2);
        let ring = Ring::new(&ss, 64);
        let mut placer = BoundedPlacer::new(&[], 0.25, 0.0, 0.0);
        assert_eq!(placer.place(&ring, ChannelId(1), 1.0, &[]), None);
        let mut placer = BoundedPlacer::new(&[(sid(0), 0.0)], 0.25, 0.0, 0.0);
        assert_eq!(placer.place(&ring, ChannelId(1), 1.0, &[sid(0)]), None);
    }

    #[test]
    fn garbage_inputs_are_sanitized() {
        let ss = servers(2);
        let ring = Ring::new(&ss, 64);
        let loads = vec![(sid(0), f64::NAN), (sid(1), -50.0)];
        let mut placer = BoundedPlacer::new(&loads, -3.0, f64::NEG_INFINITY, -1.0);
        // All garbage collapses to the uncapped cold start.
        assert!(placer.cap_bytes().is_infinite());
        let ch = ChannelId(5);
        assert_eq!(
            placer.place(&ring, ch, f64::NAN, &[]),
            Some(ring.server_for(ch))
        );
        placer.release(sid(0), 1e9);
        assert_eq!(placer.projected(sid(0)), Some(0.0));
    }
}
