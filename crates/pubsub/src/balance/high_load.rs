//! System-level high-load rebalancing — Algorithm 2 of the paper.
//!
//! While any pub/sub server's load ratio exceeds `LR_high`, the busiest
//! channels of the most loaded server are migrated to the least loaded
//! server until the *estimated* load ratio of the source falls below
//! `LR_safe`. If the pool has no capacity left to absorb the excess,
//! additional servers must be rented from the cloud.

use crate::channel::Channel as ChannelId;
use crate::hashing::Ring;
use crate::plan::Plan;

use super::estimator::LoadView;
use super::Tuning;

/// Result of a high-load rebalancing pass.
#[derive(Debug, Clone)]
pub struct HighLoadOutcome {
    /// The candidate plan `P*`.
    pub plan: Plan,
    /// `true` if `plan` differs from the input plan.
    pub changed: bool,
    /// Number of additional servers that should be rented because the
    /// current pool cannot absorb the load.
    pub servers_wanted: usize,
}

/// Algorithm 2. `plan` is the current plan; `view` the estimated loads
/// of the active servers (consumed and mutated as migrations are
/// simulated); `ring` resolves channels the plan does not mention, so a
/// migration is recorded only when the source actually serves the
/// channel. `excluded` (the quarantine set) makes that ownership gate
/// honor failover reality: an unmapped channel ring-homed on a dead
/// broker is effectively served by the first healthy walk server, and a
/// migration away from it must stick.
pub fn rebalance(
    plan: &Plan,
    view: &mut LoadView,
    ring: &Ring,
    cfg: impl Into<Tuning>,
    excluded: &[crate::ids::ServerId],
) -> HighLoadOutcome {
    let cfg: Tuning = cfg.into();
    let mut p_star = plan.clone();
    let mut changed = false;
    let mut servers_wanted = 0usize;
    // Servers we already failed to relieve; prevents infinite loops.
    let mut exhausted: Vec<crate::ids::ServerId> = Vec::new();

    while let Some((h_max, lr_max)) = view
        .servers()
        .filter(|s| !exhausted.contains(s))
        .map(|s| (s, view.load_ratio(s)))
        .max_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
    {
        if lr_max < cfg.lr_high {
            break;
        }

        // Inner loop: shed channels until the estimate is safe.
        let mut moved_any = false;
        let mut skip: Vec<ChannelId> = Vec::new();
        while view.load_ratio(h_max) >= cfg.lr_safe {
            let Some((h_min, lr_min)) = view.min_loaded(Some(h_max)) else {
                break; // single-server cluster: nothing to migrate to
            };
            let Some((channel, bytes)) = view.busiest_channel(h_max, &skip) else {
                break; // no channels left to move
            };
            // Do not overload the receiving server (§III-B3): skip
            // channels whose traffic would push it past LR_safe, and try
            // the next busiest.
            if lr_min + view.ratio_of(bytes) > cfg.lr_safe && view.servers().count() > 1 {
                skip.push(channel);
                continue;
            }
            // Never move a replicated channel here — its members are
            // managed by channel-level rebalancing.
            if p_star
                .mapping(channel)
                .is_some_and(crate::plan::ChannelMapping::is_replicated)
            {
                skip.push(channel);
                continue;
            }
            p_star.migrate_excluding(channel, h_max, h_min, ring, excluded);
            view.migrate(channel, h_max, h_min);
            changed = true;
            moved_any = true;
        }

        if view.load_ratio(h_max) >= cfg.lr_safe {
            // Could not bring this server down with the current pool.
            exhausted.push(h_max);
            if !moved_any || view.load_ratio(h_max) >= cfg.lr_high {
                servers_wanted += 1;
            }
        }
    }

    HighLoadOutcome {
        plan: p_star,
        changed,
        servers_wanted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::metrics::{ChannelTick, LlaReport, MetricsStore};
    use crate::ids::ServerId;
    use dynamoth_sim::NodeId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    /// Ring over servers `0..n`, matching the view fixtures below.
    fn ring(n: usize) -> Ring {
        let ids: Vec<ServerId> = (0..n).map(sid).collect();
        Ring::new(&ids, 64)
    }

    /// The first `k` channel ids the ring homes on server `s`; fixtures
    /// must place channels on their ring home, or the ring-gated
    /// `Plan::migrate` rightly refuses to move them.
    fn chans_on(r: &Ring, s: usize, k: usize) -> Vec<u64> {
        (0..)
            .filter(|&c| r.server_for(ChannelId(c)) == sid(s))
            .take(k)
            .collect()
    }

    fn cfg() -> Tuning {
        Tuning {
            lr_high: 0.9,
            lr_safe: 0.7,
            ..Tuning::default()
        }
    }

    /// Builds a view where each server carries the listed channels
    /// (channel, bytes/tick); capacity is 1000 bytes/tick.
    fn view(servers: &[(usize, Vec<(u64, u64)>)]) -> LoadView {
        let mut store = MetricsStore::new(1);
        for (s, channels) in servers {
            let egress: u64 = channels.iter().map(|&(_, b)| b).sum();
            store.record(LlaReport {
                server: sid(*s),
                tick: 0,
                measured_egress_bytes: egress,
                capacity_bytes: 1_000.0,
                cpu_busy_micros: 0,
                channels: channels
                    .iter()
                    .map(|&(c, b)| {
                        (
                            ChannelId(c),
                            ChannelTick {
                                bytes_out: b,
                                ..Default::default()
                            },
                        )
                    })
                    .collect(),
            });
        }
        let ids: Vec<ServerId> = servers.iter().map(|&(s, _)| sid(s)).collect();
        LoadView::from_store(&store, &ids, 1_000.0)
    }

    #[test]
    fn no_rebalance_below_threshold() {
        let r = ring(2);
        let mut v = view(&[(0, vec![(1, 500)]), (1, vec![(2, 400)])]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &r, &cfg(), &[]);
        assert!(!out.changed);
        assert_eq!(out.servers_wanted, 0);
    }

    #[test]
    fn overloaded_server_sheds_busiest_channels() {
        // Server 0 at 1.2, server 1 at 0.1.
        let r = ring(2);
        let c0 = chans_on(&r, 0, 3);
        let c1 = chans_on(&r, 1, 1);
        let mut v = view(&[
            (0, vec![(c0[0], 500), (c0[1], 400), (c0[2], 300)]),
            (1, vec![(c1[0], 100)]),
        ]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &r, &cfg(), &[]);
        assert!(out.changed);
        assert_eq!(out.servers_wanted, 0);
        // The busiest channel moved to server 1.
        assert_eq!(
            out.plan.mapping(ChannelId(c0[0])),
            Some(&crate::plan::ChannelMapping::Single(sid(1)))
        );
        // Post-condition: estimated loads are at or below LR_safe
        // everywhere (the source can land exactly on the threshold).
        for s in [sid(0), sid(1)] {
            assert!(
                v.load_ratio(s) <= 0.7 + 1e-9,
                "{} at {}",
                s,
                v.load_ratio(s)
            );
        }
    }

    #[test]
    fn requests_servers_when_pool_exhausted() {
        // Both servers hot: no migration target can absorb anything.
        let mut v = view(&[(0, vec![(1, 600), (2, 600)]), (1, vec![(3, 600), (4, 600)])]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &ring(2), &cfg(), &[]);
        assert!(out.servers_wanted >= 1, "wanted {}", out.servers_wanted);
    }

    #[test]
    fn single_server_requests_growth() {
        let mut v = view(&[(0, vec![(1, 950)])]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &ring(1), &cfg(), &[]);
        assert!(!out.changed);
        assert_eq!(out.servers_wanted, 1);
    }

    #[test]
    fn does_not_overload_the_target() {
        // One giant channel (950) that would blow past LR_safe on the
        // idle server, plus small ones that fit.
        let r = ring(2);
        let c0 = chans_on(&r, 0, 3);
        let mut v = view(&[
            (0, vec![(c0[0], 950), (c0[1], 100), (c0[2], 100)]),
            (1, vec![]),
        ]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &r, &cfg(), &[]);
        // The giant channel must NOT have been migrated.
        assert!(
            out.plan.mapping(ChannelId(c0[0])).is_none(),
            "giant channel moved: {:?}",
            out.plan.mapping(ChannelId(c0[0]))
        );
        // The small channels moved instead.
        assert!(out.changed);
    }

    #[test]
    fn replicated_channels_are_left_to_channel_level() {
        use crate::plan::ChannelMapping;
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(1),
            ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]),
        );
        let mut v = view(&[(0, vec![(1, 1_200)]), (1, vec![])]);
        let out = rebalance(&plan, &mut v, &ring(2), &cfg(), &[]);
        // Mapping unchanged for the replicated channel.
        assert_eq!(
            out.plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]))
        );
    }

    #[test]
    fn zero_capacity_view_neither_panics_nor_hangs() {
        // Regression: capacity 0 used to make load_ratio return NaN,
        // which blew up the `partial_cmp().unwrap()` in the hottest-
        // server scan. With ratios saturating at +inf instead, the pass
        // must terminate (exhausting the pool) rather than panic or
        // spin.
        let mut store = MetricsStore::new(1);
        store.record(LlaReport {
            server: sid(0),
            tick: 0,
            measured_egress_bytes: 900,
            capacity_bytes: 0.0,
            cpu_busy_micros: 0,
            channels: [(
                ChannelId(1),
                ChannelTick {
                    bytes_out: 900,
                    ..Default::default()
                },
            )]
            .into_iter()
            .collect(),
        });
        let mut v = LoadView::from_store(&store, &[sid(0), sid(1)], 0.0);
        let out = rebalance(&Plan::bootstrap(), &mut v, &ring(2), &cfg(), &[]);
        assert!(out.servers_wanted >= 1);
    }

    #[test]
    fn terminates_on_pathological_input() {
        // Many hot servers, no capacity anywhere: must terminate.
        let mut v = view(&[
            (0, vec![(1, 1_000)]),
            (1, vec![(2, 1_000)]),
            (2, vec![(3, 1_000)]),
            (3, vec![(4, 1_000)]),
        ]);
        let out = rebalance(&Plan::bootstrap(), &mut v, &ring(4), &cfg(), &[]);
        assert!(out.servers_wanted >= 1);
    }
}
