//! Channel-level (micro) rebalancing — Algorithm 1 of the paper.
//!
//! For every channel the load balancer computes the
//! publications-to-subscribers ratio `P_ratio` and its inverse `S_ratio`
//! and decides whether the channel should use *all-subscribers*
//! replication (very high publication volume), *all-publishers*
//! replication (very high subscriber count), or no replication. When
//! both quantities are very large, all-subscribers wins because
//! all-publishers would multiply every publication by the replica count
//! (§III-B1, corner case).

use crate::channel::Channel as ChannelId;
use crate::hashing::Ring;
use crate::ids::ServerId;
use crate::plan::{ChannelMapping, Plan};

use super::estimator::LoadView;
use super::metrics::ChannelAggregate;
use super::Tuning;

/// The outcome of Algorithm 1 for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationDecision {
    /// Use all-subscribers replication over this many servers.
    AllSubscribers(usize),
    /// Use all-publishers replication over this many servers.
    AllPublishers(usize),
    /// Do not replicate (cancel replication if active).
    None,
}

/// Algorithm 1: decides whether `channel` metrics warrant replication
/// and over how many servers.
pub fn decide(agg: &ChannelAggregate, cfg: impl Into<Tuning>) -> ReplicationDecision {
    let cfg: Tuning = cfg.into();
    let pubs = agg.publications_per_tick;
    let subs = agg.subscribers;
    let p_ratio = pubs / subs.max(1.0);
    let s_ratio = subs / pubs.max(1.0);
    if p_ratio > cfg.all_subs_threshold && pubs > cfg.publication_threshold {
        let n = (p_ratio / cfg.all_subs_threshold).ceil() as usize;
        ReplicationDecision::AllSubscribers(n.clamp(2, cfg.max_replication))
    } else if s_ratio > cfg.all_pubs_threshold && subs > cfg.subscriber_threshold {
        let n = (s_ratio / cfg.all_pubs_threshold).ceil() as usize;
        ReplicationDecision::AllPublishers(n.clamp(2, cfg.max_replication))
    } else {
        ReplicationDecision::None
    }
}

/// Applies Algorithm 1 to every channel in `aggregates`, mutating
/// `plan` and the estimated `view`. Returns `true` if the plan changed.
///
/// Server selection follows §III-B1: when replication is enabled or
/// grown, the least-loaded servers are added first; when it shrinks or
/// is cancelled, the busiest members are freed first.
///
/// `excluded` is the balancer's quarantine set: unmapped channels
/// resolve through [`Plan::resolve_excluding`] so a channel ring-homed
/// on a dead broker is attributed to the healthy server actually
/// carrying it.
pub fn apply(
    plan: &mut Plan,
    ring: &Ring,
    aggregates: &[(ChannelId, ChannelAggregate)],
    view: &mut LoadView,
    active: &[ServerId],
    cfg: impl Into<Tuning>,
    excluded: &[ServerId],
) -> bool {
    let cfg: Tuning = cfg.into();
    let mut changed = false;
    for (channel, agg) in aggregates {
        let decision = decide(agg, cfg);
        let current = plan.resolve_excluding(*channel, ring, excluded);
        match decision {
            ReplicationDecision::None => {
                if current.is_replicated() {
                    // Cancel replication: collapse to the member that is
                    // currently least loaded.
                    let keep = least_loaded_member(view, current.servers());
                    plan.set(*channel, ChannelMapping::Single(keep));
                    view.rereplicate(*channel, &[keep]);
                    changed = true;
                }
            }
            ReplicationDecision::AllSubscribers(n) | ReplicationDecision::AllPublishers(n) => {
                let n = n.min(active.len());
                if n < 2 {
                    continue; // not enough servers to replicate
                }
                // Stability: if the channel already runs the right scheme
                // over the right number of (still active) servers, keep
                // the existing membership instead of reshuffling it.
                let mode_matches = matches!(
                    (&decision, &current),
                    (
                        ReplicationDecision::AllSubscribers(_),
                        ChannelMapping::AllSubscribers(_)
                    ) | (
                        ReplicationDecision::AllPublishers(_),
                        ChannelMapping::AllPublishers(_)
                    )
                );
                if mode_matches
                    && current.replication_factor() == n
                    && current.servers().iter().all(|s| active.contains(s))
                {
                    continue;
                }
                let members = select_members(view, current.servers(), active, n);
                let mapping = match decision {
                    ReplicationDecision::AllSubscribers(_) => {
                        ChannelMapping::AllSubscribers(members.clone())
                    }
                    ReplicationDecision::AllPublishers(_) => {
                        ChannelMapping::AllPublishers(members.clone())
                    }
                    ReplicationDecision::None => unreachable!(),
                };
                if mapping != current {
                    // `n >= 2` holds above, but a degenerate member
                    // list must not unwind the balancer thread.
                    if plan.try_set(*channel, mapping).is_err() {
                        continue;
                    }
                    view.rereplicate(*channel, &members);
                    changed = true;
                }
            }
        }
    }
    changed
}

fn least_loaded_member(view: &LoadView, members: &[ServerId]) -> ServerId {
    members
        .iter()
        .copied()
        .min_by(|&a, &b| {
            view.load_ratio(a)
                .total_cmp(&view.load_ratio(b))
                .then(a.cmp(&b))
        })
        // Decoded mappings always have members, but a degenerate empty
        // list degrades to server 0 instead of unwinding the balancer.
        .unwrap_or(ServerId::from_index(0))
}

/// Chooses `n` servers for a replicated channel: existing members are
/// kept (busiest dropped first when shrinking), then the least-loaded
/// non-member servers fill the remaining slots.
fn select_members(
    view: &LoadView,
    current: &[ServerId],
    active: &[ServerId],
    n: usize,
) -> Vec<ServerId> {
    // Existing members sorted least-loaded first, so truncation frees
    // the busiest first.
    let mut members: Vec<ServerId> = current
        .iter()
        .copied()
        .filter(|s| active.contains(s))
        .collect();
    members.sort_by(|&a, &b| {
        view.load_ratio(a)
            .total_cmp(&view.load_ratio(b))
            .then(a.cmp(&b))
    });
    members.truncate(n);
    if members.len() < n {
        let mut candidates: Vec<ServerId> = active
            .iter()
            .copied()
            .filter(|s| !members.contains(s))
            .collect();
        candidates.sort_by(|&a, &b| {
            view.load_ratio(a)
                .total_cmp(&view.load_ratio(b))
                .then(a.cmp(&b))
        });
        members.extend(candidates.into_iter().take(n - members.len()));
    }
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::metrics::{ChannelTick, LlaReport, MetricsStore};
    use dynamoth_sim::NodeId;

    fn sid(i: usize) -> ServerId {
        ServerId(NodeId::from_index(i))
    }

    fn cfg() -> Tuning {
        Tuning {
            all_subs_threshold: 100.0,
            publication_threshold: 500.0,
            all_pubs_threshold: 20.0,
            subscriber_threshold: 100.0,
            max_replication: 3,
            ..Tuning::default()
        }
    }

    fn agg(pubs: f64, subs: f64) -> ChannelAggregate {
        ChannelAggregate {
            publications_per_tick: pubs,
            subscribers: subs,
            ..Default::default()
        }
    }

    #[test]
    fn high_publication_ratio_triggers_all_subscribers() {
        // 2000 pubs/tick to 1 subscriber: P_ratio = 2000.
        let d = decide(&agg(2_000.0, 1.0), &cfg());
        assert_eq!(d, ReplicationDecision::AllSubscribers(3)); // ceil(20) clamped to 3
    }

    #[test]
    fn high_subscriber_ratio_triggers_all_publishers() {
        // 10 pubs/tick, 500 subscribers: S_ratio = 50.
        let d = decide(&agg(10.0, 500.0), &cfg());
        assert_eq!(d, ReplicationDecision::AllPublishers(3));
    }

    #[test]
    fn small_channels_are_not_replicated() {
        assert_eq!(decide(&agg(3.0, 12.0), &cfg()), ReplicationDecision::None);
        // High ratio but too few publications.
        assert_eq!(decide(&agg(400.0, 1.0), &cfg()), ReplicationDecision::None);
        // Many subscribers but ratio below threshold.
        assert_eq!(decide(&agg(50.0, 600.0), &cfg()), ReplicationDecision::None);
    }

    #[test]
    fn corner_case_prefers_all_subscribers() {
        // Both publications AND subscribers are huge; the first branch
        // (all-subscribers) must win (§III-B1 corner case).
        let mut c = cfg();
        c.all_subs_threshold = 1.5;
        c.publication_threshold = 100.0;
        let d = decide(&agg(100_000.0, 1_000.0), &c);
        assert!(matches!(d, ReplicationDecision::AllSubscribers(_)), "{d:?}");
    }

    #[test]
    fn n_servers_scales_with_ratio() {
        let mut c = cfg();
        c.max_replication = 16;
        // P_ratio = 450 → ceil(4.5) = 5 servers.
        assert_eq!(
            decide(&agg(900.0, 2.0), &c),
            ReplicationDecision::AllSubscribers(5)
        );
    }

    fn view_with_loads(loads: &[(usize, u64)]) -> LoadView {
        let mut store = MetricsStore::new(1);
        for &(s, egress) in loads {
            store.record(LlaReport {
                server: sid(s),
                tick: 0,
                measured_egress_bytes: egress,
                capacity_bytes: 1_000.0,
                cpu_busy_micros: 0,
                channels: vec![(
                    ChannelId(9),
                    ChannelTick {
                        bytes_out: egress / 2,
                        ..Default::default()
                    },
                )],
            });
        }
        let servers: Vec<ServerId> = loads.iter().map(|&(s, _)| sid(s)).collect();
        LoadView::from_store(&store, &servers, 1_000.0)
    }

    #[test]
    fn apply_enables_replication_on_least_loaded_servers() {
        let active = vec![sid(0), sid(1), sid(2), sid(3)];
        let ring = Ring::new(&active, 16);
        let mut plan = Plan::bootstrap();
        let mut view = view_with_loads(&[(0, 900), (1, 100), (2, 500), (3, 200)]);
        let aggregates = vec![(ChannelId(9), agg(2_000.0, 1.0))];
        let changed = apply(
            &mut plan,
            &ring,
            &aggregates,
            &mut view,
            &active,
            &cfg(),
            &[],
        );
        assert!(changed);
        let mapping = plan.mapping(ChannelId(9)).unwrap();
        match mapping {
            ChannelMapping::AllSubscribers(v) => {
                assert_eq!(v.len(), 3);
                // Depending on where the channel hashed, its current home
                // is kept; the fill servers must be the least loaded.
                assert!(v.contains(&sid(1)), "{v:?}");
                assert!(v.contains(&sid(3)), "{v:?}");
            }
            other => panic!("expected all-subscribers, got {other:?}"),
        }
    }

    #[test]
    fn apply_cancels_replication_when_load_drops() {
        let active = vec![sid(0), sid(1)];
        let ring = Ring::new(&active, 16);
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(9),
            ChannelMapping::AllSubscribers(vec![sid(0), sid(1)]),
        );
        let mut view = view_with_loads(&[(0, 900), (1, 100)]);
        let aggregates = vec![(ChannelId(9), agg(1.0, 1.0))];
        let changed = apply(
            &mut plan,
            &ring,
            &aggregates,
            &mut view,
            &active,
            &cfg(),
            &[],
        );
        assert!(changed);
        // Collapsed onto the least loaded member.
        assert_eq!(
            plan.mapping(ChannelId(9)),
            Some(&ChannelMapping::Single(sid(1)))
        );
    }

    #[test]
    fn apply_is_stable_when_nothing_changes() {
        let active = vec![sid(0), sid(1)];
        let ring = Ring::new(&active, 16);
        let mut plan = Plan::bootstrap();
        let mut view = view_with_loads(&[(0, 500), (1, 500)]);
        let aggregates = vec![(ChannelId(9), agg(2.0, 3.0))];
        assert!(!apply(
            &mut plan,
            &ring,
            &aggregates,
            &mut view,
            &active,
            &cfg(),
            &[]
        ));
        assert!(plan.is_empty());
    }

    #[test]
    fn replication_never_exceeds_active_servers() {
        let active = vec![sid(0), sid(1)];
        let ring = Ring::new(&active, 16);
        let mut plan = Plan::bootstrap();
        let mut view = view_with_loads(&[(0, 500), (1, 500)]);
        let aggregates = vec![(ChannelId(9), agg(100_000.0, 1.0))];
        apply(
            &mut plan,
            &ring,
            &aggregates,
            &mut view,
            &active,
            &cfg(),
            &[],
        );
        assert_eq!(plan.mapping(ChannelId(9)).unwrap().replication_factor(), 2);
    }

    #[test]
    fn single_active_server_disables_replication() {
        let active = vec![sid(0)];
        let ring = Ring::new(&active, 16);
        let mut plan = Plan::bootstrap();
        let mut view = view_with_loads(&[(0, 500)]);
        let aggregates = vec![(ChannelId(9), agg(100_000.0, 1.0))];
        assert!(!apply(
            &mut plan,
            &ring,
            &aggregates,
            &mut view,
            &active,
            &cfg(),
            &[]
        ));
    }
}
