//! The Dynamoth balancing algorithms (§III of the paper), shared by the
//! simulator (`dynamoth-core`) and the live TCP control plane
//! ([`LiveLoadBalancer`](crate::LiveLoadBalancer)).
//!
//! These modules used to live in `dynamoth-core`; they moved here so the
//! live balancer can reuse them without a dependency cycle (core depends
//! on this crate for the plan/ring machinery). `dynamoth-core`
//! re-exports them under the historical paths. The algorithms are
//! parameterized by a plain [`Tuning`] snapshot of the thresholds
//! instead of the simulator's full `DynamothConfig`, so callers on
//! either tier pass whatever configuration type they hold (`core`
//! provides `impl From<&DynamothConfig> for Tuning`).

pub mod bounded;
pub mod channel_level;
pub mod estimator;
pub mod high_load;
pub mod low_load;
pub mod metrics;

/// The threshold parameters consumed by Algorithms 1/2 and the low-load
/// drain — the subset of the paper's tunables that the balancing math
/// itself reads. Defaults mirror the calibrated simulator defaults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// `AllSubs_threshold`: minimum publications-to-subscribers ratio
    /// (`P_ratio`) for *all-subscribers* replication.
    pub all_subs_threshold: f64,
    /// `Publication_threshold`: minimum publications per tick before
    /// all-subscribers replication is considered.
    pub publication_threshold: f64,
    /// `AllPubs_threshold`: minimum subscribers-to-publications ratio
    /// (`S_ratio`) for *all-publishers* replication.
    pub all_pubs_threshold: f64,
    /// `Subscriber_threshold`: minimum subscriber count before
    /// all-publishers replication is considered.
    pub subscriber_threshold: f64,
    /// Upper bound on `N_servers` for a replicated channel.
    pub max_replication: usize,
    /// `LR_high`: a server above this load ratio triggers high-load
    /// rebalancing.
    pub lr_high: f64,
    /// `LR_safe`: high-load rebalancing sheds channels until the
    /// estimated load ratio falls below this value.
    pub lr_safe: f64,
    /// Global average load ratio below which low-load rebalancing tries
    /// to drain and release servers.
    pub lr_low: f64,
}

impl Default for Tuning {
    fn default() -> Self {
        Tuning {
            all_subs_threshold: 600.0,
            publication_threshold: 800.0,
            all_pubs_threshold: 25.0,
            subscriber_threshold: 200.0,
            max_replication: 4,
            lr_high: 0.9,
            lr_safe: 0.7,
            lr_low: 0.35,
        }
    }
}

impl From<&Tuning> for Tuning {
    fn from(t: &Tuning) -> Tuning {
        *t
    }
}

/// Observed-capacity estimator for the load-ratio denominator `T_i`.
///
/// The paper defines `T_i` as the *measured maximum* outgoing throughput
/// of a server, not its advertised bandwidth. This estimator tracks the
/// maximum **sustained** egress (bytes per tick) a server has actually
/// demonstrated — the minimum over a short trailing window, so a
/// one-tick burst does not count — decaying the memory slowly so an old
/// peak does not inflate the denominator forever, and never reporting
/// less than the provisioned floor. Shared by the simulator's `Lla` and
/// the live tier's balancer, so `LR_i` stops lying when provisioned
/// capacity ≠ real capacity: a server *sustaining* 1.3× its advertised
/// bandwidth is at capacity (LR ≈ 1.0), not at 1.3, while a transient
/// overload spike still reads above 1.0 (the adaptive-threshold
/// controller keys off exactly those near-failure episodes).
#[derive(Debug, Clone)]
pub struct CapacityEstimator {
    floor: f64,
    observed: f64,
    decay: f64,
    window: usize,
    recent: std::collections::VecDeque<f64>,
}

impl CapacityEstimator {
    /// Default per-observation decay factor of the observed maximum.
    pub const DEFAULT_DECAY: f64 = 0.98;
    /// Default number of consecutive observations a level must hold for
    /// before it counts as "sustained".
    pub const DEFAULT_WINDOW: usize = 3;

    /// Creates an estimator with the provisioned capacity `floor`
    /// (bytes per tick) and the default decay/window.
    pub fn new(floor: f64) -> CapacityEstimator {
        CapacityEstimator::with_decay(floor, Self::DEFAULT_DECAY)
    }

    /// Creates an estimator with an explicit decay factor in `(0, 1]`;
    /// values closer to 1 remember demonstrated peaks longer.
    pub fn with_decay(floor: f64, decay: f64) -> CapacityEstimator {
        CapacityEstimator {
            floor: floor.max(1.0),
            observed: 0.0,
            decay: decay.clamp(f64::EPSILON, 1.0),
            window: Self::DEFAULT_WINDOW,
            recent: std::collections::VecDeque::new(),
        }
    }

    /// Feeds one tick's measured egress (bytes) into the estimate. The
    /// estimate rises only when a level holds across the whole trailing
    /// window (sustained throughput demonstrates capacity; one hot tick
    /// is an overload transient, not evidence of headroom).
    pub fn observe(&mut self, egress_bytes: f64) {
        self.recent.push_back(egress_bytes);
        while self.recent.len() > self.window {
            self.recent.pop_front();
        }
        self.observed *= self.decay;
        if self.recent.len() == self.window {
            let sustained = self.recent.iter().copied().fold(f64::INFINITY, f64::min);
            self.observed = self.observed.max(sustained);
        }
    }

    /// Discards the trailing observation window without touching the
    /// demonstrated-capacity estimate. Called when a broker is declared
    /// dead: its final (often artificially high or truncated) egress
    /// samples must not complete a "sustained" window and skew the
    /// capacity — and with it the mean-load math every survivor's LR is
    /// measured against — after the broker is gone.
    pub fn forget_window(&mut self) {
        self.recent.clear();
    }

    /// The current estimate of `T_i`: the decayed maximum sustained
    /// egress, never below the provisioned floor.
    pub fn capacity(&self) -> f64 {
        self.observed.max(self.floor)
    }

    /// The provisioned floor this estimator was built with.
    pub fn floor(&self) -> f64 {
        self.floor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_internally_consistent() {
        let t = Tuning::default();
        assert!(t.lr_safe < t.lr_high);
        assert!(t.lr_low < t.lr_safe);
        assert!(t.max_replication >= 2);
    }

    #[test]
    fn capacity_never_drops_below_floor() {
        let mut c = CapacityEstimator::new(1_000.0);
        assert_eq!(c.capacity(), 1_000.0);
        c.observe(400.0);
        assert_eq!(c.capacity(), 1_000.0);
    }

    #[test]
    fn capacity_tracks_sustained_maximum() {
        let mut c = CapacityEstimator::new(1_000.0);
        for _ in 0..CapacityEstimator::DEFAULT_WINDOW {
            c.observe(1_500.0);
        }
        assert!((c.capacity() - 1_500.0).abs() < 1e-9);
        // A quieter tick decays the memory but keeps most of it.
        c.observe(100.0);
        assert!((c.capacity() - 1_470.0).abs() < 1e-9);
    }

    #[test]
    fn transient_burst_does_not_raise_capacity() {
        // One hot tick is an overload transient, not demonstrated
        // capacity: `T_i` must stay at the floor so the load ratio keeps
        // reading > 1 during near-failure episodes.
        let mut c = CapacityEstimator::new(1_000.0);
        c.observe(1_500.0);
        assert_eq!(c.capacity(), 1_000.0);
        c.observe(100.0);
        c.observe(100.0);
        assert_eq!(c.capacity(), 1_000.0);
    }

    #[test]
    fn decayed_maximum_returns_to_floor() {
        let mut c = CapacityEstimator::with_decay(1_000.0, 0.5);
        for _ in 0..CapacityEstimator::DEFAULT_WINDOW {
            c.observe(1_600.0);
        }
        for _ in 0..8 {
            c.observe(0.0);
        }
        assert_eq!(c.capacity(), 1_000.0);
    }

    #[test]
    fn tuning_converts_from_reference() {
        let t = Tuning {
            lr_high: 0.5,
            ..Tuning::default()
        };
        let u: Tuning = (&t).into();
        assert_eq!(u, t);
    }
}
