//! A fault-injecting TCP proxy for chaos-testing the real broker path.
//!
//! [`ChaosProxy`] sits between a client and a broker, forwarding bytes
//! in both directions, and injects faults on command:
//!
//! - [`reset_all`](ChaosProxy::reset_all) — tear down every proxied
//!   connection at once (what clients see when a broker dies);
//! - [`kill_upstream_hard`](ChaosProxy::kill_upstream_hard) — tear down
//!   every flow *and* close the listener for good, so new connection
//!   attempts are refused at the TCP level (a whole broker host dying,
//!   as a failure-detector probe sees it);
//! - [`set_black_hole`](ChaosProxy::set_black_hole) — accept new
//!   connections but forward nothing, the classic *half-open*
//!   connection TCP itself never reports;
//! - [`stall`](ChaosProxy::stall) — pause forwarding in one direction
//!   for a while (a congested or GC-pausing broker);
//! - [`set_latency`](ChaosProxy::set_latency) — delay every forwarded
//!   chunk (a WAN hop);
//! - [`set_truncate_probability`](ChaosProxy::set_truncate_probability)
//!   — randomly cut a forwarded chunk in half and kill the connection,
//!   leaving the peer a torn RESP frame.
//!
//! Random decisions come from [SplitMix64](crate::rng) generators
//! forked per connection and direction from the proxy's seed, so a
//! failing chaos run replays with the same fault schedule (modulo OS
//! chunk boundaries). The proxy also retargets: point
//! [`set_upstream`](ChaosProxy::set_upstream) at a replacement broker
//! and new connections go there — which is exactly how the chaos suite
//! stages "broker restarted elsewhere" without racing on port reuse.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::rng::SplitMix64;

/// A forwarding direction through the proxy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bytes flowing from the connecting client toward the upstream
    /// broker.
    ClientToServer,
    /// Bytes flowing from the upstream broker back to the client.
    ServerToClient,
}

struct ProxyShared {
    upstream: Mutex<SocketAddr>,
    running: AtomicBool,
    hard_killed: AtomicBool,
    black_hole: AtomicBool,
    latency_micros: AtomicU64,
    truncate_permille: AtomicU64,
    stall_until: [Mutex<Option<Instant>>; 2],
    seed: u64,
    next_conn: AtomicU64,
    /// Socket clones of live proxied connections, for `reset_all`.
    conns: Mutex<HashMap<u64, Vec<TcpStream>>>,
    pumps: Mutex<Vec<JoinHandle<()>>>,
    connections_accepted: AtomicU64,
    bytes_forwarded: AtomicU64,
    truncations: AtomicU64,
}

impl ProxyShared {
    fn stall_slot(&self, dir: Direction) -> &Mutex<Option<Instant>> {
        match dir {
            Direction::ClientToServer => &self.stall_until[0],
            Direction::ServerToClient => &self.stall_until[1],
        }
    }

    fn deregister(&self, conn: u64) {
        if let Some(streams) = self.conns.lock().remove(&conn) {
            for s in streams {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
    }
}

/// A seeded fault-injecting TCP proxy (see the module docs).
///
/// # Examples
///
/// ```no_run
/// use dynamoth_pubsub::{ChaosProxy, TcpBroker, TcpPubSubClient};
///
/// let broker = TcpBroker::bind("127.0.0.1:0").expect("bind");
/// let proxy = ChaosProxy::spawn(broker.local_addr(), 42).expect("proxy");
/// let client = TcpPubSubClient::connect(proxy.local_addr()).expect("client");
/// proxy.reset_all(); // chaos: the client must reconnect
/// # drop(client);
/// ```
pub struct ChaosProxy {
    shared: Arc<ProxyShared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds the proxy on an ephemeral loopback port, forwarding to
    /// `upstream`. All fault dice derive from `seed`.
    ///
    /// # Errors
    ///
    /// Returns any socket error from binding the listener.
    pub fn spawn(upstream: SocketAddr, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(ProxyShared {
            upstream: Mutex::new(upstream),
            running: AtomicBool::new(true),
            hard_killed: AtomicBool::new(false),
            black_hole: AtomicBool::new(false),
            latency_micros: AtomicU64::new(0),
            truncate_permille: AtomicU64::new(0),
            stall_until: [Mutex::new(None), Mutex::new(None)],
            seed,
            next_conn: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            pumps: Mutex::new(Vec::new()),
            connections_accepted: AtomicU64::new(0),
            bytes_forwarded: AtomicU64::new(0),
            truncations: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(listener, accept_shared));
        Ok(ChaosProxy {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Retargets *new* connections at `upstream` (existing ones keep
    /// their current peer — combine with [`reset_all`](Self::reset_all)
    /// to force everyone over).
    pub fn set_upstream(&self, upstream: SocketAddr) {
        *self.shared.upstream.lock() = upstream;
    }

    /// Tears down every currently proxied connection. Clients see a
    /// reset/EOF, exactly like a broker crash.
    pub fn reset_all(&self) {
        let conns: Vec<u64> = self.shared.conns.lock().keys().copied().collect();
        for conn in conns {
            self.shared.deregister(conn);
        }
    }

    /// Kills the upstream *permanently*: tears down every proxied flow
    /// at once and closes the listener itself, so new connection
    /// attempts — including bare failure-detector probes — fail at the
    /// TCP level with "connection refused". Unlike
    /// [`set_black_hole`](Self::set_black_hole) the handshake itself
    /// fails, and unlike [`set_upstream`](Self::set_upstream) there is
    /// no retarget: this proxy never serves again (stage a replacement
    /// broker on a fresh address instead).
    pub fn kill_upstream_hard(&self) {
        self.shared.hard_killed.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the kill and drops the
        // listener — the close is what turns new connects into
        // refusals instead of backlog accepts.
        let _ = TcpStream::connect(self.local_addr);
        self.reset_all();
    }

    /// While enabled, new connections are accepted and their bytes read
    /// and discarded, but nothing is ever forwarded or answered — a
    /// half-open connection that only application-level liveness can
    /// detect.
    pub fn set_black_hole(&self, enabled: bool) {
        self.shared.black_hole.store(enabled, Ordering::SeqCst);
    }

    /// Adds a fixed delay in front of every forwarded chunk.
    pub fn set_latency(&self, latency: Duration) {
        self.shared
            .latency_micros
            .store(latency.as_micros() as u64, Ordering::SeqCst);
    }

    /// Pauses forwarding in `dir` for `duration` (bytes queue behind
    /// the stall; nothing is lost).
    pub fn stall(&self, dir: Direction, duration: Duration) {
        *self.shared.stall_slot(dir).lock() = Some(Instant::now() + duration);
    }

    /// With probability `p` per forwarded chunk, forward only half the
    /// chunk and kill the connection — the peer is left holding a
    /// truncated RESP frame.
    pub fn set_truncate_probability(&self, p: f64) {
        let permille = (p.clamp(0.0, 1.0) * 1000.0).round() as u64;
        self.shared
            .truncate_permille
            .store(permille, Ordering::SeqCst);
    }

    /// Connections accepted since the proxy started.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Bytes forwarded (both directions) since the proxy started.
    pub fn bytes_forwarded(&self) -> u64 {
        self.shared.bytes_forwarded.load(Ordering::Relaxed)
    }

    /// Connections killed by injected truncation so far.
    pub fn truncations(&self) -> u64 {
        self.shared.truncations.load(Ordering::Relaxed)
    }

    /// Stops the proxy and tears down every connection.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.reset_all();
        let pumps: Vec<JoinHandle<()>> = std::mem::take(&mut *self.shared.pumps.lock());
        for pump in pumps {
            let _ = pump.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for ChaosProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosProxy")
            .field("local_addr", &self.local_addr)
            .finish_non_exhaustive()
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<ProxyShared>) {
    loop {
        let client = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if !shared.running.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if !shared.running.load(Ordering::SeqCst) {
            return; // the shutdown self-connect
        }
        if shared.hard_killed.load(Ordering::SeqCst) {
            // Hard kill: drop the just-accepted stream unanswered and
            // exit, closing the listener — every later connect is
            // refused by the kernel.
            return;
        }
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        let conn = shared.next_conn.fetch_add(1, Ordering::Relaxed);
        if shared.black_hole.load(Ordering::SeqCst) {
            spawn_black_hole(conn, client, &shared);
            continue;
        }
        let upstream_addr = *shared.upstream.lock();
        let server = match TcpStream::connect_timeout(&upstream_addr, Duration::from_secs(1)) {
            Ok(s) => s,
            Err(_) => continue, // upstream down: refuse by closing
        };
        spawn_pumps(conn, client, server, &shared);
    }
}

/// Half-open mode: keep the client's connection established (reading
/// and discarding whatever it sends, so its writes keep succeeding) but
/// never speak back.
fn spawn_black_hole(conn: u64, client: TcpStream, shared: &Arc<ProxyShared>) {
    let Ok(reader) = client.try_clone() else {
        return;
    };
    shared.conns.lock().insert(conn, vec![client]);
    let pump_shared = Arc::clone(shared);
    let handle = std::thread::spawn(move || {
        let shared = pump_shared;
        let mut reader = reader;
        let _ = reader.set_read_timeout(Some(Duration::from_millis(25)));
        let mut sink = [0u8; 4096];
        loop {
            if !shared.running.load(Ordering::SeqCst) {
                break;
            }
            match reader.read(&mut sink) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut => {}
                Err(_) => break,
            }
        }
        shared.deregister(conn);
    });
    shared.pumps.lock().push(handle);
}

fn spawn_pumps(conn: u64, client: TcpStream, server: TcpStream, shared: &Arc<ProxyShared>) {
    let (Ok(c2s_src), Ok(s2c_src), Ok(c2s_dst), Ok(s2c_dst)) = (
        client.try_clone(),
        server.try_clone(),
        server.try_clone(),
        client.try_clone(),
    ) else {
        return;
    };
    shared.conns.lock().insert(conn, vec![client, server]);
    let mut handles = Vec::with_capacity(2);
    for (src, dst, dir) in [
        (c2s_src, c2s_dst, Direction::ClientToServer),
        (s2c_src, s2c_dst, Direction::ServerToClient),
    ] {
        let shared = Arc::clone(shared);
        // Fork a deterministic per-(connection, direction) dice stream
        // from the proxy seed.
        let dir_bit = match dir {
            Direction::ClientToServer => 0,
            Direction::ServerToClient => 1,
        };
        let mut seeder = SplitMix64::new(shared.seed ^ ((conn << 1) | dir_bit));
        let rng = SplitMix64::new(seeder.next_u64());
        handles.push(std::thread::spawn(move || {
            pump(conn, src, dst, dir, rng, &shared);
            shared.deregister(conn);
        }));
    }
    let mut pumps = shared.pumps.lock();
    pumps.retain(|h| !h.is_finished());
    pumps.extend(handles);
}

/// Forwards bytes `src` → `dst` through the fault filters until either
/// socket dies, the proxy stops, or a truncation die kills the
/// connection.
fn pump(
    conn: u64,
    mut src: TcpStream,
    mut dst: TcpStream,
    dir: Direction,
    mut rng: SplitMix64,
    shared: &ProxyShared,
) {
    let _ = src.set_read_timeout(Some(Duration::from_millis(25)));
    let mut chunk = [0u8; 4096];
    loop {
        if !shared.running.load(Ordering::SeqCst) {
            return;
        }
        let n = match src.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        };
        // Per-direction stall: bytes wait, nothing is lost.
        loop {
            let until = *shared.stall_slot(dir).lock();
            match until {
                Some(t) if Instant::now() < t && shared.running.load(Ordering::SeqCst) => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                _ => break,
            }
        }
        // Added latency.
        let latency = shared.latency_micros.load(Ordering::SeqCst);
        if latency > 0 {
            std::thread::sleep(Duration::from_micros(latency));
        }
        // Seeded truncation: forward half the chunk, then kill the
        // connection under the peer.
        let permille = shared.truncate_permille.load(Ordering::SeqCst);
        if permille > 0 && rng.chance_permille(permille) {
            let _ = dst.write_all(&chunk[..n / 2]);
            shared.truncations.fetch_add(1, Ordering::Relaxed);
            shared.deregister(conn);
            return;
        }
        if dst.write_all(&chunk[..n]).is_err() {
            return;
        }
        shared
            .bytes_forwarded
            .fetch_add(n as u64, Ordering::Relaxed);
    }
}
