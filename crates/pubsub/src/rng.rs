//! Tiny deterministic PRNG shared by the fault-tolerance layer.
//!
//! The client's reconnect jitter and the chaos proxy's fault decisions
//! both need randomness that is (a) dependency-free and (b) exactly
//! reproducible from a seed, so a failing chaos run can be replayed.
//! SplitMix64 is the standard pick: 64 bits of state, passes BigCrush,
//! and trivially forkable by seeding a child from the parent's output.

/// SplitMix64 (Steele, Lea & Flood 2014).
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator whose whole future is determined by `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// A generator seeded from OS-level entropy (via the std hasher's
    /// per-process random keys), for callers that did not ask for
    /// reproducibility.
    pub fn from_entropy() -> SplitMix64 {
        use std::hash::{BuildHasher, Hasher};
        let mut h = std::collections::hash_map::RandomState::new().build_hasher();
        h.write_u64(std::process::id() as u64);
        SplitMix64::new(h.finish())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n > 0` required.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Modulo bias is irrelevant for jitter and fault dice.
        self.next_u64() % n
    }

    /// Bernoulli trial with probability `permille / 1000`.
    pub fn chance_permille(&mut self, permille: u64) -> bool {
        self.next_below(1000) < permille.min(1000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounds_are_respected() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
    }
}
