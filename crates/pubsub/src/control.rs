//! Control frames of the routed TCP tier (§IV of the paper).
//!
//! Dynamoth's lazy reconfiguration needs two in-band notifications, both
//! carried as ordinary publications so the brokers stay unmodified:
//!
//! - **`<switch to H>`** ([`ControlFrame::Switch`]): published by the
//!   *old* broker's dispatcher sidecar on the migrated channel itself,
//!   telling the channel's still-connected local subscribers where the
//!   channel now lives.
//! - **`MOVED`** ([`ControlFrame::Moved`]): published on the stale
//!   *publisher's* private control channel (derived from the wire-id
//!   origin of the wrong-server publication it just sent), telling it to
//!   update its local plan. This is the Redis-Cluster-style wrong-server
//!   reply, done over pub/sub because the broker cannot speak for us.
//!
//! Frames are a line-oriented text format prefixed with `DMCTL1;`;
//! anything that does not parse is treated as application payload and
//! delivered untouched, so applications whose payloads merely resemble
//! control frames lose nothing.

use crate::channel::Channel;
use crate::ids::{PlanId, ServerId};
use crate::load::BrokerLoadReport;
use crate::plan::ChannelMapping;

const MAGIC: &str = "DMCTL1";
const REPORT_MAGIC: &str = "DMLLA1";
const INSTALL_MAGIC: &str = "DMINST1";

/// Derives the plan/ring key of a channel *name*. Stable across
/// processes (FNV-1a), so every router and sidecar agrees on the key —
/// the routed tier addresses channels by name on the wire and by
/// [`Channel`] in plans. A hash collision merely co-locates two names on
/// the same servers; it cannot misdeliver because brokers match full
/// names.
pub fn channel_id_of(name: &str) -> Channel {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Channel(h)
}

/// The private control channel of the client with wire-id `origin`.
/// Sidecars publish [`ControlFrame::Moved`] here; the routed client
/// subscribes to it on every broker it connects to.
pub fn control_channel(origin: u64) -> String {
    format!("__dmc.{origin:016x}")
}

/// `true` if `name` is a control channel (these never route through
/// plans and are invisible to application traffic accounting).
pub fn is_control_channel(name: &str) -> bool {
    name.starts_with("__dmc.")
}

/// The channel on which broker `broker` (by directory index) publishes
/// its periodic [`BrokerLoadReport`]s; the live balancer subscribes to
/// it directly on that broker.
pub fn lla_channel(broker: usize) -> String {
    format!("__dmc.lla.{broker:04x}")
}

/// The channel on which broker `broker`'s dispatcher sidecar receives
/// plan-delta installs ([`InstallFrame`]) from the live balancer.
pub fn install_channel(broker: usize) -> String {
    format!("__dmc.inst.{broker:04x}")
}

/// A broker the balancer has declared dead, together with the death
/// count ("incarnation") it is on. Control and install frames carry the
/// current quarantine list so routers learn about whole-broker failures
/// from any surviving sidecar, without waiting for their own probes.
/// The incarnation lets receivers deduplicate death announcements: a
/// router acts on `(broker, incarnation)` at most once, and a later
/// re-report by the broker (it came back) starts a new incarnation with
/// a fresh sequence space — which is why cross-broker failover is a
/// [`GapReason::Failover`](crate::GapReason) gap, never a silent splice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Quarantine {
    /// Directory index of the dead broker.
    pub broker: usize,
    /// How many times it has been declared dead (starts at 1).
    pub incarnation: u64,
}

/// `-` when empty, else `broker.incarnation` (decimal.hex) joined by
/// commas: the quarantine field of `DMCTL1`/`DMINST1` frames.
fn encode_quarantine(list: &[Quarantine]) -> String {
    if list.is_empty() {
        return "-".to_owned();
    }
    let entries: Vec<String> = list
        .iter()
        .map(|q| format!("{}.{:x}", q.broker, q.incarnation))
        .collect();
    entries.join(",")
}

fn decode_quarantine(text: &str) -> Option<Vec<Quarantine>> {
    if text == "-" {
        return Some(Vec::new());
    }
    text.split(',')
        .map(|entry| {
            let (broker, incarnation) = entry.split_once('.')?;
            Some(Quarantine {
                broker: broker.parse().ok()?,
                incarnation: u64::from_str_radix(incarnation, 16).ok()?,
            })
        })
        .collect()
}

/// A reconfiguration notification (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// "This channel moved; re-point your subscription."
    Switch {
        /// The migrated channel's name.
        channel: String,
        /// Where it lives now.
        mapping: ChannelMapping,
        /// Version of the plan that moved it.
        plan: PlanId,
        /// Brokers currently believed dead (may be empty).
        quarantine: Vec<Quarantine>,
    },
    /// "You published to the wrong server; update your local plan."
    Moved {
        /// The migrated channel's name.
        channel: String,
        /// Where it lives now.
        mapping: ChannelMapping,
        /// Version of the plan that moved it.
        plan: PlanId,
        /// Brokers currently believed dead (may be empty).
        quarantine: Vec<Quarantine>,
    },
}

impl ControlFrame {
    /// The channel name the frame is about.
    pub fn channel(&self) -> &str {
        match self {
            ControlFrame::Switch { channel, .. } | ControlFrame::Moved { channel, .. } => channel,
        }
    }

    /// The new mapping it announces.
    pub fn mapping(&self) -> &ChannelMapping {
        match self {
            ControlFrame::Switch { mapping, .. } | ControlFrame::Moved { mapping, .. } => mapping,
        }
    }

    /// The plan version it carries.
    pub fn plan(&self) -> PlanId {
        match self {
            ControlFrame::Switch { plan, .. } | ControlFrame::Moved { plan, .. } => *plan,
        }
    }

    /// The quarantine list it carries (brokers believed dead).
    pub fn quarantine(&self) -> &[Quarantine] {
        match self {
            ControlFrame::Switch { quarantine, .. } | ControlFrame::Moved { quarantine, .. } => {
                quarantine
            }
        }
    }

    /// Serializes to payload bytes:
    /// `DMCTL1;<kind>;<plan:016x>;<mapping>;<quarantine>;<channel-name>`.
    /// The name comes last and unescaped — it may contain `;`.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, channel, mapping, plan, quarantine) = match self {
            ControlFrame::Switch {
                channel,
                mapping,
                plan,
                quarantine,
            } => ("switch", channel, mapping, plan, quarantine),
            ControlFrame::Moved {
                channel,
                mapping,
                plan,
                quarantine,
            } => ("moved", channel, mapping, plan, quarantine),
        };
        format!(
            "{MAGIC};{kind};{:016x};{};{};{channel}",
            plan.0,
            encode_mapping(mapping),
            encode_quarantine(quarantine)
        )
        .into_bytes()
    }

    /// Parses payload bytes; `None` for anything that is not a valid
    /// control frame (then it is application payload).
    pub fn decode(payload: &[u8]) -> Option<ControlFrame> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.splitn(6, ';');
        if parts.next()? != MAGIC {
            return None;
        }
        let kind = parts.next()?;
        let plan = PlanId(u64::from_str_radix(parts.next()?, 16).ok()?);
        let mapping = decode_mapping(parts.next()?)?;
        let quarantine = decode_quarantine(parts.next()?)?;
        let channel = parts.next()?.to_owned();
        match kind {
            "switch" => Some(ControlFrame::Switch {
                channel,
                mapping,
                plan,
                quarantine,
            }),
            "moved" => Some(ControlFrame::Moved {
                channel,
                mapping,
                plan,
                quarantine,
            }),
            _ => None,
        }
    }
}

/// Serializes a [`BrokerLoadReport`] for the `DMLLA1` report channel:
/// a header line `DMLLA1;<tick>;<egress>;<ingress>;<sent>;<nchannels>`
/// (all hex), then per channel one numeric line
/// `<namelen>;<pubs>;<dels>;<bytes-in>;<bytes-out>;<subs>` followed by
/// exactly `namelen` bytes of the raw channel name — a length prefix
/// instead of escaping, since names may contain `;` and `\n`.
pub fn encode_report(report: &BrokerLoadReport) -> Vec<u8> {
    let mut out = format!(
        "{REPORT_MAGIC};{:x};{:x};{:x};{:x};{:x}\n",
        report.tick,
        report.egress_bytes,
        report.ingress_bytes,
        report.sent_messages,
        report.channels.len()
    )
    .into_bytes();
    for (name, t) in &report.channels {
        out.extend_from_slice(
            format!(
                "{:x};{:x};{:x};{:x};{:x};{:x}\n",
                name.len(),
                t.publications,
                t.deliveries,
                t.bytes_in,
                t.bytes_out,
                t.subscribers
            )
            .as_bytes(),
        );
        out.extend_from_slice(name.as_bytes());
    }
    out
}

/// Parses a `DMLLA1` report payload; `None` for anything malformed.
pub fn decode_report(payload: &[u8]) -> Option<BrokerLoadReport> {
    fn take_line(rest: &mut &[u8]) -> Option<String> {
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let line = std::str::from_utf8(&rest[..nl]).ok()?.to_owned();
        *rest = &rest[nl + 1..];
        Some(line)
    }
    fn hex_fields<const N: usize>(line: &str) -> Option<[u64; N]> {
        let mut out = [0u64; N];
        let mut parts = line.split(';');
        for slot in &mut out {
            *slot = u64::from_str_radix(parts.next()?, 16).ok()?;
        }
        parts.next().is_none().then_some(out)
    }

    let mut rest = payload;
    let header = take_line(&mut rest)?;
    let header = header.strip_prefix(REPORT_MAGIC)?.strip_prefix(';')?;
    let [tick, egress_bytes, ingress_bytes, sent_messages, nchannels] = hex_fields(header)?;
    let mut channels = Vec::with_capacity(nchannels.min(4096) as usize);
    for _ in 0..nchannels {
        let line = take_line(&mut rest)?;
        let [namelen, publications, deliveries, bytes_in, bytes_out, subscribers] =
            hex_fields(&line)?;
        let namelen = namelen as usize;
        if rest.len() < namelen {
            return None;
        }
        let name = std::str::from_utf8(&rest[..namelen]).ok()?.to_owned();
        rest = &rest[namelen..];
        channels.push((
            name,
            crate::balance::metrics::ChannelTick {
                publications,
                deliveries,
                bytes_in,
                bytes_out,
                publishers: 0,
                subscribers: u32::try_from(subscribers).ok()?,
            },
        ));
    }
    rest.is_empty().then_some(BrokerLoadReport {
        tick,
        egress_bytes,
        ingress_bytes,
        sent_messages,
        channels,
    })
}

/// One plan delta pushed by the live balancer to a dispatcher sidecar's
/// install channel: "channel `channel` moves from `old` to `new` under
/// plan version `plan`". The sidecar turns it into the same
/// dual-mapping forwarding window a local
/// [`DispatcherSidecar::install`](crate::DispatcherSidecar::install)
/// call would.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallFrame {
    /// Version of the plan that performs the move.
    pub plan: PlanId,
    /// The migrating channel's name.
    pub channel: String,
    /// Mapping before the move.
    pub old: ChannelMapping,
    /// Mapping after the move.
    pub new: ChannelMapping,
    /// Brokers believed dead when the plan was computed. Non-empty
    /// marks this as an **emergency failover install**: every surviving
    /// sidecar applies it (not just those in `old`/`new`), so stray
    /// publications land on a broker that knows where to forward them.
    pub quarantine: Vec<Quarantine>,
}

impl InstallFrame {
    /// Serializes to payload bytes:
    /// `DMINST1;<plan:016x>;<old-mapping>;<new-mapping>;<quarantine>;<channel-name>`
    /// (name last and unescaped, like [`ControlFrame::encode`]).
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "{INSTALL_MAGIC};{:016x};{};{};{};{}",
            self.plan.0,
            encode_mapping(&self.old),
            encode_mapping(&self.new),
            encode_quarantine(&self.quarantine),
            self.channel
        )
        .into_bytes()
    }

    /// Parses payload bytes; `None` for anything that is not a valid
    /// install frame.
    pub fn decode(payload: &[u8]) -> Option<InstallFrame> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.splitn(6, ';');
        if parts.next()? != INSTALL_MAGIC {
            return None;
        }
        let plan = PlanId(u64::from_str_radix(parts.next()?, 16).ok()?);
        let old = decode_mapping(parts.next()?)?;
        let new = decode_mapping(parts.next()?)?;
        let quarantine = decode_quarantine(parts.next()?)?;
        let channel = parts.next()?.to_owned();
        Some(InstallFrame {
            plan,
            channel,
            old,
            new,
            quarantine,
        })
    }
}

/// `single:3`, `allsub:1,2` or `allpub:0,2` — servers by directory
/// index.
fn encode_mapping(mapping: &ChannelMapping) -> String {
    let (mode, servers) = match mapping {
        ChannelMapping::Single(s) => return format!("single:{}", s.index()),
        ChannelMapping::AllSubscribers(v) => ("allsub", v),
        ChannelMapping::AllPublishers(v) => ("allpub", v),
    };
    let idxs: Vec<String> = servers.iter().map(|s| s.index().to_string()).collect();
    format!("{mode}:{}", idxs.join(","))
}

/// Rejects degenerate replicated mappings (`allsub:`/`allpub:` with
/// fewer than two members) so a corrupt or hostile control frame can
/// never smuggle an empty member list into a [`Plan`] — downstream
/// routing treats such mappings as unroutable rather than panicking,
/// but they should not be constructible over the wire at all.
fn decode_mapping(text: &str) -> Option<ChannelMapping> {
    let (mode, rest) = text.split_once(':')?;
    let servers: Option<Vec<ServerId>> = rest
        .split(',')
        .map(|i| i.parse::<usize>().ok().map(ServerId::from_index))
        .collect();
    let servers = servers?;
    match (mode, servers.len()) {
        ("single", 1) => Some(ChannelMapping::Single(servers[0])),
        ("allsub", n) if n >= 2 => Some(ChannelMapping::AllSubscribers(servers)),
        ("allpub", n) if n >= 2 => Some(ChannelMapping::AllPublishers(servers)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> ServerId {
        ServerId::from_index(i)
    }

    #[test]
    fn decode_rejects_empty_and_singleton_replicated_mappings() {
        // A hostile DMCTL1/DMINST1 frame with an empty member list must
        // die at the decoder, long before Plan::try_set or routing.
        for bad in [
            "allsub:",
            "allpub:",
            "allsub:1",
            "allpub:0",
            "single:",
            "single:1,2",
        ] {
            assert_eq!(decode_mapping(bad), None, "{bad:?} should not decode");
        }
        for (frame, label) in [
            (
                b"DMCTL1;switch;0000000000000001;allsub:;-;c".as_slice(),
                "switch",
            ),
            (
                b"DMCTL1;moved;0000000000000001;allpub:;-;c".as_slice(),
                "moved",
            ),
            (
                b"DMINST1;0000000000000002;allsub:;single:0;-;c".as_slice(),
                "install-old",
            ),
            (
                b"DMINST1;0000000000000002;single:0;allpub:;-;c".as_slice(),
                "install-new",
            ),
        ] {
            assert!(
                ControlFrame::decode(frame).is_none() && InstallFrame::decode(frame).is_none(),
                "{label} frame with empty mapping should not decode"
            );
        }
    }

    #[test]
    fn frames_roundtrip() {
        let frames = [
            ControlFrame::Switch {
                channel: "tile_3_4".into(),
                mapping: ChannelMapping::Single(s(2)),
                plan: PlanId(7),
                quarantine: Vec::new(),
            },
            ControlFrame::Moved {
                channel: "weird;name;with;semicolons".into(),
                mapping: ChannelMapping::AllSubscribers(vec![s(0), s(2)]),
                plan: PlanId(u64::MAX),
                quarantine: vec![Quarantine {
                    broker: 3,
                    incarnation: 0x1f,
                }],
            },
            ControlFrame::Switch {
                channel: "fan_in".into(),
                mapping: ChannelMapping::AllPublishers(vec![s(1), s(2), s(3)]),
                plan: PlanId(0),
                quarantine: vec![
                    Quarantine {
                        broker: 0,
                        incarnation: 1,
                    },
                    Quarantine {
                        broker: 7,
                        incarnation: 2,
                    },
                ],
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(ControlFrame::decode(&bytes), Some(frame));
        }
    }

    #[test]
    fn junk_is_not_a_frame() {
        for junk in [
            &b"hello"[..],
            b"",
            b"DMCTL1;",
            b"DMCTL1;switch;zz;single:0;-;c",
            b"DMCTL1;switch;0000000000000007;single:x;-;c",
            b"DMCTL1;bogus;0000000000000007;single:0;-;c",
            b"DMCTL2;switch;0000000000000007;single:0;-;c",
            // Degenerate replicated mappings are rejected, preserving
            // the plan invariant on the wire.
            b"DMCTL1;switch;0000000000000007;allsub:1;-;c",
            // Malformed or missing quarantine field (the old five-field
            // format lands here and is rejected, not misread).
            b"DMCTL1;switch;0000000000000007;single:0;c",
            b"DMCTL1;switch;0000000000000007;single:0;3;c",
            b"DMCTL1;switch;0000000000000007;single:0;x.y;c",
            b"DMCTL1;switch;0000000000000007;single:0;,;c",
            &[0xff, 0xfe, 0x00][..],
        ] {
            assert_eq!(ControlFrame::decode(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn quarantine_field_roundtrips() {
        for list in [
            Vec::new(),
            vec![Quarantine {
                broker: 0,
                incarnation: 1,
            }],
            vec![
                Quarantine {
                    broker: 12,
                    incarnation: 0xdead,
                },
                Quarantine {
                    broker: 3,
                    incarnation: 1,
                },
            ],
        ] {
            let text = encode_quarantine(&list);
            assert_eq!(decode_quarantine(&text), Some(list), "{text:?}");
        }
        for bad in ["", "3", "3.", ".1", "a.b", "1.1,", "-,-"] {
            assert_eq!(decode_quarantine(bad), None, "{bad:?} should not decode");
        }
    }

    #[test]
    fn channel_ids_are_stable_and_name_sensitive() {
        assert_eq!(channel_id_of("tile_1"), channel_id_of("tile_1"));
        assert_ne!(channel_id_of("tile_1"), channel_id_of("tile_2"));
        // Pinned value: routers and sidecars in different processes must
        // agree forever.
        assert_eq!(channel_id_of(""), Channel(0xcbf2_9ce4_8422_2325));
    }

    #[test]
    fn control_channel_names() {
        assert_eq!(control_channel(0xAB), "__dmc.00000000000000ab");
        assert!(is_control_channel(&control_channel(7)));
        assert!(!is_control_channel("tile_7"));
        assert!(is_control_channel(&lla_channel(3)));
        assert!(is_control_channel(&install_channel(3)));
        assert_ne!(lla_channel(3), install_channel(3));
        assert_ne!(lla_channel(3), lla_channel(4));
    }

    #[test]
    fn load_reports_roundtrip() {
        use crate::balance::metrics::ChannelTick;
        let report = BrokerLoadReport {
            tick: 42,
            egress_bytes: 1 << 40,
            ingress_bytes: 12345,
            sent_messages: 678,
            channels: vec![
                (
                    "plain".into(),
                    ChannelTick {
                        publications: 3,
                        deliveries: 9,
                        bytes_in: 300,
                        bytes_out: 900,
                        publishers: 0,
                        subscribers: 3,
                    },
                ),
                (
                    "evil;name\nwith;delimiters".into(),
                    ChannelTick {
                        publications: 1,
                        deliveries: 0,
                        bytes_in: 7,
                        bytes_out: 0,
                        publishers: 0,
                        subscribers: 0,
                    },
                ),
            ],
        };
        assert_eq!(decode_report(&encode_report(&report)), Some(report));
        // Empty reports (idle broker heartbeat) work too.
        let idle = BrokerLoadReport {
            tick: 0,
            egress_bytes: 0,
            ingress_bytes: 0,
            sent_messages: 0,
            channels: Vec::new(),
        };
        assert_eq!(decode_report(&encode_report(&idle)), Some(idle));
    }

    #[test]
    fn junk_is_not_a_report() {
        for junk in [
            &b""[..],
            b"hello",
            b"DMLLA1;1;2;3;4;5",        // missing newline
            b"DMLLA1;1;2;3;4;1\n",      // promised channel missing
            b"DMLLA1;1;2;3;4;0\nextra", // trailing garbage
            b"DMLLA1;zz;2;3;4;0\n",
            b"DMCTL1;1;2;3;4;0\n",
            &[0xff, 0xfe, 0x0a][..],
        ] {
            assert_eq!(decode_report(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn install_frames_roundtrip() {
        let frame = InstallFrame {
            plan: PlanId(9),
            channel: "tile;with;semis".into(),
            old: ChannelMapping::Single(s(0)),
            new: ChannelMapping::AllSubscribers(vec![s(1), s(2)]),
            quarantine: vec![Quarantine {
                broker: 0,
                incarnation: 2,
            }],
        };
        let bytes = frame.encode();
        assert_eq!(InstallFrame::decode(&bytes), Some(frame));
        // An install frame is not a control frame and vice versa.
        assert_eq!(ControlFrame::decode(&bytes), None);
        let ctl = ControlFrame::Switch {
            channel: "c".into(),
            mapping: ChannelMapping::Single(s(1)),
            plan: PlanId(1),
            quarantine: Vec::new(),
        };
        assert_eq!(InstallFrame::decode(&ctl.encode()), None);
    }

    #[test]
    fn junk_is_not_an_install_frame() {
        for junk in [
            &b""[..],
            b"DMINST1;0000000000000001;single:0;-;c",
            b"DMINST1;0000000000000001;single:0;allsub:1;-;c",
            b"DMINST1;zz;single:0;single:1;-;c",
            // Old five-field format: no quarantine field.
            b"DMINST1;0000000000000001;single:0;single:1;c",
        ] {
            assert_eq!(InstallFrame::decode(junk), None, "{junk:?}");
        }
    }
}
