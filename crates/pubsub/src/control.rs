//! Control frames of the routed TCP tier (§IV of the paper).
//!
//! Dynamoth's lazy reconfiguration needs two in-band notifications, both
//! carried as ordinary publications so the brokers stay unmodified:
//!
//! - **`<switch to H>`** ([`ControlFrame::Switch`]): published by the
//!   *old* broker's dispatcher sidecar on the migrated channel itself,
//!   telling the channel's still-connected local subscribers where the
//!   channel now lives.
//! - **`MOVED`** ([`ControlFrame::Moved`]): published on the stale
//!   *publisher's* private control channel (derived from the wire-id
//!   origin of the wrong-server publication it just sent), telling it to
//!   update its local plan. This is the Redis-Cluster-style wrong-server
//!   reply, done over pub/sub because the broker cannot speak for us.
//!
//! Frames are a line-oriented text format prefixed with `DMCTL1;`;
//! anything that does not parse is treated as application payload and
//! delivered untouched, so applications whose payloads merely resemble
//! control frames lose nothing.

use crate::channel::Channel;
use crate::ids::{PlanId, ServerId};
use crate::plan::ChannelMapping;

const MAGIC: &str = "DMCTL1";

/// Derives the plan/ring key of a channel *name*. Stable across
/// processes (FNV-1a), so every router and sidecar agrees on the key —
/// the routed tier addresses channels by name on the wire and by
/// [`Channel`] in plans. A hash collision merely co-locates two names on
/// the same servers; it cannot misdeliver because brokers match full
/// names.
pub fn channel_id_of(name: &str) -> Channel {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Channel(h)
}

/// The private control channel of the client with wire-id `origin`.
/// Sidecars publish [`ControlFrame::Moved`] here; the routed client
/// subscribes to it on every broker it connects to.
pub fn control_channel(origin: u64) -> String {
    format!("__dmc.{origin:016x}")
}

/// `true` if `name` is a control channel (these never route through
/// plans and are invisible to application traffic accounting).
pub fn is_control_channel(name: &str) -> bool {
    name.starts_with("__dmc.")
}

/// A reconfiguration notification (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlFrame {
    /// "This channel moved; re-point your subscription."
    Switch {
        /// The migrated channel's name.
        channel: String,
        /// Where it lives now.
        mapping: ChannelMapping,
        /// Version of the plan that moved it.
        plan: PlanId,
    },
    /// "You published to the wrong server; update your local plan."
    Moved {
        /// The migrated channel's name.
        channel: String,
        /// Where it lives now.
        mapping: ChannelMapping,
        /// Version of the plan that moved it.
        plan: PlanId,
    },
}

impl ControlFrame {
    /// The channel name the frame is about.
    pub fn channel(&self) -> &str {
        match self {
            ControlFrame::Switch { channel, .. } | ControlFrame::Moved { channel, .. } => channel,
        }
    }

    /// The new mapping it announces.
    pub fn mapping(&self) -> &ChannelMapping {
        match self {
            ControlFrame::Switch { mapping, .. } | ControlFrame::Moved { mapping, .. } => mapping,
        }
    }

    /// The plan version it carries.
    pub fn plan(&self) -> PlanId {
        match self {
            ControlFrame::Switch { plan, .. } | ControlFrame::Moved { plan, .. } => *plan,
        }
    }

    /// Serializes to payload bytes:
    /// `DMCTL1;<kind>;<plan:016x>;<mapping>;<channel-name>`. The name
    /// comes last and unescaped — it may contain `;`.
    pub fn encode(&self) -> Vec<u8> {
        let (kind, channel, mapping, plan) = match self {
            ControlFrame::Switch {
                channel,
                mapping,
                plan,
            } => ("switch", channel, mapping, plan),
            ControlFrame::Moved {
                channel,
                mapping,
                plan,
            } => ("moved", channel, mapping, plan),
        };
        format!(
            "{MAGIC};{kind};{:016x};{};{channel}",
            plan.0,
            encode_mapping(mapping)
        )
        .into_bytes()
    }

    /// Parses payload bytes; `None` for anything that is not a valid
    /// control frame (then it is application payload).
    pub fn decode(payload: &[u8]) -> Option<ControlFrame> {
        let text = std::str::from_utf8(payload).ok()?;
        let mut parts = text.splitn(5, ';');
        if parts.next()? != MAGIC {
            return None;
        }
        let kind = parts.next()?;
        let plan = PlanId(u64::from_str_radix(parts.next()?, 16).ok()?);
        let mapping = decode_mapping(parts.next()?)?;
        let channel = parts.next()?.to_owned();
        match kind {
            "switch" => Some(ControlFrame::Switch {
                channel,
                mapping,
                plan,
            }),
            "moved" => Some(ControlFrame::Moved {
                channel,
                mapping,
                plan,
            }),
            _ => None,
        }
    }
}

/// `single:3`, `allsub:1,2` or `allpub:0,2` — servers by directory
/// index.
fn encode_mapping(mapping: &ChannelMapping) -> String {
    let (mode, servers) = match mapping {
        ChannelMapping::Single(s) => return format!("single:{}", s.index()),
        ChannelMapping::AllSubscribers(v) => ("allsub", v),
        ChannelMapping::AllPublishers(v) => ("allpub", v),
    };
    let idxs: Vec<String> = servers.iter().map(|s| s.index().to_string()).collect();
    format!("{mode}:{}", idxs.join(","))
}

fn decode_mapping(text: &str) -> Option<ChannelMapping> {
    let (mode, rest) = text.split_once(':')?;
    let servers: Option<Vec<ServerId>> = rest
        .split(',')
        .map(|i| i.parse::<usize>().ok().map(ServerId::from_index))
        .collect();
    let servers = servers?;
    match (mode, servers.len()) {
        ("single", 1) => Some(ChannelMapping::Single(servers[0])),
        ("allsub", n) if n >= 2 => Some(ChannelMapping::AllSubscribers(servers)),
        ("allpub", n) if n >= 2 => Some(ChannelMapping::AllPublishers(servers)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> ServerId {
        ServerId::from_index(i)
    }

    #[test]
    fn frames_roundtrip() {
        let frames = [
            ControlFrame::Switch {
                channel: "tile_3_4".into(),
                mapping: ChannelMapping::Single(s(2)),
                plan: PlanId(7),
            },
            ControlFrame::Moved {
                channel: "weird;name;with;semicolons".into(),
                mapping: ChannelMapping::AllSubscribers(vec![s(0), s(2)]),
                plan: PlanId(u64::MAX),
            },
            ControlFrame::Switch {
                channel: "fan_in".into(),
                mapping: ChannelMapping::AllPublishers(vec![s(1), s(2), s(3)]),
                plan: PlanId(0),
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(ControlFrame::decode(&bytes), Some(frame));
        }
    }

    #[test]
    fn junk_is_not_a_frame() {
        for junk in [
            &b"hello"[..],
            b"",
            b"DMCTL1;",
            b"DMCTL1;switch;zz;single:0;c",
            b"DMCTL1;switch;0000000000000007;single:x;c",
            b"DMCTL1;bogus;0000000000000007;single:0;c",
            b"DMCTL2;switch;0000000000000007;single:0;c",
            // Degenerate replicated mappings are rejected, preserving
            // the plan invariant on the wire.
            b"DMCTL1;switch;0000000000000007;allsub:1;c",
            &[0xff, 0xfe, 0x00][..],
        ] {
            assert_eq!(ControlFrame::decode(junk), None, "{junk:?}");
        }
    }

    #[test]
    fn channel_ids_are_stable_and_name_sensitive() {
        assert_eq!(channel_id_of("tile_1"), channel_id_of("tile_1"));
        assert_ne!(channel_id_of("tile_1"), channel_id_of("tile_2"));
        // Pinned value: routers and sidecars in different processes must
        // agree forever.
        assert_eq!(channel_id_of(""), Channel(0xcbf2_9ce4_8422_2325));
    }

    #[test]
    fn control_channel_names() {
        assert_eq!(control_channel(0xAB), "__dmc.00000000000000ab");
        assert!(is_control_channel(&control_channel(7)));
        assert!(!is_control_channel("tile_7"));
    }
}
