//! Plans: the channel → server lookup structure at the heart of
//! Dynamoth (§II-A).
//!
//! A [`Plan`] is "a more elaborate version of a lookup table where the
//! keys are the channels and the values are the list of servers that
//! should be used for each channel". Channels a plan does not mention
//! resolve through consistent hashing ([`Ring`]). A channel's value is a
//! [`ChannelMapping`]: a single server in the common case, or a set of
//! servers under one of the two replication schemes of §II-B.
//!
//! One implementation serves both tiers: the simulator
//! (`dynamoth-core`) and the routed TCP tier ([`crate::router`]).

use std::collections::HashMap;

use dynamoth_sim::SimRng;

use crate::channel::Channel as ChannelId;
use crate::hashing::Ring;
use crate::ids::{PlanId, ServerId};

/// How a channel is mapped onto pub/sub servers (Fig. 2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelMapping {
    /// The channel lives on exactly one server (Fig. 2a).
    Single(ServerId),
    /// *All-subscribers replication* (Fig. 2b): subscribers subscribe on
    /// **all** listed servers, publishers publish to **one** random
    /// server. Relevant for channels with very many publications.
    AllSubscribers(Vec<ServerId>),
    /// *All-publishers replication* (Fig. 2c): publishers publish to
    /// **all** listed servers, subscribers subscribe on **one** random
    /// server. Relevant for channels with very many subscribers.
    AllPublishers(Vec<ServerId>),
}

impl ChannelMapping {
    /// Every server participating in this mapping.
    pub fn servers(&self) -> &[ServerId] {
        match self {
            ChannelMapping::Single(s) => std::slice::from_ref(s),
            ChannelMapping::AllSubscribers(v) | ChannelMapping::AllPublishers(v) => v,
        }
    }

    /// `true` if `server` participates in this mapping.
    pub fn contains(&self, server: ServerId) -> bool {
        self.servers().contains(&server)
    }

    /// The servers a *publisher* must send a publication to. A
    /// replicated mapping with an empty server list (only constructible
    /// by hand — [`Plan::try_set`] and the control-frame decoder both
    /// reject them) yields no targets instead of panicking.
    pub fn publish_targets(&self, rng: &mut SimRng) -> Vec<ServerId> {
        match self {
            ChannelMapping::Single(s) => vec![*s],
            ChannelMapping::AllSubscribers(v) => {
                rng.choose(v).map(|s| vec![*s]).unwrap_or_default()
            }
            ChannelMapping::AllPublishers(v) => v.clone(),
        }
    }

    /// The servers a *subscriber* must hold subscriptions on. Like
    /// [`Self::publish_targets`], an empty replicated mapping yields no
    /// targets.
    pub fn subscribe_targets(&self, rng: &mut SimRng) -> Vec<ServerId> {
        match self {
            ChannelMapping::Single(s) => vec![*s],
            ChannelMapping::AllSubscribers(v) => v.clone(),
            ChannelMapping::AllPublishers(v) => rng.choose(v).map(|s| vec![*s]).unwrap_or_default(),
        }
    }

    /// Number of servers in the mapping.
    pub fn replication_factor(&self) -> usize {
        self.servers().len()
    }

    /// `true` if the mapping uses one of the replication schemes.
    pub fn is_replicated(&self) -> bool {
        !matches!(self, ChannelMapping::Single(_))
    }
}

/// Why a mapping was rejected by [`Plan::try_set`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanError {
    /// A replicated mapping listed fewer than two servers. Replication
    /// over zero or one server is degenerate — and the zero case, fed
    /// from a corrupt or hostile `DMCTL1`/`DMINST1` frame, used to
    /// reach `publish_targets` and panic the routing thread.
    DegenerateReplication {
        /// How many members the rejected mapping had.
        members: usize,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::DegenerateReplication { members } => write!(
                f,
                "replicated mappings need at least two servers (got {members})"
            ),
        }
    }
}

impl std::error::Error for PlanError {}

/// A global plan: channel mappings plus a version number.
///
/// # Examples
///
/// ```
/// use dynamoth_pubsub::{Channel, ChannelMapping, Plan, Ring, ServerId};
///
/// let s0 = ServerId::from_index(0);
/// let s1 = ServerId::from_index(1);
/// let ring = Ring::new(&[s0], 16);
///
/// let mut plan = Plan::bootstrap();
/// plan.set(Channel(1), ChannelMapping::Single(s1));
/// // Mapped channels resolve explicitly, everything else via the ring.
/// assert_eq!(plan.resolve(Channel(1), &ring), ChannelMapping::Single(s1));
/// assert_eq!(plan.resolve(Channel(2), &ring), ChannelMapping::Single(s0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Plan {
    id: PlanId,
    entries: HashMap<ChannelId, ChannelMapping>,
}

impl Plan {
    /// "Plan 0": no explicit mappings, everything resolves through
    /// consistent hashing.
    pub fn bootstrap() -> Self {
        Plan::default()
    }

    /// This plan's version.
    pub fn id(&self) -> PlanId {
        self.id
    }

    /// Sets the version (the load balancer bumps it on every new plan).
    pub fn set_id(&mut self, id: PlanId) {
        self.id = id;
    }

    /// The explicit mapping for `channel`, if any.
    pub fn mapping(&self, channel: ChannelId) -> Option<&ChannelMapping> {
        self.entries.get(&channel)
    }

    /// Resolves `channel` to a mapping, falling back to the consistent
    /// hashing `ring` when the plan has no entry (§II-C).
    pub fn resolve(&self, channel: ChannelId, ring: &Ring) -> ChannelMapping {
        self.resolve_excluding(channel, ring, &[])
    }

    /// Like [`Self::resolve`], but the ring fallback skips the servers
    /// in `excluded` (the balancer's quarantine set): an unmapped
    /// channel whose ring home is a dead broker resolves to the first
    /// healthy server on its walk — the same survivor routers pick via
    /// [`Ring::server_for_excluding`] — instead of to the corpse.
    /// Explicit plan entries are returned as-is (a plan that names a
    /// quarantined broker is repaired by the emergency replan, not
    /// rewritten here). When every server is excluded the fallback
    /// degrades to the plain ring home.
    pub fn resolve_excluding(
        &self,
        channel: ChannelId,
        ring: &Ring,
        excluded: &[ServerId],
    ) -> ChannelMapping {
        self.entries.get(&channel).cloned().unwrap_or_else(|| {
            ChannelMapping::Single(
                ring.server_for_excluding(channel, excluded)
                    .unwrap_or_else(|| ring.server_for(channel)),
            )
        })
    }

    /// Inserts or replaces the mapping for `channel`, rejecting
    /// degenerate replicated mappings (fewer than two servers). This is
    /// the constructor for mappings of untrusted provenance — control
    /// frames, configuration files.
    ///
    /// # Errors
    ///
    /// Returns [`PlanError::DegenerateReplication`] when a replicated
    /// mapping lists fewer than two servers; the plan is unchanged.
    pub fn try_set(
        &mut self,
        channel: ChannelId,
        mapping: ChannelMapping,
    ) -> Result<(), PlanError> {
        if mapping.is_replicated() && mapping.replication_factor() < 2 {
            return Err(PlanError::DegenerateReplication {
                members: mapping.replication_factor(),
            });
        }
        self.entries.insert(channel, mapping);
        Ok(())
    }

    /// Inserts or replaces the mapping for `channel`.
    ///
    /// # Panics
    ///
    /// Panics if a replicated mapping has an empty or single-element
    /// server list (replication requires at least two servers). Use
    /// [`Self::try_set`] for mappings of untrusted provenance.
    pub fn set(&mut self, channel: ChannelId, mapping: ChannelMapping) {
        self.try_set(channel, mapping)
            .expect("replicated mappings need at least two servers");
    }

    /// Removes the explicit mapping for `channel`, reverting it to
    /// consistent hashing.
    pub fn unset(&mut self, channel: ChannelId) -> Option<ChannelMapping> {
        self.entries.remove(&channel)
    }

    /// Migrates `channel` from server `from` to server `to` (paper
    /// Algorithm 2, line 12). For replicated mappings the member `from`
    /// is replaced by `to`; if `to` is already a member, `from` is
    /// simply dropped, and a replicated mapping left with a single
    /// member collapses to [`ChannelMapping::Single`].
    ///
    /// An unmapped channel is pinned to `to` only when `from` is its
    /// ring home — a migration away from a server that does not serve
    /// the channel is a no-op.
    pub fn migrate(&mut self, channel: ChannelId, from: ServerId, to: ServerId, ring: &Ring) {
        self.migrate_excluding(channel, from, to, ring, &[]);
    }

    /// Like [`Self::migrate`], but the unmapped-channel ownership gate
    /// honors the `excluded` (quarantined) set: with broker Q dead, an
    /// unmapped channel ring-homed on Q actually lives on the first
    /// healthy walk server — so a migration away from *that* server
    /// must pin the channel, and the plain-ring gate must not. Without
    /// this, the high-load rebalancer's migrations of such channels
    /// silently no-op and the load never moves.
    pub fn migrate_excluding(
        &mut self,
        channel: ChannelId,
        from: ServerId,
        to: ServerId,
        ring: &Ring,
        excluded: &[ServerId],
    ) {
        if let Some(mapping) = self.entries.get_mut(&channel) {
            match mapping {
                ChannelMapping::Single(s) => {
                    if *s == from {
                        *s = to;
                    }
                }
                ChannelMapping::AllSubscribers(v) | ChannelMapping::AllPublishers(v) => {
                    if v.contains(&to) {
                        if v.len() > 1 {
                            v.retain(|&s| s != from);
                        }
                    } else if let Some(slot) = v.iter_mut().find(|s| **s == from) {
                        *slot = to;
                    }
                }
            }
            if mapping.is_replicated() && mapping.replication_factor() == 1 {
                *mapping = ChannelMapping::Single(mapping.servers()[0]);
            }
            return;
        }
        let home = ring
            .server_for_excluding(channel, excluded)
            .unwrap_or_else(|| ring.server_for(channel));
        if home == from {
            self.entries.insert(channel, ChannelMapping::Single(to));
        }
    }

    /// Iterates over all explicit entries.
    pub fn iter(&self) -> impl Iterator<Item = (ChannelId, &ChannelMapping)> + '_ {
        self.entries.iter().map(|(&c, m)| (c, m))
    }

    /// Channels whose mapping differs between `self` (old) and `new`.
    /// Channels only present in one plan are reported with the other
    /// side resolved through `ring`.
    pub fn diff<'a>(&'a self, new: &'a Plan, ring: &Ring) -> Vec<PlanChange> {
        self.diff_excluding(new, ring, &[])
    }

    /// [`Plan::diff`] with quarantine knowledge: ring-side resolution
    /// skips `excluded` servers, so the reported `old` mapping of a
    /// previously unmapped channel is its *effective* home — the broker
    /// whose sidecar must announce the switch — rather than a corpse no
    /// install can reach.
    pub fn diff_excluding<'a>(
        &'a self,
        new: &'a Plan,
        ring: &Ring,
        excluded: &[ServerId],
    ) -> Vec<PlanChange> {
        let mut changes = Vec::new();
        let mut seen: Vec<ChannelId> = Vec::new();
        for (c, old_mapping) in self.iter() {
            seen.push(c);
            let new_mapping = new.resolve_excluding(c, ring, excluded);
            if *old_mapping != new_mapping {
                changes.push(PlanChange {
                    channel: c,
                    old: old_mapping.clone(),
                    new: new_mapping,
                });
            }
        }
        for (c, new_mapping) in new.iter() {
            if seen.contains(&c) {
                continue;
            }
            let old_mapping = self.resolve_excluding(c, ring, excluded);
            if old_mapping != *new_mapping {
                changes.push(PlanChange {
                    channel: c,
                    old: old_mapping,
                    new: new_mapping.clone(),
                });
            }
        }
        changes
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the plan has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate wire size when pushed to a dispatcher.
    pub fn wire_size(&self) -> u32 {
        64 + 32 * self.entries.len() as u32
    }
}

/// One channel whose mapping changed between two plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChange {
    /// The affected channel.
    pub channel: ChannelId,
    /// Mapping under the old plan.
    pub old: ChannelMapping,
    /// Mapping under the new plan.
    pub new: ChannelMapping,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: usize) -> ServerId {
        ServerId::from_index(i)
    }

    fn ring() -> Ring {
        Ring::new(&[s(0), s(1)], 16)
    }

    /// The first channel the ring homes on `server`.
    fn homed_on(ring: &Ring, server: ServerId) -> ChannelId {
        (0..)
            .map(ChannelId)
            .find(|&c| ring.server_for(c) == server)
            .unwrap()
    }

    #[test]
    fn publish_and_subscribe_targets_per_mode() {
        let mut rng = SimRng::new(1);
        let single = ChannelMapping::Single(s(0));
        assert_eq!(single.publish_targets(&mut rng), vec![s(0)]);
        assert_eq!(single.subscribe_targets(&mut rng), vec![s(0)]);

        let all_subs = ChannelMapping::AllSubscribers(vec![s(0), s(1), s(2)]);
        assert_eq!(all_subs.subscribe_targets(&mut rng), vec![s(0), s(1), s(2)]);
        assert_eq!(all_subs.publish_targets(&mut rng).len(), 1);

        let all_pubs = ChannelMapping::AllPublishers(vec![s(0), s(1), s(2)]);
        assert_eq!(all_pubs.publish_targets(&mut rng), vec![s(0), s(1), s(2)]);
        assert_eq!(all_pubs.subscribe_targets(&mut rng).len(), 1);
    }

    #[test]
    fn random_target_covers_all_members() {
        let mut rng = SimRng::new(2);
        let all_subs = ChannelMapping::AllSubscribers(vec![s(0), s(1), s(2)]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            let t = all_subs.publish_targets(&mut rng)[0];
            seen[t.0.index()] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn resolve_falls_back_to_ring() {
        let plan = Plan::bootstrap();
        let r = ring();
        let m = plan.resolve(ChannelId(5), &r);
        assert_eq!(m, ChannelMapping::Single(r.server_for(ChannelId(5))));
    }

    #[test]
    fn set_and_unset() {
        let mut plan = Plan::bootstrap();
        plan.set(ChannelId(1), ChannelMapping::Single(s(3)));
        assert_eq!(
            plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::Single(s(3)))
        );
        assert_eq!(plan.len(), 1);
        plan.unset(ChannelId(1));
        assert!(plan.is_empty());
    }

    #[test]
    fn migrate_single() {
        let r = ring();
        let mut plan = Plan::bootstrap();
        plan.set(ChannelId(1), ChannelMapping::Single(s(0)));
        plan.migrate(ChannelId(1), s(0), s(1), &r);
        assert_eq!(
            plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::Single(s(1)))
        );
        // Migrating an unmapped channel away from its ring home pins it
        // to the target.
        let home = homed_on(&r, s(0));
        plan.migrate(home, s(0), s(3), &r);
        assert_eq!(plan.mapping(home), Some(&ChannelMapping::Single(s(3))));
    }

    #[test]
    fn migrate_unmapped_ignores_non_owner_source() {
        // Regression: migrating an unmapped channel used to pin it to
        // the target even when `from` never served it, hijacking
        // ring-resolved channels.
        let r = ring();
        let foreign = homed_on(&r, s(1));
        let mut plan = Plan::bootstrap();
        plan.migrate(foreign, s(0), s(3), &r);
        assert_eq!(plan.mapping(foreign), None);
        assert_eq!(plan.resolve(foreign, &r), ChannelMapping::Single(s(1)));
    }

    #[test]
    fn resolve_excluding_routes_unmapped_channels_around_the_dead() {
        // Regression: the plain `resolve` fallback homed fresh unmapped
        // channels on quarantined brokers until clients noticed.
        let plan = Plan::bootstrap();
        let r = ring();
        let victim = s(0);
        let chan = homed_on(&r, victim);
        assert_eq!(plan.resolve(chan, &r), ChannelMapping::Single(victim));
        assert_eq!(
            plan.resolve_excluding(chan, &r, &[victim]),
            ChannelMapping::Single(r.server_for_excluding(chan, &[victim]).unwrap())
        );
        // Explicit entries are returned untouched even when they name
        // an excluded server (the emergency replan repairs those).
        let mut pinned = Plan::bootstrap();
        pinned.set(chan, ChannelMapping::Single(victim));
        assert_eq!(
            pinned.resolve_excluding(chan, &r, &[victim]),
            ChannelMapping::Single(victim)
        );
        // All-excluded degrades to the plain ring home.
        assert_eq!(
            plan.resolve_excluding(chan, &r, &[s(0), s(1)]),
            ChannelMapping::Single(victim)
        );
    }

    #[test]
    fn migrate_excluding_gates_on_the_effective_home() {
        // With s0 quarantined, a channel ring-homed on s0 effectively
        // lives on s1; migrating it away *from s1* must pin it, and the
        // plain-ring gate (`from == s0's channel? no-op`) must not.
        let r = ring();
        let victim = s(0);
        let chan = homed_on(&r, victim);
        let survivor = r.server_for_excluding(chan, &[victim]).unwrap();
        let mut plan = Plan::bootstrap();
        plan.migrate_excluding(chan, survivor, s(3), &r, &[victim]);
        assert_eq!(plan.mapping(chan), Some(&ChannelMapping::Single(s(3))));
        // The stale plain-ring owner is no longer a valid source.
        let mut plan = Plan::bootstrap();
        plan.migrate_excluding(chan, victim, s(3), &r, &[victim]);
        assert_eq!(plan.mapping(chan), None);
    }

    #[test]
    fn migrate_missing_source_is_noop_for_mapped_channels() {
        let r = ring();
        let mut plan = Plan::bootstrap();
        plan.set(ChannelId(1), ChannelMapping::Single(s(1)));
        plan.migrate(ChannelId(1), s(0), s(3), &r);
        assert_eq!(
            plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::Single(s(1)))
        );
    }

    #[test]
    fn migrate_replicated_replaces_member() {
        let r = ring();
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(1),
            ChannelMapping::AllSubscribers(vec![s(0), s(1)]),
        );
        plan.migrate(ChannelId(1), s(0), s(2), &r);
        assert_eq!(
            plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::AllSubscribers(vec![s(2), s(1)]))
        );
    }

    #[test]
    fn migrate_onto_member_collapses_to_single() {
        // Regression: dropping `from` from a 2-member replicated set
        // used to leave a 1-member AllSubscribers/AllPublishers mapping,
        // violating the ≥2-server invariant `Plan::set` asserts.
        let r = ring();
        for replicated in [
            ChannelMapping::AllSubscribers(vec![s(2), s(1)]),
            ChannelMapping::AllPublishers(vec![s(2), s(1)]),
        ] {
            let mut plan = Plan::bootstrap();
            plan.set(ChannelId(1), replicated);
            plan.migrate(ChannelId(1), s(2), s(1), &r);
            assert_eq!(
                plan.mapping(ChannelId(1)),
                Some(&ChannelMapping::Single(s(1)))
            );
        }
    }

    #[test]
    fn migrate_onto_member_of_larger_set_stays_replicated() {
        let r = ring();
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(1),
            ChannelMapping::AllSubscribers(vec![s(0), s(1), s(2)]),
        );
        plan.migrate(ChannelId(1), s(0), s(2), &r);
        assert_eq!(
            plan.mapping(ChannelId(1)),
            Some(&ChannelMapping::AllSubscribers(vec![s(1), s(2)]))
        );
    }

    #[test]
    fn diff_reports_changed_channels() {
        let r = ring();
        let mut old = Plan::bootstrap();
        old.set(ChannelId(1), ChannelMapping::Single(s(0)));
        old.set(ChannelId(2), ChannelMapping::Single(s(0)));
        let mut new = old.clone();
        new.set(ChannelId(1), ChannelMapping::Single(s(1)));
        new.set(ChannelId(3), ChannelMapping::Single(s(5)));
        let mut changes = old.diff(&new, &r);
        changes.sort_by_key(|c| c.channel);
        // Channel 1 changed; channel 2 unchanged; channel 3 is new
        // (unless the ring already mapped it to s5, which it cannot —
        // s5 is not on the ring).
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].channel, ChannelId(1));
        assert_eq!(changes[0].old, ChannelMapping::Single(s(0)));
        assert_eq!(changes[0].new, ChannelMapping::Single(s(1)));
        assert_eq!(changes[1].channel, ChannelId(3));
    }

    #[test]
    fn diff_of_identical_plans_is_empty() {
        let r = ring();
        let mut plan = Plan::bootstrap();
        plan.set(
            ChannelId(1),
            ChannelMapping::AllPublishers(vec![s(0), s(1)]),
        );
        assert!(plan.diff(&plan.clone(), &r).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two servers")]
    fn replicated_mapping_with_one_server_panics() {
        let mut plan = Plan::bootstrap();
        plan.set(ChannelId(1), ChannelMapping::AllSubscribers(vec![s(0)]));
    }

    #[test]
    fn try_set_rejects_degenerate_replication_without_mutating() {
        let mut plan = Plan::bootstrap();
        for bad in [
            ChannelMapping::AllSubscribers(Vec::new()),
            ChannelMapping::AllPublishers(Vec::new()),
            ChannelMapping::AllSubscribers(vec![s(0)]),
            ChannelMapping::AllPublishers(vec![s(0)]),
        ] {
            let members = bad.replication_factor();
            assert_eq!(
                plan.try_set(ChannelId(1), bad),
                Err(PlanError::DegenerateReplication { members })
            );
        }
        assert!(plan.is_empty());
        assert!(plan
            .try_set(ChannelId(1), ChannelMapping::Single(s(0)))
            .is_ok());
        assert!(plan
            .try_set(
                ChannelId(2),
                ChannelMapping::AllSubscribers(vec![s(0), s(1)])
            )
            .is_ok());
    }

    #[test]
    fn empty_replicated_mappings_route_nowhere_instead_of_panicking() {
        // Reachable only through hand-built mappings (decode and
        // try_set both reject empties), but a hostile install must
        // degrade to zero targets, not kill the routing thread.
        let mut rng = SimRng::new(3);
        let empty_subs = ChannelMapping::AllSubscribers(Vec::new());
        let empty_pubs = ChannelMapping::AllPublishers(Vec::new());
        assert!(empty_subs.publish_targets(&mut rng).is_empty());
        assert!(empty_pubs.subscribe_targets(&mut rng).is_empty());
    }
}
