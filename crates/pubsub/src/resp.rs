//! RESP (REdis Serialization Protocol) codec for the pub/sub command
//! subset.
//!
//! The paper's brokers are unmodified Redis instances; this module
//! implements the RESP2 wire format for the commands Dynamoth uses
//! (`SUBSCRIBE`, `UNSUBSCRIBE`, `PUBLISH`, `PING`) and the pushes a
//! Redis server sends back (`subscribe`/`unsubscribe` confirmations and
//! `message` deliveries), so the [`TcpBroker`](crate::TcpBroker) speaks
//! the same protocol real Redis clients do.

use std::fmt;

/// A RESP2 protocol value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `+OK\r\n`
    Simple(String),
    /// `-ERR …\r\n`
    Error(String),
    /// `:42\r\n`
    Integer(i64),
    /// `$5\r\nhello\r\n` (`None` is the null bulk string `$-1\r\n`).
    Bulk(Option<Vec<u8>>),
    /// `*2\r\n…` (`None` is the null array `*-1\r\n`).
    Array(Option<Vec<Value>>),
}

impl Value {
    /// Convenience: a non-null bulk string from text.
    pub fn bulk(text: impl Into<Vec<u8>>) -> Value {
        Value::Bulk(Some(text.into()))
    }

    /// Convenience: a non-null array.
    pub fn array(items: Vec<Value>) -> Value {
        Value::Array(Some(items))
    }
}

/// Errors produced while decoding a RESP frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The first byte was not one of `+ - : $ *`.
    BadType(u8),
    /// A length or integer field did not parse.
    BadInteger,
    /// A frame violated the protocol (e.g. missing `\r\n`).
    Malformed,
    /// Arrays nested past [`MAX_DEPTH`] — a stack-overflow bomb from a
    /// hostile peer, rejected before recursion can hurt.
    TooDeep,
    /// A declared bulk/array length past [`MAX_BULK_LEN`] /
    /// [`MAX_ARRAY_LEN`] — a memory bomb, rejected before buffering.
    TooLarge,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadType(b) => write!(f, "unknown RESP type byte {b:#04x}"),
            DecodeError::BadInteger => write!(f, "invalid integer field"),
            DecodeError::Malformed => write!(f, "malformed RESP frame"),
            DecodeError::TooDeep => write!(f, "RESP arrays nested too deeply"),
            DecodeError::TooLarge => write!(f, "RESP length field exceeds limits"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends the encoding of `value` to `out`.
pub fn encode(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Simple(s) => {
            out.push(b'+');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Error(s) => {
            out.push(b'-');
            out.extend_from_slice(s.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Integer(i) => {
            out.push(b':');
            out.extend_from_slice(i.to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Value::Bulk(None) => out.extend_from_slice(b"$-1\r\n"),
        Value::Bulk(Some(data)) => {
            out.push(b'$');
            out.extend_from_slice(data.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            out.extend_from_slice(data);
            out.extend_from_slice(b"\r\n");
        }
        Value::Array(None) => out.extend_from_slice(b"*-1\r\n"),
        Value::Array(Some(items)) => {
            out.push(b'*');
            out.extend_from_slice(items.len().to_string().as_bytes());
            out.extend_from_slice(b"\r\n");
            for item in items {
                encode(item, out);
            }
        }
    }
}

fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..]
        .windows(2)
        .position(|w| w == b"\r\n")
        .map(|p| from + p)
}

fn parse_int(buf: &[u8]) -> Result<i64, DecodeError> {
    std::str::from_utf8(buf)
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or(DecodeError::BadInteger)
}

/// Deepest array nesting [`decode`] accepts. Nothing the broker speaks
/// nests past 2; a peer streaming `*1\r\n*1\r\n…` is attacking the
/// decoder's stack, not speaking RESP.
pub const MAX_DEPTH: usize = 32;

/// Largest bulk-string length [`decode`] accepts (64 MiB). A header
/// claiming more would make the broker buffer unbounded bytes for one
/// frame; real payloads are orders of magnitude smaller.
pub const MAX_BULK_LEN: usize = 64 * 1024 * 1024;

/// Largest array element count [`decode`] accepts.
pub const MAX_ARRAY_LEN: usize = 1 << 20;

/// Longest header line (between the type byte and its `\r\n`) before
/// the decoder gives up. Headers hold at most a 20-digit integer;
/// without this cap a CRLF-free stream makes every retry rescan the
/// whole buffer.
pub const MAX_LINE_LEN: usize = 64;

/// Decodes one RESP value from the front of `buf`.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete
/// frame (read more bytes and retry), or `Ok(Some((value, consumed)))`.
///
/// Hostile input is bounded: array nesting past [`MAX_DEPTH`], length
/// fields past [`MAX_BULK_LEN`] / [`MAX_ARRAY_LEN`] and header lines
/// past [`MAX_LINE_LEN`] are decode errors, never panics, unbounded
/// recursion or unbounded allocation.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the buffer contents cannot be valid
/// RESP no matter what bytes follow.
pub fn decode(buf: &[u8]) -> Result<Option<(Value, usize)>, DecodeError> {
    decode_at(buf, 0)
}

fn decode_at(buf: &[u8], depth: usize) -> Result<Option<(Value, usize)>, DecodeError> {
    if depth > MAX_DEPTH {
        return Err(DecodeError::TooDeep);
    }
    if buf.is_empty() {
        return Ok(None);
    }
    let Some(line_end) = find_crlf(buf, 1) else {
        // No CRLF yet: a header line longer than any valid one will
        // never become valid, so fail instead of rescanning forever.
        if buf.len() > 1 + MAX_LINE_LEN {
            return Err(DecodeError::Malformed);
        }
        return Ok(None);
    };
    let line = &buf[1..line_end];
    if line.len() > MAX_LINE_LEN {
        return Err(DecodeError::Malformed);
    }
    let after = line_end + 2;
    match buf[0] {
        b'+' => Ok(Some((
            Value::Simple(String::from_utf8_lossy(line).into_owned()),
            after,
        ))),
        b'-' => Ok(Some((
            Value::Error(String::from_utf8_lossy(line).into_owned()),
            after,
        ))),
        b':' => Ok(Some((Value::Integer(parse_int(line)?), after))),
        b'$' => {
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(Some((Value::Bulk(None), after)));
            }
            let len = usize::try_from(len).map_err(|_| DecodeError::TooLarge)?;
            if len > MAX_BULK_LEN {
                return Err(DecodeError::TooLarge);
            }
            if buf.len() < after + len + 2 {
                return Ok(None);
            }
            if &buf[after + len..after + len + 2] != b"\r\n" {
                return Err(DecodeError::Malformed);
            }
            Ok(Some((
                Value::Bulk(Some(buf[after..after + len].to_vec())),
                after + len + 2,
            )))
        }
        b'*' => {
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(Some((Value::Array(None), after)));
            }
            let len = usize::try_from(len).map_err(|_| DecodeError::TooLarge)?;
            if len > MAX_ARRAY_LEN {
                return Err(DecodeError::TooLarge);
            }
            // Capped preallocation: a header may claim far more
            // elements than the bytes behind it can hold.
            let mut items = Vec::with_capacity(len.min(64));
            let mut offset = after;
            for _ in 0..len {
                match decode_at(&buf[offset..], depth + 1)? {
                    Some((item, used)) => {
                        items.push(item);
                        offset += used;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Value::Array(Some(items)), offset)))
        }
        other => Err(DecodeError::BadType(other)),
    }
}

/// A parsed client command (the subset Dynamoth needs from Redis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `SUBSCRIBE channel [channel …]`
    Subscribe(Vec<String>),
    /// `UNSUBSCRIBE channel [channel …]`
    Unsubscribe(Vec<String>),
    /// `PUBLISH channel payload`
    Publish(String, Vec<u8>),
    /// `PING`
    Ping,
}

/// Interprets a decoded RESP value as a client command.
///
/// # Errors
///
/// Returns a human-readable error string (sent back as a RESP error)
/// when the value is not a recognized command.
pub fn parse_command(value: &Value) -> Result<Command, String> {
    let Value::Array(Some(items)) = value else {
        return Err("ERR protocol error: expected array".into());
    };
    let mut words = Vec::with_capacity(items.len());
    for item in items {
        match item {
            Value::Bulk(Some(data)) => words.push(data.clone()),
            _ => return Err("ERR protocol error: expected bulk string".into()),
        }
    }
    let Some((name, args)) = words.split_first() else {
        return Err("ERR empty command".into());
    };
    let name = String::from_utf8_lossy(name).to_ascii_uppercase();
    let text = |arg: &Vec<u8>| String::from_utf8_lossy(arg).into_owned();
    match name.as_str() {
        "PING" => Ok(Command::Ping),
        "SUBSCRIBE" if !args.is_empty() => Ok(Command::Subscribe(args.iter().map(text).collect())),
        "UNSUBSCRIBE" if !args.is_empty() => {
            Ok(Command::Unsubscribe(args.iter().map(text).collect()))
        }
        "PUBLISH" if args.len() == 2 => Ok(Command::Publish(text(&args[0]), args[1].clone())),
        "SUBSCRIBE" | "UNSUBSCRIBE" | "PUBLISH" => {
            Err(format!("ERR wrong number of arguments for '{name}'"))
        }
        _ => Err(format!("ERR unknown command '{name}'")),
    }
}

/// Builds the `message` push a subscriber receives for a publication.
pub fn message_push(channel: &str, payload: &[u8]) -> Value {
    Value::array(vec![
        Value::bulk("message"),
        Value::bulk(channel),
        Value::bulk(payload.to_vec()),
    ])
}

/// Builds the confirmation push for `SUBSCRIBE`/`UNSUBSCRIBE` (`kind`),
/// with the client's resulting subscription count.
pub fn subscription_push(kind: &str, channel: &str, count: i64) -> Value {
    Value::array(vec![
        Value::bulk(kind),
        Value::bulk(channel),
        Value::Integer(count),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let mut buf = Vec::new();
        encode(&v, &mut buf);
        let (decoded, used) = decode(&buf).unwrap().unwrap();
        assert_eq!(decoded, v);
        assert_eq!(used, buf.len());
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Value::Simple("OK".into()));
        roundtrip(Value::Error("ERR nope".into()));
        roundtrip(Value::Integer(-42));
        roundtrip(Value::bulk("hello"));
        roundtrip(Value::Bulk(Some(vec![0, 1, 2, 255])));
        roundtrip(Value::Bulk(None));
        roundtrip(Value::Array(None));
    }

    #[test]
    fn nested_array_roundtrips() {
        roundtrip(Value::array(vec![
            Value::bulk("message"),
            Value::array(vec![Value::Integer(1), Value::Simple("x".into())]),
            Value::Bulk(None),
        ]));
    }

    #[test]
    fn partial_frames_ask_for_more() {
        let mut buf = Vec::new();
        encode(&Value::bulk("hello world"), &mut buf);
        for cut in 0..buf.len() {
            assert_eq!(decode(&buf[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn pipelined_frames_decode_one_at_a_time() {
        let mut buf = Vec::new();
        encode(&Value::Integer(1), &mut buf);
        encode(&Value::Integer(2), &mut buf);
        let (first, used) = decode(&buf).unwrap().unwrap();
        assert_eq!(first, Value::Integer(1));
        let (second, used2) = decode(&buf[used..]).unwrap().unwrap();
        assert_eq!(second, Value::Integer(2));
        assert_eq!(used + used2, buf.len());
    }

    #[test]
    fn garbage_is_rejected() {
        assert_eq!(decode(b"xabc\r\n").unwrap_err(), DecodeError::BadType(b'x'));
        assert_eq!(decode(b":abc\r\n").unwrap_err(), DecodeError::BadInteger);
        // Bulk whose trailer is not CRLF.
        assert_eq!(decode(b"$2\r\nab!!").unwrap_err(), DecodeError::Malformed);
    }

    #[test]
    fn nesting_bombs_are_rejected_not_recursed() {
        // `*1\r\n` repeated: each level recurses once — unbounded, this
        // would overflow the decoder's stack (an abort, not a panic a
        // broker thread could contain).
        let mut buf = Vec::new();
        for _ in 0..10_000 {
            buf.extend_from_slice(b"*1\r\n");
        }
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::TooDeep);
        // At or under the cap, deep-but-legal frames still decode.
        let mut legal = Vec::new();
        for _ in 0..MAX_DEPTH {
            legal.extend_from_slice(b"*1\r\n");
        }
        legal.extend_from_slice(b":1\r\n");
        assert!(decode(&legal).unwrap().is_some());
    }

    #[test]
    fn length_bombs_are_rejected_before_allocation() {
        // Bulk header claiming 100 GiB: must error, not buffer forever.
        assert_eq!(
            decode(b"$107374182400\r\n").unwrap_err(),
            DecodeError::TooLarge
        );
        // Array header claiming ~1e15 elements: `with_capacity` on the
        // claimed size would abort on allocation failure.
        assert_eq!(
            decode(b"*999999999999999\r\n").unwrap_err(),
            DecodeError::TooLarge
        );
        // Negative-but-not-minus-one lengths are nonsense, not panics.
        assert_eq!(decode(b"$-2\r\n").unwrap().unwrap().0, Value::Bulk(None));
    }

    #[test]
    fn crlf_free_streams_fail_fast() {
        // A stream that never sends CRLF must stop being re-scanned
        // once it cannot be a valid header line.
        let junk = vec![b'a'; MAX_LINE_LEN + 2];
        let mut buf = vec![b'+'];
        buf.extend_from_slice(&junk);
        assert_eq!(decode(&buf).unwrap_err(), DecodeError::Malformed);
        // Short prefixes still just wait for more bytes.
        assert_eq!(decode(b"+abc").unwrap(), None);
    }

    #[test]
    fn commands_parse() {
        let cmd = Value::array(vec![
            Value::bulk("subscribe"),
            Value::bulk("tile_1"),
            Value::bulk("tile_2"),
        ]);
        assert_eq!(
            parse_command(&cmd).unwrap(),
            Command::Subscribe(vec!["tile_1".into(), "tile_2".into()])
        );
        let cmd = Value::array(vec![
            Value::bulk("PUBLISH"),
            Value::bulk("tile_1"),
            Value::bulk("payload"),
        ]);
        assert_eq!(
            parse_command(&cmd).unwrap(),
            Command::Publish("tile_1".into(), b"payload".to_vec())
        );
        assert_eq!(
            parse_command(&Value::array(vec![Value::bulk("ping")])).unwrap(),
            Command::Ping
        );
    }

    #[test]
    fn bad_commands_produce_errors() {
        assert!(parse_command(&Value::Integer(1)).is_err());
        assert!(parse_command(&Value::array(vec![])).is_err());
        assert!(parse_command(&Value::array(vec![Value::bulk("SUBSCRIBE")])).is_err());
        assert!(parse_command(&Value::array(vec![
            Value::bulk("PUBLISH"),
            Value::bulk("only-channel"),
        ]))
        .is_err());
        assert!(parse_command(&Value::array(vec![Value::bulk("GET"), Value::bulk("k")])).is_err());
    }

    #[test]
    fn pushes_have_redis_shape() {
        let mut buf = Vec::new();
        encode(&message_push("tile_1", b"hi"), &mut buf);
        assert_eq!(buf, b"*3\r\n$7\r\nmessage\r\n$6\r\ntile_1\r\n$2\r\nhi\r\n");
        let mut buf = Vec::new();
        encode(&subscription_push("subscribe", "tile_1", 1), &mut buf);
        assert_eq!(buf, b"*3\r\n$9\r\nsubscribe\r\n$6\r\ntile_1\r\n:1\r\n");
    }
}
