//! The broker's reactor core: N sharded non-blocking event loops.
//!
//! Each [`ReactorLoop`] is one OS thread owning one `epoll` instance
//! and a disjoint set of connections, pinned at accept time to the
//! least-loaded loop and never migrated. The loop does everything for
//! its connections — non-blocking reads feeding the RESP decoder with
//! a per-connection partial-frame buffer, command execution, and
//! draining outboxes with vectored writes on writability — so a broker
//! serves any number of connections on exactly `io_loops` threads
//! instead of two threads per connection.
//!
//! Cross-thread work reaches a loop through its **inbox**: a small
//! mutex-protected mailbox carrying connection handoffs (from the
//! accepting loop), flush requests (from publisher threads whose push
//! made an outbox go non-empty), and kill requests (overflow or
//! administrative kills originating on other threads). The inbox pairs
//! with an `eventfd` waker using an *asleep* flag so a sleeping loop is
//! woken with exactly one syscall per batch of work and an awake loop
//! is woken for free: the producer wakes only when it observed the
//! flag set, and clearing it on the first notification coalesces every
//! concurrent producer behind one wake.
//!
//! Publishes stay on the caller's thread: fan-out pushes frames
//! straight onto subscriber outboxes (see [`crate::shard`]) and only
//! the empty→non-empty edge tells the home loop to flush, so the hot
//! path crosses threads once per burst, not once per message.
//!
//! Time-based work — liveness deadlines for half-open connections —
//! rides a per-loop hashed [`TimerWheel`], keeping the idle cost of a
//! sleeping connection at one wheel entry, not a timer thread.
//!
//! Shutdown needs no self-connect trick: the broker flips `running`
//! and wakes every loop; each loop then drains its connections' queued
//! frames for up to the configured drain timeout before closing their
//! sockets and exiting.

use std::collections::{BTreeSet, HashMap};
use std::io::{self, ErrorKind, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mio::{Events, Interest, Poll, Token, Waker};
use parking_lot::Mutex;

use crate::broker::{encode_frame, handle_command, BrokerShared, ConnState};
use crate::outbox::{Flush, LoopIoStats, OutboxSender};
use crate::resp::{self, Value};
use crate::timer::TimerWheel;

/// Token of a loop's eventfd waker.
const WAKE: Token = Token(0);
/// Token of the listening socket (loop 0 only).
const LISTENER: Token = Token(1);
/// Connection ids map to tokens at this offset.
const TOKEN_BASE: usize = 2;

/// Per-readiness read budget: after this many bytes a connection yields
/// the loop so one firehose socket cannot starve its neighbours
/// (level-triggered epoll re-reports it on the next poll).
const READ_BUDGET: usize = 256 * 1024;
/// Timer wheel resolution; also the poll timeout while timers pend.
const TIMER_TICK: Duration = Duration::from_millis(50);
/// Poll timeout with no timers pending (pure backstop: all work
/// arrives via readiness events or the waker).
const IDLE_POLL: Duration = Duration::from_millis(250);

fn token_of(conn: u64) -> Token {
    Token(conn as usize + TOKEN_BASE)
}

/// Cross-thread work submitted to a loop, drained once per iteration.
struct Inbox {
    /// Accepted connections handed to this loop for registration.
    new_conns: Vec<(Arc<ConnState>, TcpStream)>,
    /// Connections whose outbox went non-empty and wants a flush.
    writable: Vec<u64>,
    /// Connections another thread killed; the loop owns the socket so
    /// only it can tear them down.
    kills: Vec<u64>,
    /// True while the loop is (about to be) blocked in `epoll_wait`
    /// with an empty inbox. Producers that observe it clear it and fire
    /// the waker — concurrent producers coalesce behind one syscall.
    asleep: bool,
}

impl Inbox {
    fn has_work(&self) -> bool {
        !self.new_conns.is_empty() || !self.writable.is_empty() || !self.kills.is_empty()
    }
}

/// The cross-thread face of one reactor loop.
pub(crate) struct LoopShared {
    /// This loop's I/O counters (frames, writes, bytes, wakeups).
    pub stats: LoopIoStats,
    /// Connections currently pinned to this loop (incremented at
    /// accept, so placement reacts to bursts before registration
    /// lands).
    pub conn_count: AtomicUsize,
    waker: Waker,
    inbox: Mutex<Inbox>,
}

/// Cloneable handle submitting work to one reactor loop.
#[derive(Clone)]
pub(crate) struct LoopHandle {
    shared: Arc<LoopShared>,
}

impl LoopHandle {
    /// Connections currently pinned to this loop.
    pub fn conn_count(&self) -> usize {
        self.shared.conn_count.load(Ordering::Relaxed)
    }

    /// This loop's I/O counters.
    pub fn stats(&self) -> &LoopIoStats {
        &self.shared.stats
    }

    fn notify(&self, f: impl FnOnce(&mut Inbox)) {
        let was_asleep = {
            let mut inbox = self.shared.inbox.lock();
            f(&mut inbox);
            std::mem::replace(&mut inbox.asleep, false)
        };
        if was_asleep {
            let _ = self.shared.waker.wake();
        }
    }

    /// Tells the loop that `conn`'s outbox went non-empty.
    pub fn schedule_write(&self, conn: u64) {
        self.notify(|i| i.writable.push(conn));
    }

    /// Tells the loop to tear down `conn` (killed by another thread).
    pub fn schedule_kill(&self, conn: u64) {
        self.notify(|i| i.kills.push(conn));
    }

    /// Hands an accepted connection to this loop for registration.
    pub fn submit_conn(&self, state: Arc<ConnState>, stream: TcpStream) {
        self.notify(|i| i.new_conns.push((state, stream)));
    }

    /// Wakes the loop with no work attached (shutdown: the loop
    /// re-checks `running` whenever it wakes).
    pub fn wake(&self) {
        self.notify(|_| {});
    }
}

/// Builds `n` pollers with their cross-thread handles. Split from
/// [`spawn`] so the broker can store every [`LoopHandle`] in its shared
/// state before the first loop thread starts.
pub(crate) fn build_loops(n: usize) -> std::io::Result<Vec<(Poll, LoopHandle)>> {
    (0..n)
        .map(|_| {
            let poll = Poll::new()?;
            let waker = Waker::new(poll.registry(), WAKE)?;
            let handle = LoopHandle {
                shared: Arc::new(LoopShared {
                    stats: LoopIoStats::default(),
                    conn_count: AtomicUsize::new(0),
                    waker,
                    inbox: Mutex::new(Inbox {
                        new_conns: Vec::new(),
                        writable: Vec::new(),
                        kills: Vec::new(),
                        asleep: false,
                    }),
                }),
            };
            Ok((poll, handle))
        })
        .collect()
}

/// Spawns reactor loop `idx` on its own thread. Loop 0 owns the
/// listening socket. Thread-spawn failure (resource exhaustion) is
/// returned to the caller instead of panicking so `bind` can fail
/// cleanly.
pub(crate) fn spawn(
    idx: usize,
    poll: Poll,
    handle: LoopHandle,
    shared: Arc<BrokerShared>,
    listener: Option<TcpListener>,
) -> io::Result<std::thread::JoinHandle<()>> {
    let rl = ReactorLoop {
        idx,
        poll,
        me: handle.shared,
        shared,
        listener,
        conns: HashMap::new(),
        wheel: TimerWheel::new(TIMER_TICK, 256),
    };
    std::thread::Builder::new()
        .name(format!("broker-io-{idx}"))
        .spawn(move || rl.run())
}

/// Loop-local per-connection state. The socket, read buffer and
/// readiness interest are owned by exactly one loop — no lock guards
/// them.
struct Conn {
    state: Arc<ConnState>,
    stream: TcpStream,
    /// Partial-frame buffer: bytes read but not yet forming a complete
    /// RESP frame.
    buf: Vec<u8>,
    /// Whether the connection is registered for write readiness
    /// (pending outbox bytes the socket would not take).
    want_write: bool,
    /// Last time the peer's socket produced bytes; drives the liveness
    /// deadline.
    last_rx: Instant,
}

/// Why a connection left the read path.
enum Close {
    /// Orderly peer close (`read` returned 0).
    Client,
    /// Socket read error.
    Read,
    /// Unparseable RESP frame.
    Protocol,
    /// `handle_command` asked for disconnection (e.g. the connection's
    /// own outbox overflowed under [`crate::OverflowPolicy::Kill`]).
    Command,
}

struct ReactorLoop {
    idx: usize,
    poll: Poll,
    me: Arc<LoopShared>,
    shared: Arc<BrokerShared>,
    listener: Option<TcpListener>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel,
}

impl ReactorLoop {
    fn run(mut self) {
        if let Some(l) = &self.listener {
            let _ = self
                .poll
                .registry()
                .register(l, LISTENER, Interest::READABLE);
        }
        let mut events = Events::with_capacity(1024);
        let mut expired: Vec<u64> = Vec::new();
        loop {
            // Arm: the running check and the asleep flag share the
            // inbox critical section, so a shutdown (store `running`,
            // then notify) either sees the flag and wakes us, or we see
            // `running == false` here — never a missed shutdown.
            let timeout = {
                let mut inbox = self.me.inbox.lock();
                if !self.shared.running.load(Ordering::SeqCst) {
                    break;
                }
                if inbox.has_work() {
                    Duration::ZERO
                } else {
                    inbox.asleep = true;
                    if self.wheel.len() > 0 {
                        self.wheel.tick()
                    } else {
                        IDLE_POLL
                    }
                }
            };
            let poll_result = self.poll.poll(&mut events, Some(timeout));
            self.me.inbox.lock().asleep = false;
            if poll_result.is_err() {
                // epoll itself failing is unrecoverable in kind but
                // transient errors shouldn't spin the CPU.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            let mut accept = false;
            for ev in events.iter() {
                match ev.token() {
                    WAKE => {
                        self.me.stats.wakeups.fetch_add(1, Ordering::Relaxed);
                    }
                    LISTENER => accept = true,
                    Token(t) => {
                        let conn = (t - TOKEN_BASE) as u64;
                        if ev.is_readable() {
                            self.service_read(conn);
                        }
                        if ev.is_writable() {
                            self.service_write(conn);
                        }
                    }
                }
            }
            if accept {
                self.accept_ready();
            }
            self.drain_inbox();
            self.expire_timers(&mut expired);
        }
        self.drain_and_close();
    }

    /// Accepts every pending connection (loop 0 only), pinning each to
    /// the currently least-loaded loop.
    fn accept_ready(&mut self) {
        loop {
            // Only loop 0 owns the listener; a stray accept-readiness
            // token on any other loop is ignored rather than a panic.
            let Some(listener) = self.listener.as_ref() else {
                return;
            };
            let accepted = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept errors (EMFILE, aborted handshake):
                // drop this readiness edge; epoll re-reports while
                // connections pend.
                Err(_) => break,
            };
            if accepted.set_nonblocking(true).is_err() {
                continue;
            }
            let _ = accepted.set_nodelay(true);
            self.shared
                .connections_accepted
                .fetch_add(1, Ordering::Relaxed);
            let conn = self.shared.next_conn.fetch_add(1, Ordering::Relaxed);
            // The loop list is never empty while this code runs (this
            // loop is on it); fall back to accepting onto this loop
            // rather than panicking if that invariant ever breaks.
            let (home_idx, home) = self
                .shared
                .loops
                .iter()
                .enumerate()
                .min_by_key(|(_, h)| h.conn_count())
                .map(|(i, h)| (i, h.clone()))
                .unwrap_or_else(|| {
                    (
                        self.idx,
                        LoopHandle {
                            shared: Arc::clone(&self.me),
                        },
                    )
                });
            home.shared.conn_count.fetch_add(1, Ordering::Relaxed);
            let notify_home = home.clone();
            let outbox = OutboxSender::new_with(
                self.shared.config.outbox_limit_bytes,
                self.shared.config.overflow_policy,
                Arc::clone(&self.shared.flush_counters),
                Some(Box::new(move || notify_home.schedule_write(conn))),
            );
            let state = Arc::new(ConnState {
                conn,
                dead: AtomicBool::new(false),
                outbox,
                channels: Mutex::new(BTreeSet::new()),
                home: home.clone(),
            });
            {
                let mut conns = self.shared.conns.lock();
                conns.insert(conn, Arc::clone(&state));
                self.shared
                    .peak_connections
                    .fetch_max(conns.len(), Ordering::Relaxed);
            }
            if home_idx == self.idx {
                self.register_conn(state, accepted);
            } else {
                home.submit_conn(state, accepted);
            }
        }
    }

    /// Registers a connection pinned to this loop. A kill that raced
    /// the handoff already marked the state dead — the connection is
    /// then discarded instead of registered (its registry entry was
    /// removed by the killer).
    fn register_conn(&mut self, state: Arc<ConnState>, stream: TcpStream) {
        let conn = state.conn;
        let dead_on_arrival = state.dead.load(Ordering::SeqCst)
            || self
                .poll
                .registry()
                .register(&stream, token_of(conn), Interest::READABLE)
                .is_err();
        if dead_on_arrival {
            self.shared.kill(&state, false);
            self.me.conn_count.fetch_sub(1, Ordering::Relaxed);
            return; // dropping `stream` closes the socket
        }
        let now = Instant::now();
        if let Some(liveness) = self.shared.config.liveness_timeout {
            self.wheel.schedule(conn, now + liveness);
        }
        self.conns.insert(
            conn,
            Conn {
                state,
                stream,
                buf: Vec::new(),
                want_write: false,
                last_rx: now,
            },
        );
    }

    /// Reads until the socket is dry (or the fairness budget is spent),
    /// executing every complete RESP frame.
    fn service_read(&mut self, conn: u64) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        c.last_rx = Instant::now();
        let mut read_total = 0usize;
        let mut chunk = [0u8; 16 * 1024];
        let close = 'read: loop {
            match c.stream.read(&mut chunk) {
                Ok(0) => break 'read Some(Close::Client),
                Ok(n) => {
                    c.buf.extend_from_slice(&chunk[..n]);
                    read_total += n;
                    // Process every complete frame in the buffer.
                    loop {
                        match resp::decode(&c.buf) {
                            Ok(Some((value, used))) => {
                                c.buf.drain(..used);
                                if !handle_command(&c.state, &value, &self.shared) {
                                    break 'read Some(Close::Command);
                                }
                            }
                            Ok(None) => break,
                            Err(_) => break 'read Some(Close::Protocol),
                        }
                    }
                    if read_total >= READ_BUDGET {
                        break 'read None;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break 'read None,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break 'read Some(Close::Read),
            }
        };
        match close {
            None => {}
            Some(Close::Client) => {
                self.shared.client_closes.fetch_add(1, Ordering::Relaxed);
                self.teardown(conn);
            }
            Some(Close::Read) => {
                self.shared.read_errors.fetch_add(1, Ordering::Relaxed);
                self.teardown(conn);
            }
            Some(Close::Protocol) => {
                self.shared.protocol_errors.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = self.conns.get(&conn) {
                    let _ = c
                        .state
                        .outbox
                        .push(encode_frame(&Value::Error("ERR protocol error".into())));
                }
                self.teardown(conn);
            }
            Some(Close::Command) => self.teardown(conn),
        }
    }

    /// Flushes a connection's outbox, tracking write-readiness interest
    /// from the outcome: `Pending` arms `EPOLLOUT`, `Drained` disarms
    /// it (a drained connection must not wake the loop every tick just
    /// because its socket stays writable).
    fn service_write(&mut self, conn: u64) {
        let outcome = {
            let Some(c) = self.conns.get_mut(&conn) else {
                return;
            };
            c.state.outbox.flush_to(&mut (&c.stream), &self.me.stats)
        };
        match outcome {
            Flush::Drained => self.set_want_write(conn, false),
            Flush::Pending => self.set_want_write(conn, true),
            Flush::Failed => {
                self.shared.read_errors.fetch_add(1, Ordering::Relaxed);
                self.teardown(conn);
            }
        }
    }

    fn set_want_write(&mut self, conn: u64, want: bool) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        if c.want_write == want {
            return;
        }
        c.want_write = want;
        let interest = if want {
            Interest::READABLE | Interest::WRITABLE
        } else {
            Interest::READABLE
        };
        let _ = self
            .poll
            .registry()
            .reregister(&c.stream, token_of(conn), interest);
    }

    /// Removes a connection from this loop: global kill (registry,
    /// index, outbox — a no-op when another thread killed it first),
    /// one best-effort flush so already-queued replies reach a willing
    /// socket, then the fd leaves the poller and closes.
    fn teardown(&mut self, conn: u64) {
        let Some(c) = self.conns.remove(&conn) else {
            return;
        };
        self.shared.kill(&c.state, false);
        let _ = c.state.outbox.flush_to(&mut (&c.stream), &self.me.stats);
        c.state.outbox.discard_remaining();
        let _ = self.poll.registry().deregister(&c.stream);
        self.me.conn_count.fetch_sub(1, Ordering::Relaxed);
    }

    /// Drains the inbox: registrations first (so a kill scheduled after
    /// a handoff in the same batch finds its connection), then kills,
    /// then flush requests.
    fn drain_inbox(&mut self) {
        let (new_conns, kills, writable) = {
            let mut inbox = self.me.inbox.lock();
            (
                std::mem::take(&mut inbox.new_conns),
                std::mem::take(&mut inbox.kills),
                std::mem::take(&mut inbox.writable),
            )
        };
        for (state, stream) in new_conns {
            self.register_conn(state, stream);
        }
        for conn in kills {
            self.teardown(conn);
        }
        for conn in writable {
            self.service_write(conn);
        }
    }

    /// Fires due liveness deadlines. Cancellation is lazy: a deadline
    /// that fires for a connection that spoke since is rescheduled at
    /// `last_rx + liveness`, so the read path never touches the wheel.
    fn expire_timers(&mut self, expired: &mut Vec<u64>) {
        let Some(liveness) = self.shared.config.liveness_timeout else {
            return;
        };
        if self.wheel.len() == 0 {
            return;
        }
        expired.clear();
        let now = Instant::now();
        self.wheel.expire(now, expired);
        for &conn in expired.iter() {
            let Some(c) = self.conns.get(&conn) else {
                continue; // already gone; lazy-cancelled
            };
            let deadline = c.last_rx + liveness;
            if now >= deadline {
                self.shared.liveness_kills.fetch_add(1, Ordering::Relaxed);
                self.teardown(conn);
            } else {
                self.wheel.schedule(conn, deadline);
            }
        }
    }

    /// Shutdown: give every connection's queued frames a bounded chance
    /// to reach the kernel, then close everything.
    fn drain_and_close(mut self) {
        if let Some(l) = &self.listener {
            let _ = self.poll.registry().deregister(l);
        }
        // Absorb in-flight handoffs; their sockets close unserved (they
        // were accepted but never exchanged a command).
        let new_conns = std::mem::take(&mut self.me.inbox.lock().new_conns);
        for (state, _stream) in new_conns {
            self.shared.kill(&state, false);
            self.me.conn_count.fetch_sub(1, Ordering::Relaxed);
        }
        // Close every outbox (kill is idempotent): queued frames still
        // drain below, new pushes fail.
        for c in self.conns.values() {
            self.shared.kill(&c.state, false);
        }
        let deadline = Instant::now() + self.shared.config.shutdown_drain_timeout;
        loop {
            let mut pending = false;
            for c in self.conns.values_mut() {
                if c.state.outbox.is_empty() {
                    continue;
                }
                match c.state.outbox.flush_to(&mut (&c.stream), &self.me.stats) {
                    Flush::Drained | Flush::Failed => {}
                    Flush::Pending => pending = true,
                }
            }
            if !pending || Instant::now() >= deadline {
                break;
            }
            // Socket buffers full: retry on a short cadence instead of
            // re-arming EPOLLOUT for connections about to close anyway.
            std::thread::sleep(Duration::from_millis(5));
        }
        for (_, c) in self.conns.drain() {
            c.state.outbox.discard_remaining();
            let _ = self.poll.registry().deregister(&c.stream);
            self.me.conn_count.fetch_sub(1, Ordering::Relaxed);
        }
    }
}
