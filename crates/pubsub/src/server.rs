//! The channel-based pub/sub server: the Redis stand-in.
//!
//! [`PubSubServer`] implements exactly the behaviour Dynamoth relies on
//! from an off-the-shelf broker:
//!
//! 1. `SUBSCRIBE` / `UNSUBSCRIBE` / `PUBLISH` with fan-out delivery to
//!    every subscriber of a channel;
//! 2. a CPU cost model — each command and each outgoing delivery takes a
//!    configurable amount of processing time, so very large fan-outs
//!    saturate the server (the failure mode of Fig. 4a);
//! 3. cooperation with the transport's per-connection output buffers:
//!    when a delivery is refused because the subscriber's buffer
//!    overflowed, the server disconnects that subscriber, like Redis'
//!    `client-output-buffer-limit` (the failure mode of Fig. 4b).
//!
//! The struct is a passive state machine: it computes *what* to deliver
//! and *when* the CPU is done; the embedding actor (in `dynamoth-core`)
//! performs the actual sends. This keeps the server independently
//! testable and independent of any particular transport.

use std::collections::{BTreeSet, HashMap};

use dynamoth_sim::{NodeId, SimDuration, SimTime};

use crate::channel::Channel;

/// CPU cost model of a pub/sub server node.
#[derive(Debug, Clone)]
pub struct CpuModel {
    /// Fixed cost to parse/process any command.
    pub per_command: SimDuration,
    /// Cost to enqueue one outgoing delivery during fan-out.
    pub per_delivery: SimDuration,
}

impl Default for CpuModel {
    fn default() -> Self {
        CpuModel {
            per_command: SimDuration::from_micros(5),
            per_delivery: SimDuration::from_micros(2),
        }
    }
}

/// Result of processing a `PUBLISH`: who receives the message and when
/// the server CPU finished processing it (deliveries leave no earlier
/// than `cpu_done`).
#[derive(Debug, Clone)]
pub struct PublishOutcome {
    /// Subscribers to deliver to (excludes the publisher unless it is
    /// itself subscribed).
    pub recipients: Vec<NodeId>,
    /// Instant the server finished processing the command.
    pub cpu_done: SimTime,
}

/// A channel-based pub/sub server state machine.
///
/// # Examples
///
/// ```
/// use dynamoth_pubsub::{Channel, PubSubServer};
/// use dynamoth_sim::{NodeId, SimTime};
///
/// let mut srv = PubSubServer::new(Default::default());
/// let alice = NodeId::from_index(1);
/// let ch = Channel(7);
/// srv.subscribe(SimTime::ZERO, alice, ch);
/// let out = srv.publish(SimTime::ZERO, ch);
/// assert_eq!(out.recipients, vec![alice]);
/// ```
#[derive(Debug, Clone)]
pub struct PubSubServer {
    cpu: CpuModel,
    busy_until: SimTime,
    busy_total: SimDuration,
    // BTreeSet gives deterministic fan-out order (simulation
    // reproducibility) and O(log n) unsubscribe.
    subscribers: HashMap<Channel, BTreeSet<NodeId>>,
    channels_of: HashMap<NodeId, BTreeSet<Channel>>,
    commands_processed: u64,
}

impl PubSubServer {
    /// Creates an idle server with the given CPU model.
    pub fn new(cpu: CpuModel) -> Self {
        PubSubServer {
            cpu,
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            subscribers: HashMap::new(),
            channels_of: HashMap::new(),
            commands_processed: 0,
        }
    }

    /// Registers `client` as a subscriber of `channel`. Returns `true`
    /// if this is a new subscription, `false` if it already existed.
    pub fn subscribe(&mut self, now: SimTime, client: NodeId, channel: Channel) -> bool {
        self.charge(now, SimDuration::ZERO);
        let inserted = self.subscribers.entry(channel).or_default().insert(client);
        if inserted {
            self.channels_of.entry(client).or_default().insert(channel);
        }
        inserted
    }

    /// Removes `client`'s subscription to `channel`. Returns `true` if a
    /// subscription was removed.
    pub fn unsubscribe(&mut self, now: SimTime, client: NodeId, channel: Channel) -> bool {
        self.charge(now, SimDuration::ZERO);
        let removed = match self.subscribers.get_mut(&channel) {
            Some(set) => {
                let removed = set.remove(&client);
                if set.is_empty() {
                    self.subscribers.remove(&channel);
                }
                removed
            }
            None => false,
        };
        if removed {
            if let Some(chs) = self.channels_of.get_mut(&client) {
                chs.remove(&channel);
                if chs.is_empty() {
                    self.channels_of.remove(&client);
                }
            }
        }
        removed
    }

    /// Processes a `PUBLISH` on `channel`: computes the recipient set and
    /// charges the CPU for the command plus one delivery per recipient.
    pub fn publish(&mut self, now: SimTime, channel: Channel) -> PublishOutcome {
        let recipients: Vec<NodeId> = self
            .subscribers
            .get(&channel)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let fanout_cost = self.cpu.per_delivery * recipients.len() as u64;
        let cpu_done = self.charge(now, fanout_cost);
        PublishOutcome {
            recipients,
            cpu_done,
        }
    }

    /// Forcibly removes a client from every channel (connection kill
    /// after an output-buffer overflow). Returns the channels it was
    /// subscribed to.
    pub fn disconnect(&mut self, client: NodeId) -> Vec<Channel> {
        let channels: Vec<Channel> = self
            .channels_of
            .remove(&client)
            .map(|s| s.into_iter().collect())
            .unwrap_or_default();
        for &ch in &channels {
            if let Some(set) = self.subscribers.get_mut(&ch) {
                set.remove(&client);
                if set.is_empty() {
                    self.subscribers.remove(&ch);
                }
            }
        }
        channels
    }

    /// Number of subscribers of `channel`.
    pub fn subscriber_count(&self, channel: Channel) -> usize {
        self.subscribers.get(&channel).map_or(0, BTreeSet::len)
    }

    /// Iterates over the subscribers of `channel` in deterministic
    /// order.
    pub fn subscribers(&self, channel: Channel) -> impl Iterator<Item = NodeId> + '_ {
        self.subscribers
            .get(&channel)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// `true` if `client` is subscribed to `channel`.
    pub fn is_subscribed(&self, client: NodeId, channel: Channel) -> bool {
        self.subscribers
            .get(&channel)
            .is_some_and(|s| s.contains(&client))
    }

    /// Iterates over every channel with at least one subscriber.
    pub fn channels(&self) -> impl Iterator<Item = Channel> + '_ {
        self.subscribers.keys().copied()
    }

    /// Channels `client` is currently subscribed to.
    pub fn channels_of(&self, client: NodeId) -> impl Iterator<Item = Channel> + '_ {
        self.channels_of
            .get(&client)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// Total number of active (channel, subscriber) pairs.
    pub fn subscription_count(&self) -> usize {
        self.subscribers.values().map(BTreeSet::len).sum()
    }

    /// Number of distinct connected subscribers.
    pub fn client_count(&self) -> usize {
        self.channels_of.len()
    }

    /// Commands processed since creation.
    pub fn commands_processed(&self) -> u64 {
        self.commands_processed
    }

    /// Instant the CPU becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total CPU time consumed since creation (drives the CPU-aware
    /// load-balancing extension).
    pub fn cpu_busy_total(&self) -> SimDuration {
        self.busy_total
    }

    fn charge(&mut self, now: SimTime, extra: SimDuration) -> SimTime {
        self.commands_processed += 1;
        let cost = self.cpu.per_command + extra;
        let start = now.max(self.busy_until);
        self.busy_until = start + cost;
        self.busy_total = self.busy_total + cost;
        self.busy_until
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn server() -> PubSubServer {
        PubSubServer::new(CpuModel::default())
    }

    #[test]
    fn subscribe_publish_delivers_to_all_subscribers() {
        let mut s = server();
        let ch = Channel(1);
        s.subscribe(SimTime::ZERO, n(1), ch);
        s.subscribe(SimTime::ZERO, n(2), ch);
        s.subscribe(SimTime::ZERO, n(3), Channel(2));
        let out = s.publish(SimTime::ZERO, ch);
        assert_eq!(out.recipients, vec![n(1), n(2)]);
    }

    #[test]
    fn duplicate_subscriptions_are_idempotent() {
        let mut s = server();
        let ch = Channel(1);
        assert!(s.subscribe(SimTime::ZERO, n(1), ch));
        assert!(!s.subscribe(SimTime::ZERO, n(1), ch));
        assert_eq!(s.subscriber_count(ch), 1);
    }

    #[test]
    fn unsubscribe_removes_only_that_client() {
        let mut s = server();
        let ch = Channel(1);
        s.subscribe(SimTime::ZERO, n(1), ch);
        s.subscribe(SimTime::ZERO, n(2), ch);
        assert!(s.unsubscribe(SimTime::ZERO, n(1), ch));
        assert!(!s.unsubscribe(SimTime::ZERO, n(1), ch));
        assert_eq!(s.subscriber_count(ch), 1);
        assert!(s.is_subscribed(n(2), ch));
    }

    #[test]
    fn publish_to_empty_channel_has_no_recipients() {
        let mut s = server();
        let out = s.publish(SimTime::ZERO, Channel(9));
        assert!(out.recipients.is_empty());
    }

    #[test]
    fn cpu_cost_scales_with_fanout() {
        let cpu = CpuModel {
            per_command: SimDuration::from_micros(10),
            per_delivery: SimDuration::from_micros(5),
        };
        let mut s = PubSubServer::new(cpu);
        let ch = Channel(1);
        for i in 0..4 {
            s.subscribe(SimTime::ZERO, n(i), ch);
        }
        // Four subscribe commands consumed CPU already; publish starts
        // when they are done.
        let subs_done = s.busy_until();
        let out = s.publish(SimTime::ZERO, ch);
        assert_eq!(
            out.cpu_done,
            subs_done + SimDuration::from_micros(10 + 4 * 5)
        );
    }

    #[test]
    fn cpu_queue_backs_up_under_load() {
        let cpu = CpuModel {
            per_command: SimDuration::from_millis(1),
            per_delivery: SimDuration::ZERO,
        };
        let mut s = PubSubServer::new(cpu);
        let a = s.publish(SimTime::ZERO, Channel(1));
        let b = s.publish(SimTime::ZERO, Channel(1));
        assert_eq!(a.cpu_done, SimTime::from_millis(1));
        assert_eq!(b.cpu_done, SimTime::from_millis(2));
        // After an idle period the queue resets.
        let c = s.publish(SimTime::from_secs(1), Channel(1));
        assert_eq!(
            c.cpu_done,
            SimTime::from_secs(1) + SimDuration::from_millis(1)
        );
    }

    #[test]
    fn cpu_busy_total_accumulates_costs() {
        let cpu = CpuModel {
            per_command: SimDuration::from_micros(10),
            per_delivery: SimDuration::from_micros(5),
        };
        let mut s = PubSubServer::new(cpu);
        s.subscribe(SimTime::ZERO, n(1), Channel(1)); // 10 µs
        s.publish(SimTime::ZERO, Channel(1)); // 10 + 5 µs
        assert_eq!(s.cpu_busy_total(), SimDuration::from_micros(25));
    }

    #[test]
    fn disconnect_removes_all_subscriptions() {
        let mut s = server();
        s.subscribe(SimTime::ZERO, n(1), Channel(1));
        s.subscribe(SimTime::ZERO, n(1), Channel(2));
        s.subscribe(SimTime::ZERO, n(2), Channel(1));
        let mut removed = s.disconnect(n(1));
        removed.sort();
        assert_eq!(removed, vec![Channel(1), Channel(2)]);
        assert_eq!(s.subscriber_count(Channel(1)), 1);
        assert_eq!(s.subscriber_count(Channel(2)), 0);
        assert_eq!(s.client_count(), 1);
        assert!(s.disconnect(n(99)).is_empty());
    }

    #[test]
    fn accounting_queries_are_consistent() {
        let mut s = server();
        s.subscribe(SimTime::ZERO, n(1), Channel(1));
        s.subscribe(SimTime::ZERO, n(1), Channel(2));
        s.subscribe(SimTime::ZERO, n(2), Channel(1));
        assert_eq!(s.subscription_count(), 3);
        assert_eq!(s.client_count(), 2);
        let mut chs: Vec<Channel> = s.channels_of(n(1)).collect();
        chs.sort();
        assert_eq!(chs, vec![Channel(1), Channel(2)]);
        assert_eq!(s.channels().count(), 2);
        assert_eq!(s.commands_processed(), 3);
    }

    #[test]
    fn fanout_order_is_deterministic() {
        let mut s = server();
        let ch = Channel(1);
        for i in [5, 3, 9, 1] {
            s.subscribe(SimTime::ZERO, n(i), ch);
        }
        let out = s.publish(SimTime::ZERO, ch);
        assert_eq!(out.recipients, vec![n(1), n(3), n(5), n(9)]);
    }
}
