//! # dynamoth-pubsub
//!
//! A from-scratch, Redis-like channel-based pub/sub server used as the
//! broker substrate of the Dynamoth reproduction, plus the plan-routed
//! client tier that turns a fleet of such brokers into one logical
//! pub/sub service. The paper deploys *unmodified* Redis instances and
//! implements all middleware logic around them; correspondingly, the
//! broker here ([`TcpBroker`]) knows nothing about plans, load
//! balancing or reconfiguration — routing lives entirely in the client
//! ([`RoutedClient`]) and the per-broker dispatcher sidecar
//! ([`DispatcherSidecar`]), mirroring how Dynamoth layers on Redis.
//!
//! The plan machinery ([`Plan`], [`ChannelMapping`], [`Ring`]) is
//! defined here and shared with the simulator in `dynamoth-core`, so
//! both tiers run one implementation.
//!
//! ```
//! use dynamoth_pubsub::{Channel, CpuModel, PubSubServer};
//! use dynamoth_sim::{NodeId, SimTime};
//!
//! let mut srv = PubSubServer::new(CpuModel::default());
//! let sub = NodeId::from_index(3);
//! srv.subscribe(SimTime::ZERO, sub, Channel(1));
//! assert_eq!(srv.publish(SimTime::ZERO, Channel(1)).recipients, vec![sub]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod balancer;
mod broker;
mod channel;
pub mod chaos;
pub mod client;
pub mod control;
pub mod dispatcher;
pub mod hashing;
mod ids;
pub mod load;
mod outbox;
pub mod plan;
mod reactor;
pub mod resp;
mod rng;
pub mod router;
mod seq;
mod server;
mod shard;
mod timer;

pub use balance::{bounded::BoundedPlacer, CapacityEstimator, Tuning};
pub use balancer::{
    BalancerConfig, LiveBalancerStats, LiveLoadBalancer, LoadReporter, ReplanSummary,
};
pub use broker::{
    BrokerConfig, BrokerHealth, BrokerLoadHandle, FlushStats, LoopFlushStats, ShutdownStats,
    TcpBroker,
};
pub use channel::{Channel, ChannelRegistry};
pub use chaos::{ChaosProxy, Direction};
pub use client::{
    ClientConfig, ClientEvent, DisconnectReason, DropCause, GapReason, Message, MessageId,
    TcpPubSubClient,
};
pub use control::{
    channel_id_of, control_channel, install_channel, lla_channel, ControlFrame, InstallFrame,
    Quarantine,
};
pub use dispatcher::{ChannelChange, DispatcherSidecar, SidecarConfig, SidecarEvent, SidecarStats};
pub use hashing::{Ring, DEFAULT_VNODES};
pub use ids::{PlanId, ServerId};
pub use load::{BrokerLoadAnalyzer, BrokerLoadReport};
pub use outbox::OverflowPolicy;
pub use plan::{ChannelMapping, Plan, PlanChange, PlanError};
pub use router::{RoutedClient, RouterConfig, RouterEvent, RouterStats};
pub use server::{CpuModel, PubSubServer, PublishOutcome};
