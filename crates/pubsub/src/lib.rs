//! # dynamoth-pubsub
//!
//! A from-scratch, Redis-like channel-based pub/sub server used as the
//! broker substrate of the Dynamoth reproduction. The paper deploys
//! *unmodified* Redis instances and implements all middleware logic
//! around them; correspondingly, this crate knows nothing about plans,
//! load balancing or reconfiguration — it only implements the standard
//! pub/sub primitives plus the two resource-exhaustion behaviours the
//! evaluation depends on (CPU fan-out cost and cooperation with bounded
//! per-subscriber output buffers).
//!
//! ```
//! use dynamoth_pubsub::{Channel, CpuModel, PubSubServer};
//! use dynamoth_sim::{NodeId, SimTime};
//!
//! let mut srv = PubSubServer::new(CpuModel::default());
//! let sub = NodeId::from_index(3);
//! srv.subscribe(SimTime::ZERO, sub, Channel(1));
//! assert_eq!(srv.publish(SimTime::ZERO, Channel(1)).recipients, vec![sub]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod channel;
pub mod chaos;
pub mod client;
mod outbox;
pub mod resp;
mod rng;
mod server;
mod shard;

pub use broker::{BrokerConfig, BrokerHealth, FlushStats, ShutdownStats, TcpBroker};
pub use channel::{Channel, ChannelRegistry};
pub use chaos::{ChaosProxy, Direction};
pub use client::{
    ClientConfig, ClientEvent, DisconnectReason, DropCause, Message, MessageId, TcpPubSubClient,
};
pub use outbox::OverflowPolicy;
pub use server::{CpuModel, PubSubServer, PublishOutcome};
