//! Wire helpers for sequence-numbered retention and resumable
//! subscriptions (the `DMSEQ1` family).
//!
//! Three tiny textual encodings ride the existing RESP framing, so an
//! unmodified Redis-protocol broker path carries them untouched:
//!
//! - **Subscribe-from**: a `SUBSCRIBE` channel argument of the form
//!   `DMSEQ1;<from:016x|->;<name>` asks the broker to register the
//!   subscription *sequenced* and, when `<from>` is an explicit hex
//!   sequence, to replay the retained suffix `>= from` before going
//!   live. `-` means "sequenced from now" (no replay).
//! - **Sequenced delivery**: payloads pushed to sequenced subscribers
//!   are prefixed `DMSEQ1;<seq:016x>;<original payload>`; plain
//!   subscribers of the same channel receive the unprefixed payload.
//! - **Markers**: unicast message pushes whose payload is
//!   `DMGAP1;<requested:016x>;<resume_from:016x>` (the requested
//!   sequence was already evicted — everything in
//!   `[requested, resume_from)` is lost and *detectably* so) or
//!   `DMRES1;<replayed:016x>;<next:016x>` (replay done; the next live
//!   sequence will be `next`).
//!
//! Like the `DMID1` dedup header and the `DMCTL1` control frames, these
//! markers live in payload space: an application payload could spoof
//! them. The deployments this substrate models own both ends of the
//! wire, so that is an accepted trade for broker-transparency.

/// Magic prefixing sequenced subscribe arguments and delivery payloads.
pub(crate) const SEQ_MAGIC: &[u8] = b"DMSEQ1;";
/// Magic prefixing a gap marker payload.
pub(crate) const GAP_MAGIC: &[u8] = b"DMGAP1;";
/// Magic prefixing a resume-complete marker payload.
pub(crate) const RES_MAGIC: &[u8] = b"DMRES1;";

/// `DMSEQ1;` + 16 hex digits + `;`.
pub(crate) const SEQ_PREFIX_LEN: usize = 7 + 16 + 1;

fn parse_hex16(bytes: &[u8]) -> Option<u64> {
    if bytes.len() != 16 {
        return None;
    }
    let s = std::str::from_utf8(bytes).ok()?;
    u64::from_str_radix(s, 16).ok()
}

/// Encodes a `SUBSCRIBE` channel argument requesting a sequenced
/// subscription on `name`, replaying from `from` when given.
pub(crate) fn encode_subscribe_arg(name: &str, from: Option<u64>) -> String {
    match from {
        Some(seq) => format!("DMSEQ1;{seq:016x};{name}"),
        None => format!("DMSEQ1;-;{name}"),
    }
}

/// Decodes a sequenced `SUBSCRIBE` argument into `(name, from)`.
/// Returns `None` for a plain channel name (not the `DMSEQ1` form);
/// a malformed sequence field also falls back to `None` so the
/// argument degrades to a plain subscription on the literal name
/// rather than silently inventing a resume point.
pub(crate) fn parse_subscribe_arg(arg: &str) -> Option<(&str, Option<u64>)> {
    let rest = arg.strip_prefix("DMSEQ1;")?;
    let (seq_field, name) = rest.split_once(';')?;
    if seq_field == "-" {
        return Some((name, None));
    }
    let from = parse_hex16(seq_field.as_bytes())?;
    Some((name, Some(from)))
}

/// Prefixes `payload` with its assigned sequence for delivery to a
/// sequenced subscriber.
pub(crate) fn prefix_payload(seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(SEQ_PREFIX_LEN + payload.len());
    out.extend_from_slice(format!("DMSEQ1;{seq:016x};").as_bytes());
    out.extend_from_slice(payload);
    out
}

/// Splits a sequenced delivery payload into `(seq, original payload)`.
pub(crate) fn parse_seq_payload(payload: &[u8]) -> Option<(u64, &[u8])> {
    if payload.len() < SEQ_PREFIX_LEN || !payload.starts_with(SEQ_MAGIC) {
        return None;
    }
    if payload[SEQ_PREFIX_LEN - 1] != b';' {
        return None;
    }
    let seq = parse_hex16(&payload[7..23])?;
    Some((seq, &payload[SEQ_PREFIX_LEN..]))
}

fn marker(magic: &[u8], a: u64, b: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(magic.len() + 16 + 1 + 16);
    out.extend_from_slice(magic);
    out.extend_from_slice(format!("{a:016x};{b:016x}").as_bytes());
    out
}

fn parse_marker(magic: &[u8], payload: &[u8]) -> Option<(u64, u64)> {
    let rest = payload.strip_prefix(magic)?;
    if rest.len() != 16 + 1 + 16 || rest[16] != b';' {
        return None;
    }
    Some((parse_hex16(&rest[..16])?, parse_hex16(&rest[17..])?))
}

/// Encodes a gap marker: the retained suffix no longer reaches back to
/// `requested`; delivery resumes at `resume_from`.
pub(crate) fn gap_marker(requested: u64, resume_from: u64) -> Vec<u8> {
    marker(GAP_MAGIC, requested, resume_from)
}

/// Decodes a gap marker into `(requested, resume_from)`.
pub(crate) fn parse_gap(payload: &[u8]) -> Option<(u64, u64)> {
    parse_marker(GAP_MAGIC, payload)
}

/// Encodes a resume-complete marker: `replayed` frames were replayed;
/// the next live sequence on the channel will be `next`.
pub(crate) fn resume_marker(replayed: u64, next: u64) -> Vec<u8> {
    marker(RES_MAGIC, replayed, next)
}

/// Decodes a resume-complete marker into `(replayed, next)`.
pub(crate) fn parse_resume(payload: &[u8]) -> Option<(u64, u64)> {
    parse_marker(RES_MAGIC, payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_arg_round_trips() {
        let live = encode_subscribe_arg("room.7", None);
        assert_eq!(parse_subscribe_arg(&live), Some(("room.7", None)));
        let from = encode_subscribe_arg("room.7", Some(0x2a));
        assert_eq!(parse_subscribe_arg(&from), Some(("room.7", Some(0x2a))));
        // Names containing `;` survive: the name field is last and
        // split only once.
        let odd = encode_subscribe_arg("a;b", Some(1));
        assert_eq!(parse_subscribe_arg(&odd), Some(("a;b", Some(1))));
    }

    #[test]
    fn plain_and_malformed_args_are_not_sequenced() {
        assert_eq!(parse_subscribe_arg("room.7"), None);
        assert_eq!(parse_subscribe_arg("DMSEQ1;xyz;room"), None);
        assert_eq!(parse_subscribe_arg("DMSEQ1;00ff;room"), None); // short hex
        assert_eq!(parse_subscribe_arg("DMSEQ1;-"), None); // no name field
    }

    #[test]
    fn seq_payload_round_trips() {
        let framed = prefix_payload(7, b"hello");
        let (seq, body) = parse_seq_payload(&framed).expect("parses");
        assert_eq!(seq, 7);
        assert_eq!(body, b"hello");
        assert_eq!(parse_seq_payload(b"hello"), None);
        assert_eq!(parse_seq_payload(b"DMSEQ1;short"), None);
    }

    #[test]
    fn markers_round_trip_and_reject_junk() {
        assert_eq!(parse_gap(&gap_marker(3, 9)), Some((3, 9)));
        assert_eq!(parse_resume(&resume_marker(5, 12)), Some((5, 12)));
        assert_eq!(parse_gap(&resume_marker(5, 12)), None);
        assert_eq!(parse_gap(b"DMGAP1;junk"), None);
        let mut trailing = gap_marker(3, 9);
        trailing.push(b'x');
        assert_eq!(parse_gap(&trailing), None);
    }
}
