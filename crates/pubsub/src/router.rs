//! The plan-routed multi-broker client (§II-C of the paper).
//!
//! [`RoutedClient`] turns a *directory* of independent [`crate::TcpBroker`]s
//! into one logical pub/sub service. Routing follows the Dynamoth
//! client algorithm:
//!
//! - Every client holds a **local plan**: a lazy, partial copy of the
//!   global plan, filled in strictly on a need-to-know basis. Channels
//!   the local plan does not mention resolve through the shared
//!   consistent-hash [`Ring`] over the directory.
//! - SUBSCRIBE and PUBLISH pick brokers per [`ChannelMapping`]
//!   semantics: `Single` uses the one server, `AllSubscribers`
//!   subscribes everywhere and publishes to one random member,
//!   `AllPublishers` publishes everywhere and subscribes to one random
//!   member.
//! - The local plan is updated by the two control frames of the
//!   dispatcher sidecars: a [`ControlFrame::Moved`] on this client's
//!   private control channel (it published to the wrong broker), or a
//!   [`ControlFrame::Switch`] on a subscribed channel (the channel
//!   moved away from a broker it is subscribed on). On a switch the
//!   client subscribes at the new location immediately but keeps the
//!   old subscription for a grace period
//!   ([`RouterConfig::switch_grace`]) — the new subscription rides a
//!   possibly brand-new TCP connection, so tearing the old one down
//!   right away would open a loss window. The overlap only produces
//!   duplicates, which the dedup window absorbs.
//! - A router-level dedup window spanning **all** broker connections
//!   suppresses the duplicates that reconfiguration forwarding creates
//!   (same wire id arriving via two brokers), on top of the per
//!   connection window each underlying [`TcpPubSubClient`] already
//!   keeps.
//!
//! One underlying fault-tolerant client is created per broker, lazily —
//! a client that only ever touches channels of one broker holds exactly
//! one connection, matching the paper's "connects to the server(s) it
//! needs" behaviour.
//!
//! # Whole-broker failover
//!
//! The router also detects *dead* brokers on its own, mirroring the
//! balancer's suspect/dead state machine (see `DESIGN.md` §12) from the
//! client's seat. A broker connection that stays down past
//! [`RouterConfig::failover_after`] without **data evidence** (a
//! delivered message or a successful resume — a bare TCP accept is not
//! evidence, because a half-dead host can complete handshakes while
//! serving nothing) is confirmed with a bare TCP probe; only a *failed*
//! probe declares the broker dead. Death re-points every subscription
//! stranded on the corpse to the deterministic ring-exclusion fallback,
//! surfaces a synthetic [`ClientEvent::Gap`] with
//! [`GapReason::Failover`] per re-pointed channel (sequences are
//! per-broker-incarnation, so the new home starts a fresh stream and
//! continuity is impossible), rescues the dead connection's queued
//! publications onto survivors, and filters the corpse out of every
//! publish until it re-appears. Control frames carrying the balancer's
//! quarantine list short-circuit the local timer: the balancer already
//! probed, so the router adopts the death immediately (deduplicated by
//! broker incarnation). Dead brokers are re-probed every
//! [`RouterConfig::reprobe_interval`]; a successful probe (or data from
//! the broker) lifts the death mark.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::client::{
    frame_payload, ClientConfig, ClientEvent, Dedup, GapReason, Message, MessageId, TcpPubSubClient,
};
use crate::control::{channel_id_of, control_channel, ControlFrame};
use crate::hashing::{Ring, DEFAULT_VNODES};
use crate::ids::{PlanId, ServerId};
use crate::plan::ChannelMapping;
use crate::rng::SplitMix64;

/// Tuning knobs of a [`RoutedClient`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Tuning for each underlying per-broker client.
    pub client: ClientConfig,
    /// Router-level (cross-broker) dedup window, in wire ids.
    pub dedup_window: usize,
    /// Virtual identifiers per server on the fallback ring.
    pub vnodes: u32,
    /// Pump thread granularity.
    pub tick: Duration,
    /// How long a superseded subscription lingers after a switch before
    /// it is unsubscribed. Covers the connection-setup time of the new
    /// brokers; the resulting double deliveries are deduplicated.
    pub switch_grace: Duration,
    /// Seed for replication-mode random member picks and for deriving
    /// per-broker client seeds. `None` uses OS entropy.
    pub seed: Option<u64>,
    /// How long a broker connection must stay down — without data
    /// evidence; a bare TCP accept does not count — before the router
    /// probes the broker and, if the probe fails, declares it dead.
    pub failover_after: Duration,
    /// Connect timeout of a death-confirmation probe.
    pub probe_timeout: Duration,
    /// Minimum spacing between probes of the same broker, both
    /// confirmation probes and dead-broker revival re-probes.
    pub reprobe_interval: Duration,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig::default(),
            dedup_window: 8192,
            vnodes: DEFAULT_VNODES,
            tick: Duration::from_millis(5),
            switch_grace: Duration::from_secs(1),
            seed: None,
            failover_after: Duration::from_secs(3),
            probe_timeout: Duration::from_millis(500),
            reprobe_interval: Duration::from_secs(2),
        }
    }
}

/// A state change of one underlying broker connection, tagged with the
/// broker's directory index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouterEvent {
    /// Directory index of the broker the event is about.
    pub broker: usize,
    /// The underlying client event.
    pub event: ClientEvent,
}

/// Counters describing a router's routing and reconfiguration activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Cross-broker duplicates suppressed by the router-level window.
    pub duplicates_suppressed: u64,
    /// `MOVED` frames applied to the local plan.
    pub moved_applied: u64,
    /// `<switch>` frames applied to the local plan.
    pub switches_applied: u64,
    /// Control frames ignored because the local plan was already newer.
    pub stale_control_frames: u64,
    /// Underlying broker connections currently open.
    pub connections: usize,
    /// Channels the local plan currently maps — explicit entries learned
    /// from control frames plus provisional ring-fallback entries
    /// (recorded at plan version 0 on first use).
    pub local_plan_len: usize,
    /// Brokers this router declared dead (probe failure, `GaveUp`, or a
    /// balancer quarantine frame) and has not seen revive.
    pub deaths_detected: u64,
    /// Subscriptions re-pointed to a ring-exclusion fallback because
    /// their only home died.
    pub failover_repoints: u64,
    /// Directory indices of brokers currently believed dead.
    pub dead_brokers: Vec<usize>,
}

struct RouterShared {
    running: AtomicBool,
    duplicates: AtomicU64,
    moved_applied: AtomicU64,
    switches_applied: AtomicU64,
    stale_frames: AtomicU64,
    deaths: AtomicU64,
    repoints: AtomicU64,
    /// Wire-id origin for publishes the *router* frames itself (the
    /// replicated fan-out path). Per-broker clients keep their own
    /// decorrelated origins for single-target publishes.
    pub_origin: u64,
    /// Sequence counter within `pub_origin`'s wire-id namespace.
    pub_seq: AtomicU64,
}

/// Liveness view of one broker, updated by the pump thread and read at
/// routing time.
#[derive(Debug, Default)]
struct BrokerHealth {
    /// When the connection went down, if it has produced no data
    /// evidence since. `Connected` does NOT clear this: a hard-killed
    /// proxy (or a wedged host) can complete TCP handshakes forever
    /// while delivering nothing.
    down_since: Option<Instant>,
    /// Declared dead; routing skips the broker until it revives.
    dead: bool,
    /// Last probe attempt (confirmation or revival), for rate limiting.
    last_probe: Option<Instant>,
    /// Highest balancer-declared death incarnation seen, so stale
    /// quarantine frames cannot re-kill a revived broker.
    incarnation: u64,
}

struct Routing {
    /// Lazy local plan: name → (mapping, version that set it).
    local_plan: HashMap<String, (ChannelMapping, PlanId)>,
    /// Channels the caller wants to be subscribed to.
    desired: BTreeSet<String>,
    /// Broker indices each desired channel is currently subscribed on.
    subscribed_on: BTreeMap<String, BTreeSet<usize>>,
    /// Superseded subscriptions awaiting their grace-period unsubscribe.
    pending_unsubs: Vec<(Instant, usize, String)>,
    /// Per-broker liveness, indexed by directory position.
    health: Vec<BrokerHealth>,
    rng: SplitMix64,
}

impl Routing {
    /// Directory indices currently believed dead, as ring exclusions.
    fn dead_servers(&self) -> Vec<ServerId> {
        self.health
            .iter()
            .enumerate()
            .filter(|(_, h)| h.dead)
            .map(|(i, _)| ServerId::from_index(i))
            .collect()
    }
}

/// The plan-routed multi-broker client (see module docs).
pub struct RoutedClient {
    directory: Vec<SocketAddr>,
    cfg: RouterConfig,
    ring: Ring,
    clients: Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: Arc<Mutex<Routing>>,
    shared: Arc<RouterShared>,
    messages: Mutex<mpsc::Receiver<Message>>,
    events: Mutex<mpsc::Receiver<RouterEvent>>,
    pump: Option<JoinHandle<()>>,
}

impl RoutedClient {
    /// Creates a router over `directory` (broker index `i` ↔
    /// [`ServerId::from_index`]`(i)`). No connection is opened until a
    /// channel actually routes to a broker.
    ///
    /// # Panics
    ///
    /// Panics if `directory` is empty.
    pub fn connect(directory: Vec<SocketAddr>, cfg: RouterConfig) -> RoutedClient {
        assert!(!directory.is_empty(), "directory needs at least one broker");
        let servers: Vec<ServerId> = (0..directory.len()).map(ServerId::from_index).collect();
        let ring = Ring::new(&servers, cfg.vnodes);
        let rng = match cfg.seed {
            Some(seed) => SplitMix64::new(seed),
            None => SplitMix64::from_entropy(),
        };
        // A namespace of its own, decorrelated from every per-broker
        // client origin (those mix the broker index in), so replicated
        // fan-out ids collide with nobody.
        let pub_origin = match cfg.seed {
            Some(seed) => SplitMix64::new(seed ^ 0xD1B5_4A32_D192_ED03).next_u64(),
            None => SplitMix64::from_entropy().next_u64(),
        };
        let shared = Arc::new(RouterShared {
            running: AtomicBool::new(true),
            pub_origin,
            pub_seq: AtomicU64::new(0),
            duplicates: AtomicU64::new(0),
            moved_applied: AtomicU64::new(0),
            switches_applied: AtomicU64::new(0),
            stale_frames: AtomicU64::new(0),
            deaths: AtomicU64::new(0),
            repoints: AtomicU64::new(0),
        });
        let clients = Arc::new(Mutex::new(HashMap::new()));
        let routing = Arc::new(Mutex::new(Routing {
            local_plan: HashMap::new(),
            desired: BTreeSet::new(),
            subscribed_on: BTreeMap::new(),
            pending_unsubs: Vec::new(),
            health: (0..directory.len())
                .map(|_| BrokerHealth::default())
                .collect(),
            rng,
        }));
        let (msg_tx, msg_rx) = mpsc::channel();
        let (event_tx, event_rx) = mpsc::channel();
        let mut router = RoutedClient {
            directory,
            cfg,
            ring,
            clients,
            routing,
            shared,
            messages: Mutex::new(msg_rx),
            events: Mutex::new(event_rx),
            pump: None,
        };
        router.pump = Some(router.spawn_pump(msg_tx, event_tx));
        router
    }

    /// Subscribes to `channel` on the brokers its current mapping
    /// demands; the subscription follows the channel across migrations.
    pub fn subscribe(&self, channel: &str) {
        let mut routing = self.routing.lock();
        routing.desired.insert(channel.to_owned());
        let mapping = self.resolve_locked(&mut routing, channel);
        let mapping = route_around_dead(&self.ring, &routing, channel, &mapping);
        let targets = self.subscribe_targets(&mut routing, channel, &mapping);
        for &idx in &targets {
            self.client_for(idx).subscribe(channel);
        }
        routing
            .subscribed_on
            .insert(channel.to_owned(), targets.into_iter().collect());
    }

    /// Unsubscribes `channel` everywhere it is currently subscribed.
    pub fn unsubscribe(&self, channel: &str) {
        let mut routing = self.routing.lock();
        routing.desired.remove(channel);
        if let Some(brokers) = routing.subscribed_on.remove(channel) {
            for idx in brokers {
                self.client_for(idx).unsubscribe(channel);
            }
        }
        // Lingering grace-period subscriptions go down immediately too.
        let mut lingering = Vec::new();
        routing.pending_unsubs.retain(|(_, idx, ch)| {
            if ch == channel {
                lingering.push(*idx);
                false
            } else {
                true
            }
        });
        for idx in lingering {
            self.client_for(idx).unsubscribe(channel);
        }
    }

    /// Publishes `body` on `channel`, routed per the channel's current
    /// mapping.
    pub fn publish(&self, channel: &str, body: &[u8]) {
        let mut routing = self.routing.lock();
        let mapping = self.resolve_locked(&mut routing, channel);
        let mapping = route_around_dead(&self.ring, &routing, channel, &mapping);
        let targets: Vec<usize> = match &mapping {
            ChannelMapping::Single(s) => vec![s.index()],
            // Empty replicated member lists are rejected at decode and
            // construction time; routing to nowhere (instead of
            // indexing into nothing) keeps even a corrupt local plan
            // from panicking the caller.
            ChannelMapping::AllSubscribers(v) if v.is_empty() => Vec::new(),
            ChannelMapping::AllSubscribers(v) => {
                let pick = routing.rng.next_below(v.len() as u64) as usize;
                vec![v[pick].index()]
            }
            ChannelMapping::AllPublishers(v) => v.iter().map(|s| s.index()).collect(),
        };
        drop(routing);
        if targets.len() > 1 {
            // Replicated fan-out: every copy must carry the SAME wire
            // id, or a subscriber observing more than one member (a
            // switch-grace overlap, an `AllSubscribers` view, or a
            // pooled virtual-client demux) counts the publish twice —
            // per-broker clients have deliberately decorrelated
            // origins, so letting each frame its own id defeats every
            // dedup window downstream. Frame once here, send verbatim.
            let id = MessageId {
                origin: self.shared.pub_origin,
                seq: self.shared.pub_seq.fetch_add(1, Ordering::Relaxed),
            };
            let framed = frame_payload(id, body);
            for idx in targets {
                self.client_for(idx).publish_raw(channel, &framed);
            }
        } else {
            for idx in targets {
                self.client_for(idx).publish(channel, body);
            }
        }
    }

    /// The next delivered message, if one is already queued.
    pub fn try_message(&self) -> Option<Message> {
        self.messages.lock().try_recv().ok()
    }

    /// Blocks up to `timeout` for the next delivered message.
    pub fn message_timeout(&self, timeout: Duration) -> Option<Message> {
        self.messages.lock().recv_timeout(timeout).ok()
    }

    /// The next router event, if one is already queued.
    pub fn try_event(&self) -> Option<RouterEvent> {
        self.events.lock().try_recv().ok()
    }

    /// The local plan's mapping for `channel`, if reconfiguration has
    /// taught this client one.
    pub fn local_mapping(&self, channel: &str) -> Option<(ChannelMapping, PlanId)> {
        self.routing.lock().local_plan.get(channel).cloned()
    }

    /// Pre-seeds the local plan with `mapping` for `channel` at version
    /// `plan`, as if a control frame had announced it — used by tests
    /// and scale harnesses that run replicated mappings without a live
    /// balancer. Install **before** subscribing: an already-active
    /// subscription is re-pointed only by real control frames, and a
    /// later control frame with a newer version overrides this entry
    /// exactly like any other local-plan record.
    pub fn install_local_mapping(&self, channel: &str, mapping: ChannelMapping, plan: PlanId) {
        self.routing
            .lock()
            .local_plan
            .insert(channel.to_owned(), (mapping, plan));
    }

    /// Counters so far.
    pub fn stats(&self) -> RouterStats {
        let routing = self.routing.lock();
        RouterStats {
            duplicates_suppressed: self.shared.duplicates.load(Ordering::Relaxed),
            moved_applied: self.shared.moved_applied.load(Ordering::Relaxed),
            switches_applied: self.shared.switches_applied.load(Ordering::Relaxed),
            stale_control_frames: self.shared.stale_frames.load(Ordering::Relaxed),
            connections: self.clients.lock().len(),
            local_plan_len: routing.local_plan.len(),
            deaths_detected: self.shared.deaths.load(Ordering::Relaxed),
            failover_repoints: self.shared.repoints.load(Ordering::Relaxed),
            dead_brokers: routing.dead_servers().iter().map(|s| s.index()).collect(),
        }
    }

    /// Stops the pump and every underlying client.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.running.store(false, Ordering::SeqCst);
        if let Some(handle) = self.pump.take() {
            let _ = handle.join();
        }
        self.clients.lock().clear();
    }

    /// Resolves `channel` through the local plan, then the ring. A ring
    /// fallback is recorded in the local plan at version 0 — a
    /// *provisional* entry. Provisional entries never win the staleness
    /// race in `apply_control`: plan 0 is the empty bootstrap plan, so a
    /// control frame carrying *any* version (even 0, from a
    /// bootstrap-era migration) knows more than the ring did.
    fn resolve_locked(&self, routing: &mut Routing, channel: &str) -> ChannelMapping {
        if let Some((m, _)) = routing.local_plan.get(channel) {
            return m.clone();
        }
        // Exclusion-aware fallback: a channel first resolved after a
        // broker death must not cache the corpse as its provisional
        // home. This walk agrees with the balancer's bounded-load
        // placer and with `route_around_dead`.
        let id = channel_id_of(channel);
        let home = self
            .ring
            .server_for_excluding(id, &routing.dead_servers())
            .unwrap_or_else(|| self.ring.server_for(id));
        let mapping = ChannelMapping::Single(home);
        routing
            .local_plan
            .insert(channel.to_owned(), (mapping.clone(), PlanId(0)));
        mapping
    }

    /// Broker indices a subscriber of `channel` must sit on under
    /// `mapping`. The `AllPublishers` pick is remembered via
    /// `subscribed_on`, so repeated calls do not hop brokers.
    fn subscribe_targets(
        &self,
        routing: &mut Routing,
        channel: &str,
        mapping: &ChannelMapping,
    ) -> Vec<usize> {
        match mapping {
            ChannelMapping::Single(s) => vec![s.index()],
            ChannelMapping::AllSubscribers(v) => v.iter().map(|s| s.index()).collect(),
            ChannelMapping::AllPublishers(v) if v.is_empty() => Vec::new(),
            ChannelMapping::AllPublishers(v) => {
                let members: BTreeSet<usize> = v.iter().map(|s| s.index()).collect();
                if let Some(current) = routing.subscribed_on.get(channel) {
                    if let Some(&keep) = current.iter().find(|idx| members.contains(idx)) {
                        return vec![keep];
                    }
                }
                let pick = routing.rng.next_below(v.len() as u64) as usize;
                vec![v[pick].index()]
            }
        }
    }

    /// The lazily created client for broker `idx`; on creation it also
    /// subscribes its private control channel, so sidecars can reach
    /// this router on that broker.
    fn client_for(&self, idx: usize) -> Arc<TcpPubSubClient> {
        let mut clients = self.clients.lock();
        if let Some(c) = clients.get(&idx) {
            return Arc::clone(c);
        }
        let client = Arc::new(connect_broker(
            &self.directory,
            idx,
            &self.cfg.client,
            self.cfg.seed,
        ));
        client.subscribe(&control_channel(client.origin()));
        clients.insert(idx, Arc::clone(&client));
        Arc::clone(&client)
    }

    fn spawn_pump(
        &self,
        msg_tx: mpsc::Sender<Message>,
        event_tx: mpsc::Sender<RouterEvent>,
    ) -> JoinHandle<()> {
        let shared = Arc::clone(&self.shared);
        let clients = Arc::clone(&self.clients);
        let routing = Arc::clone(&self.routing);
        let directory = self.directory.clone();
        let cfg = self.cfg.clone();
        let ring = self.ring.clone();
        std::thread::spawn(move || {
            let mut dedup = Dedup::new();
            while shared.running.load(Ordering::SeqCst) {
                let snapshot: Vec<(usize, Arc<TcpPubSubClient>)> = clients
                    .lock()
                    .iter()
                    .map(|(&i, c)| (i, Arc::clone(c)))
                    .collect();
                for (idx, client) in snapshot {
                    while let Some(event) = client.try_event() {
                        note_event(&routing, idx, &event);
                        if matches!(event, ClientEvent::GaveUp) {
                            // The connection exhausted its whole retry
                            // budget: treat as death without waiting out
                            // the failover timer.
                            declare_dead(
                                &shared, &clients, &routing, &directory, &cfg, &ring, &event_tx,
                                idx, None,
                            );
                        }
                        let _ = event_tx.send(RouterEvent { broker: idx, event });
                    }
                    let mut got_data = false;
                    while let Some(msg) = client.try_message() {
                        got_data = true;
                        pump_handle(
                            &shared, &clients, &routing, &directory, &cfg, &ring, &mut dedup,
                            &client, msg, &msg_tx, &event_tx,
                        );
                    }
                    if got_data {
                        mark_alive(&routing, idx);
                    }
                }
                check_health(
                    &shared, &clients, &routing, &directory, &cfg, &ring, &event_tx,
                );
                drain_pending_unsubs(&clients, &routing);
                std::thread::sleep(cfg.tick);
            }
        })
    }
}

impl Drop for RoutedClient {
    fn drop(&mut self) {
        if self.pump.is_some() {
            self.stop();
        }
    }
}

impl std::fmt::Debug for RoutedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoutedClient")
            .field("brokers", &self.directory.len())
            .finish_non_exhaustive()
    }
}

fn connect_broker(
    directory: &[SocketAddr],
    idx: usize,
    base: &ClientConfig,
    seed: Option<u64>,
) -> TcpPubSubClient {
    let mut cfg = base.clone();
    // Decorrelate per-broker client seeds: identical seeds would mean
    // identical origins, colliding wire-id sequence spaces and a shared
    // control channel across connections.
    cfg.seed = seed.map(|s| {
        let mut mixer = SplitMix64::new(s ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        mixer.next_u64()
    });
    TcpPubSubClient::connect_addr(directory[idx], cfg)
}

/// Handles one delivered frame inside the pump thread: control frames
/// update the local plan, application messages pass the router-level
/// dedup window and surface to the caller.
#[allow(clippy::too_many_arguments)]
fn pump_handle(
    shared: &Arc<RouterShared>,
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: &Arc<Mutex<Routing>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    ring: &Ring,
    dedup: &mut Dedup,
    via: &Arc<TcpPubSubClient>,
    msg: Message,
    msg_tx: &mpsc::Sender<Message>,
    event_tx: &mpsc::Sender<RouterEvent>,
) {
    let on_control_channel = msg.channel == control_channel(via.origin());
    if let Some(frame) = ControlFrame::decode(&msg.payload) {
        let applies = match &frame {
            ControlFrame::Moved { .. } => on_control_channel,
            ControlFrame::Switch { channel, .. } => *channel == msg.channel,
        };
        if applies {
            apply_control(
                shared, clients, routing, directory, cfg, ring, event_tx, &frame,
            );
            return;
        }
        // A control frame on the wrong channel is application payload
        // that merely looks like one; fall through and deliver it.
    }
    if on_control_channel {
        return; // junk on the private channel; nothing to deliver
    }
    if let Some(id) = msg.id {
        if !dedup.insert(id, cfg.dedup_window) {
            shared.duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    let _ = msg_tx.send(msg);
}

/// Applies a `Moved`/`Switch` to the local plan and re-points any
/// affected subscription — new brokers first, old ones after, so the
/// subscription windows overlap.
#[allow(clippy::too_many_arguments)]
fn apply_control(
    shared: &Arc<RouterShared>,
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: &Arc<Mutex<Routing>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    ring: &Ring,
    event_tx: &mpsc::Sender<RouterEvent>,
    frame: &ControlFrame,
) {
    // Quarantine entries piggy-backed on control frames are the
    // balancer's already-probed death verdicts: adopt them immediately
    // instead of waiting out the local failover timer. Incarnation
    // numbers deduplicate — a stale frame replaying an old death cannot
    // re-kill a broker that has since revived.
    for q in frame.quarantine() {
        if q.broker < directory.len() {
            declare_dead(
                shared,
                clients,
                routing,
                directory,
                cfg,
                ring,
                event_tx,
                q.broker,
                Some(q.incarnation),
            );
        }
    }
    let channel = frame.channel().to_owned();
    let mapping = frame.mapping().clone();
    let plan = frame.plan();
    if mapping.servers().is_empty() {
        return; // a mapping with no members cannot route anything
    }
    if mapping
        .servers()
        .iter()
        .any(|s| s.index() >= directory.len())
    {
        return; // frame references brokers outside the directory
    }

    let mut r = routing.lock();
    if let Some((_, known)) = r.local_plan.get(&channel) {
        // Version-0 entries are provisional (ring fallback or bootstrap
        // frames): they record what this client *assumed*, not what any
        // plan decreed, so they must never shadow a real migration — in
        // particular the first Moved/Switch for a ring-resolved channel
        // may itself carry version 0 and must still apply.
        if *known >= plan && *known != PlanId(0) {
            shared.stale_frames.fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    r.local_plan
        .insert(channel.clone(), (mapping.clone(), plan));
    match frame {
        ControlFrame::Moved { .. } => shared.moved_applied.fetch_add(1, Ordering::Relaxed),
        ControlFrame::Switch { .. } => shared.switches_applied.fetch_add(1, Ordering::Relaxed),
    };

    if !r.desired.contains(&channel) {
        return;
    }
    // Re-point the subscription: subscribe on the new target set before
    // unsubscribing brokers that fell out of it.
    let current: BTreeSet<usize> = r.subscribed_on.get(&channel).cloned().unwrap_or_else(|| {
        // Subscribed before any plan entry existed: the ring told us
        // where.
        let mut set = BTreeSet::new();
        set.insert(ring.server_for(channel_id_of(&channel)).index());
        set
    });
    let wanted: BTreeSet<usize> = match &mapping {
        ChannelMapping::Single(s) => [s.index()].into(),
        ChannelMapping::AllSubscribers(v) => v.iter().map(|s| s.index()).collect(),
        ChannelMapping::AllPublishers(v) => {
            if let Some(&keep) = current.iter().find(|i| v.iter().any(|s| s.index() == **i)) {
                [keep].into()
            } else {
                let pick = r.rng.next_below(v.len() as u64) as usize;
                [v[pick].index()].into()
            }
        }
    };
    // Brokers entering the target set are subscribed *from sequence 0*:
    // the channel's sequence space on its new home starts at the
    // migration, so the replay is exactly the post-migration suffix —
    // which is how a client that was offline across the `<switch>`
    // still recovers everything published to the new home while it was
    // away. Frames the client did see (live before the outage, or via
    // the sidecar's forwarding window) carry their original wire ids
    // and dedup away. A channel returning to a broker it once lived on
    // may replay pre-migration history too; those re-deliveries are
    // bounded by the retention ring and largely absorbed by the dedup
    // windows — the trade for never losing the suffix silently.
    for &idx in wanted.difference(&current) {
        subscribe_via(clients, directory, cfg, idx, &channel, Some(0));
    }
    // Superseded brokers are not unsubscribed yet: the new subscriptions
    // may ride connections still being established, so the old ones
    // linger for `switch_grace` (double deliveries dedup away).
    let due = Instant::now() + cfg.switch_grace;
    for &idx in current.difference(&wanted) {
        r.pending_unsubs.push((due, idx, channel.clone()));
    }
    r.subscribed_on.insert(channel, wanted);
}

/// Unsubscribes superseded subscriptions whose grace period lapsed,
/// unless a later switch re-pointed the channel back at that broker.
fn drain_pending_unsubs(
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: &Arc<Mutex<Routing>>,
) {
    let now = Instant::now();
    let mut r = routing.lock();
    let mut due = Vec::new();
    r.pending_unsubs.retain(|entry| {
        if entry.0 <= now {
            due.push((entry.1, entry.2.clone()));
            false
        } else {
            true
        }
    });
    for (idx, channel) in due {
        let wanted_again = r
            .subscribed_on
            .get(&channel)
            .is_some_and(|set| set.contains(&idx));
        if wanted_again {
            continue;
        }
        if let Some(client) = clients.lock().get(&idx) {
            client.unsubscribe(&channel);
        }
    }
}

/// `client_for`, callable from the pump thread (which has no
/// `&RoutedClient`): the lazily created client for broker `idx`,
/// control-channel subscription included.
fn client_via(
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    idx: usize,
) -> Arc<TcpPubSubClient> {
    let mut map = clients.lock();
    let client = map.entry(idx).or_insert_with(|| {
        let c = Arc::new(connect_broker(directory, idx, &cfg.client, cfg.seed));
        c.subscribe(&control_channel(c.origin()));
        c
    });
    Arc::clone(client)
}

/// `client_for` + `subscribe`/`subscribe_from`, callable from the pump
/// thread (which has no `&RoutedClient`).
fn subscribe_via(
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    idx: usize,
    channel: &str,
    from: Option<u64>,
) {
    let client = client_via(clients, directory, cfg, idx);
    match from {
        Some(f) => client.subscribe_from(channel, f),
        None => client.subscribe(channel),
    }
}

/// `mapping` with brokers currently believed dead removed. A mapping
/// whose members are *all* dead collapses to the deterministic
/// ring-exclusion fallback — every router excluding the same dead set
/// resolves the same survivor, so publishers and subscribers meet on it
/// without coordination (the survivor's sidecar then corrects them once
/// the balancer's emergency replan installs).
fn route_around_dead(
    ring: &Ring,
    routing: &Routing,
    channel: &str,
    mapping: &ChannelMapping,
) -> ChannelMapping {
    let dead = routing.dead_servers();
    if dead.is_empty() || mapping.servers().is_empty() {
        return mapping.clone();
    }
    let live: Vec<ServerId> = mapping
        .servers()
        .iter()
        .copied()
        .filter(|s| !dead.contains(s))
        .collect();
    if live.len() == mapping.servers().len() {
        return mapping.clone();
    }
    if live.is_empty() {
        return match ring.server_for_excluding(channel_id_of(channel), &dead) {
            Some(s) => ChannelMapping::Single(s),
            // Everything is believed dead; keep the original mapping and
            // let the underlying clients retry rather than route nowhere.
            None => mapping.clone(),
        };
    }
    match mapping {
        ChannelMapping::Single(_) => ChannelMapping::Single(live[0]),
        ChannelMapping::AllSubscribers(_) => ChannelMapping::AllSubscribers(live),
        ChannelMapping::AllPublishers(_) => ChannelMapping::AllPublishers(live),
    }
}

/// Folds one client event into the broker's health view. `Connected` is
/// deliberately *not* alive-evidence: a hard-killed proxy (or half-dead
/// host) can complete TCP handshakes forever while serving nothing, so
/// only delivered data or a successful resume resets the failover timer.
fn note_event(routing: &Arc<Mutex<Routing>>, idx: usize, event: &ClientEvent) {
    let mut r = routing.lock();
    let h = &mut r.health[idx];
    match event {
        ClientEvent::Disconnected { .. } if h.down_since.is_none() && !h.dead => {
            h.down_since = Some(Instant::now());
        }
        ClientEvent::Resumed { .. } => {
            h.down_since = None;
            h.dead = false;
        }
        _ => {}
    }
}

/// Data arrived from broker `idx`: it is alive, whatever the timers say.
fn mark_alive(routing: &Arc<Mutex<Routing>>, idx: usize) {
    let mut r = routing.lock();
    let h = &mut r.health[idx];
    h.down_since = None;
    h.dead = false;
}

/// Runs the suspect/probe half of failure detection: connections down
/// past `failover_after` get a confirmation probe (failure ⇒ death;
/// success ⇒ the broker is up and our client just needs to reconnect,
/// so failing over would split routing for nothing), and dead brokers
/// get a revival re-probe.
#[allow(clippy::too_many_arguments)]
fn check_health(
    shared: &Arc<RouterShared>,
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: &Arc<Mutex<Routing>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    ring: &Ring,
    event_tx: &mpsc::Sender<RouterEvent>,
) {
    let now = Instant::now();
    let mut to_probe: Vec<(usize, bool)> = Vec::new();
    {
        let mut r = routing.lock();
        for (idx, h) in r.health.iter_mut().enumerate() {
            let due = h
                .last_probe
                .is_none_or(|t| now.duration_since(t) >= cfg.reprobe_interval);
            if !due {
                continue;
            }
            if h.dead {
                h.last_probe = Some(now);
                to_probe.push((idx, true));
            } else if let Some(since) = h.down_since {
                if now.duration_since(since) >= cfg.failover_after {
                    h.last_probe = Some(now);
                    to_probe.push((idx, false));
                }
            }
        }
    }
    for (idx, was_dead) in to_probe {
        let alive = TcpStream::connect_timeout(&directory[idx], cfg.probe_timeout).is_ok();
        if was_dead && alive {
            // Revived: lift the death mark so routing may use the broker
            // again (subscriptions moved away stay put until control
            // frames re-point them).
            let mut r = routing.lock();
            let h = &mut r.health[idx];
            h.dead = false;
            h.down_since = None;
        } else if !was_dead && !alive {
            declare_dead(
                shared, clients, routing, directory, cfg, ring, event_tx, idx, None,
            );
        }
    }
}

/// Declares broker `idx` dead: re-points every subscription whose only
/// home it was to the ring-exclusion fallback (surfacing a synthetic
/// [`ClientEvent::Gap`] with [`GapReason::Failover`] — the new home's
/// sequence stream is a fresh incarnation, so the discontinuity is
/// explicit and `missed` is zero because it is unquantifiable), and
/// rescues the dead connection's queued publications onto survivors.
/// `incarnation` carries a balancer-declared death's incarnation number
/// for dedup; local verdicts (probe failure, `GaveUp`) pass `None`.
#[allow(clippy::too_many_arguments)]
fn declare_dead(
    shared: &Arc<RouterShared>,
    clients: &Arc<Mutex<HashMap<usize, Arc<TcpPubSubClient>>>>,
    routing: &Arc<Mutex<Routing>>,
    directory: &[SocketAddr],
    cfg: &RouterConfig,
    ring: &Ring,
    event_tx: &mpsc::Sender<RouterEvent>,
    idx: usize,
    incarnation: Option<u64>,
) {
    // Phase 1 under the routing lock: flip the health state and re-point
    // stranded subscriptions.
    let corpse = {
        let mut guard = routing.lock();
        let r = &mut *guard;
        let h = &mut r.health[idx];
        if let Some(inc) = incarnation {
            if inc <= h.incarnation {
                return; // stale replay of a death we already handled
            }
            h.incarnation = inc;
        }
        if h.dead {
            return;
        }
        h.dead = true;
        h.down_since = None;
        shared.deaths.fetch_add(1, Ordering::Relaxed);
        let dead = r.dead_servers();
        // Take the corpse's client out of the map: stops its reconnect
        // spin and frees its queued publications for rescue below. The
        // broker re-appearing later just lazily reconnects.
        let corpse = clients.lock().remove(&idx);
        let stranded: Vec<String> = r
            .desired
            .iter()
            .filter(|ch| {
                r.subscribed_on
                    .get(*ch)
                    .is_some_and(|set| set.contains(&idx))
            })
            .cloned()
            .collect();
        for channel in stranded {
            // Filtered on membership above, but stay panic-free if the
            // map shifts between the two passes.
            let Some(set) = r.subscribed_on.get_mut(&channel) else {
                continue;
            };
            set.remove(&idx);
            if !set.is_empty() {
                continue; // replicated elsewhere; surviving members cover it
            }
            let Some(target) = ring.server_for_excluding(channel_id_of(&channel), &dead) else {
                continue; // every broker dead; nothing to re-point to
            };
            set.insert(target.index());
            // Provisional entry (version 0): the emergency replan's
            // Switch/Moved frames override it the moment they arrive.
            r.local_plan
                .insert(channel.clone(), (ChannelMapping::Single(target), PlanId(0)));
            subscribe_via(clients, directory, cfg, target.index(), &channel, Some(0));
            shared.repoints.fetch_add(1, Ordering::Relaxed);
            // Sequences are per-broker-incarnation: continuity with the
            // dead home's stream is impossible, so surface the
            // discontinuity explicitly instead of resuming silently.
            let _ = event_tx.send(RouterEvent {
                broker: idx,
                event: ClientEvent::Gap {
                    channel,
                    missed: 0,
                    reason: GapReason::Failover,
                },
            });
        }
        corpse
    };
    // Phase 2 off the lock: rescue publications the dead connection had
    // queued or unconfirmed, re-routing each onto a live broker. Wire
    // ids are preserved, so any frame that did land before the death is
    // absorbed by the receive-side dedup windows.
    if let Some(corpse) = corpse {
        let rescued = corpse.take_unsent(Duration::from_millis(500));
        drop(corpse);
        for (channel, framed) in rescued {
            let target = {
                let mut r = routing.lock();
                let mapping = r
                    .local_plan
                    .get(&channel)
                    .map(|(m, _)| m.clone())
                    .unwrap_or_else(|| {
                        ChannelMapping::Single(ring.server_for(channel_id_of(&channel)))
                    });
                match route_around_dead(ring, &r, &channel, &mapping) {
                    ChannelMapping::Single(s) => Some(s.index()),
                    ChannelMapping::AllSubscribers(v) => {
                        let pick = r.rng.next_below(v.len() as u64) as usize;
                        Some(v[pick].index())
                    }
                    ChannelMapping::AllPublishers(v) => v.first().map(|s| s.index()),
                }
            };
            if let Some(target) = target {
                client_via(clients, directory, cfg, target).publish_raw(&channel, &framed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one broker")]
    fn empty_directory_panics() {
        let _ = RoutedClient::connect(Vec::new(), RouterConfig::default());
    }
}
